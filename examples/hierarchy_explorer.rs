//! Explore a split-L1 / unified-L2 stack on a mixed program trace: hit
//! rates per level, then whole-hierarchy energy with the CNT encoder
//! placed at different levels.
//!
//! ```text
//! cargo run --release --example hierarchy_explorer
//! ```

use cnt_cache::{CntHierarchy, CntHierarchyConfig, EncodingPolicy};
use cnt_sim::trace::{MemoryAccess, Trace};
use cnt_sim::{Address, CacheHierarchy, HierarchyConfig};
use cnt_workloads::kernels;
use cnt_workloads::synthetic::word_with_density;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Interleave a data trace with a synthetic instruction-fetch stream, the
/// way a simple in-order core would issue them.
fn interleave_with_ifetch(data: &Trace) -> Trace {
    let mut out = Trace::new();
    let code_base = 0x0040_0000u64;
    let code_lines = 64u64;
    for (i, access) in data.iter().enumerate() {
        // One fetch per "instruction", walking a looping code footprint.
        let pc = code_base + (i as u64 % (code_lines * 8)) * 8;
        out.push(MemoryAccess::ifetch(Address::new(pc)));
        out.push(*access);
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = kernels::stencil2d(64, 48, 2);
    let trace = interleave_with_ifetch(&workload.trace);
    println!(
        "running {} ({} accesses incl. instruction fetches)\n",
        workload.name,
        trace.len()
    );

    // --- Hit-rate view through the raw (unmetered) hierarchy -----------
    let mut hierarchy = CacheHierarchy::new(HierarchyConfig::typical());
    hierarchy.run(trace.iter())?;
    println!("L1I: {}", hierarchy.l1i_stats());
    println!("L1D: {}", hierarchy.l1d_stats());
    if let Some(l2) = hierarchy.l2_stats() {
        println!("L2 : {l2}");
    }

    // --- Energy view: CNT encoding placed at different levels ----------
    println!("\nwhole-hierarchy dynamic energy by encoder placement:");
    let placements: [(&str, EncodingPolicy, EncodingPolicy, EncodingPolicy); 4] = [
        (
            "none",
            EncodingPolicy::None,
            EncodingPolicy::None,
            EncodingPolicy::None,
        ),
        (
            "L1D only",
            EncodingPolicy::None,
            EncodingPolicy::adaptive_default(),
            EncodingPolicy::None,
        ),
        (
            "L1I + L1D",
            EncodingPolicy::adaptive_default(),
            EncodingPolicy::adaptive_default(),
            EncodingPolicy::None,
        ),
        (
            "all levels",
            EncodingPolicy::adaptive_default(),
            EncodingPolicy::adaptive_default(),
            EncodingPolicy::adaptive_default(),
        ),
    ];
    let mut baseline_fj = None;
    for (label, l1i, l1d, l2) in placements {
        let mut h = CntHierarchy::new(CntHierarchyConfig::typical(l1i, l1d, l2)?)?;
        // "Load the program": realistic ~30%-density instruction words.
        let mut rng = SmallRng::seed_from_u64(0xC0DE);
        for word in 0..64 * 8u64 {
            h.memory_mut().store(
                Address::new(0x0040_0000 + word * 8),
                8,
                word_with_density(&mut rng, 0.30),
            );
        }
        h.run(trace.iter())?;
        h.flush_all();
        let total = h.total_energy();
        let note = match baseline_fj {
            None => {
                baseline_fj = Some(total.femtojoules());
                String::new()
            }
            Some(base) => format!(
                "  (saving {:.2}%)",
                (base - total.femtojoules()) / base * 100.0
            ),
        };
        println!("  {label:<10} {total:>16.1}{note}");
        for report in h.reports() {
            println!(
                "      {:<4} {:>14.1}  [{}]",
                report.name,
                report.total(),
                report.policy
            );
        }
    }
    Ok(())
}

//! Quickstart: simulate one benchmark kernel on the paper's D-Cache, once
//! as the plain CNFET baseline and once as CNT-Cache, and compare dynamic
//! energy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
use cnt_workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A workload: 40x40 integer matrix multiply, instrumented so every
    // load/store (with its data) is recorded.
    let workload = kernels::matmul(40, 1);
    println!(
        "workload: {} ({}; {} accesses, {:.0}% writes)\n",
        workload.name,
        workload.description,
        workload.trace.len(),
        workload.trace.write_fraction() * 100.0
    );

    // The paper's D-Cache: 32 KiB, 64 B lines, 8-way, LRU — defaults of
    // the builder. Run it twice with different encoding policies.
    let mut baseline = CntCache::new(CntCacheConfig::builder().name("baseline").build()?)?;
    let mut cnt = CntCache::new(
        CntCacheConfig::builder()
            .name("CNT-Cache")
            .policy(EncodingPolicy::adaptive_default())
            .build()?,
    )?;

    baseline.run(workload.trace.iter())?;
    baseline.flush();
    cnt.run(workload.trace.iter())?;
    cnt.flush();

    let base_report = baseline.report();
    let cnt_report = cnt.report();

    println!("{base_report}");
    println!("{cnt_report}");
    println!(
        "dynamic-energy saving: {:.2}% (paper's suite average: 22.2%)",
        cnt_report.saving_vs(&base_report)
    );
    Ok(())
}

//! The full D-Cache energy study: every suite kernel under four encoding
//! policies, with a per-category energy breakdown for one kernel.
//!
//! ```text
//! cargo run --release --example dcache_energy_study [kernel-name]
//! ```

use cnt_cache::{AdaptiveParams, CntCache, CntCacheConfig, EncodingPolicy, EnergyReport};
use cnt_encoding::BitPreference;
use cnt_sim::trace::Trace;
use cnt_workloads::suite;

fn simulate(
    policy: EncodingPolicy,
    trace: &Trace,
) -> Result<EnergyReport, Box<dyn std::error::Error>> {
    let mut cache = CntCache::new(CntCacheConfig::builder().policy(policy).build()?)?;
    cache.run(trace.iter())?;
    cache.flush();
    Ok(cache.report())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let focus = std::env::args().nth(1);
    let policies: [(&str, EncodingPolicy); 4] = [
        ("baseline", EncodingPolicy::None),
        (
            "static-ones",
            EncodingPolicy::StaticInvert {
                preference: BitPreference::MoreOnes,
                partitions: 8,
            },
        ),
        (
            "adaptive-full",
            EncodingPolicy::Adaptive(AdaptiveParams {
                partitions: 1,
                ..AdaptiveParams::paper_default()
            }),
        ),
        ("adaptive-part", EncodingPolicy::adaptive_default()),
    ];

    println!(
        "| {:<16} | {:>12} | {:>12} | {:>12} | {:>12} |",
        "kernel", "baseline fJ", "static-ones", "adaptive-full", "adaptive-part"
    );
    for w in suite() {
        let mut row = format!("| {:<16} |", w.name);
        let base = simulate(policies[0].1, &w.trace)?;
        row.push_str(&format!(" {:>12.0} |", base.total().femtojoules()));
        for (_, policy) in &policies[1..] {
            let r = simulate(*policy, &w.trace)?;
            row.push_str(&format!(" {:>11.2}% |", r.saving_vs(&base)));
        }
        println!("{row}");

        if focus.as_deref() == Some(w.name.as_str()) {
            println!("\nfull report for {} under adaptive-part:\n", w.name);
            let r = simulate(EncodingPolicy::adaptive_default(), &w.trace)?;
            println!("{r}");
        }
    }
    println!("\n(columns 3-5 are savings relative to the baseline column)");
    Ok(())
}

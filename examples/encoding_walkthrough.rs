//! A guided tour of the paper's Section III mechanisms: the partitioned
//! encoder (Fig. 2), the threshold table (Equations 1–6), and Algorithm 1
//! on a live line.
//!
//! ```text
//! cargo run --release --example encoding_walkthrough
//! ```

use cnt_encoding::popcount::popcount_words;
use cnt_encoding::{
    AccessHistory, BitPreference, DirectionBits, DirectionPredictor, FlipRule, LineCodec,
    PartitionLayout, PredictorConfig, ThresholdTable,
};
use cnt_energy::BitEnergies;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = BitEnergies::cnfet_default();
    println!("CNFET cell energies: {bits}\n");

    // ---- Fig. 2: full-line vs partitioned encoding --------------------
    let mut line = [0u64; 8];
    line[6] = u64::MAX; // the "(K-1)th partition" of the figure
    line[0] = 0xFF;

    let full = LineCodec::new(PartitionLayout::full_line(512)?);
    let part = LineCodec::new(PartitionLayout::new(512, 8)?);

    println!(
        "read-intensive line, raw ones = {}/512",
        popcount_words(&line)
    );
    let d_full = full.choose_directions(&line, BitPreference::MoreOnes);
    let d_part = part.choose_directions(&line, BitPreference::MoreOnes);
    println!(
        "  full-line invert : stored ones = {}/512 (1 direction bit)",
        full.stored_popcount(&line, &d_full)
    );
    println!(
        "  partitioned (K=8): stored ones = {}/512 (mask {}, 8 direction bits)",
        part.stored_popcount(&line, &d_part),
        d_part
    );
    println!("  partition 6 stays un-inverted under partitioning: the Fig. 2 point\n");

    // ---- Equations 1-6: the Th_bit1num table ---------------------------
    let table = ThresholdTable::new(&bits, 15, 64, 0.0)?;
    println!(
        "threshold table (W=15, 64-bit partitions, ΔT=0): Th_rd = {:.2}",
        table.th_rd()
    );
    println!("  Wr_num -> rule (flip when stored ones cross the threshold)");
    for wr in 0..=15u32 {
        let rule = match table.rule(wr) {
            FlipRule::Never => "never flip".to_string(),
            FlipRule::FlipBelow(t) => format!("flip if ones < {t} (read-intensive)"),
            FlipRule::FlipAbove(t) => format!("flip if ones > {t} (write-intensive)"),
        };
        println!("  {wr:>6} -> {rule}");
    }

    // ---- Algorithm 1 live ----------------------------------------------
    println!("\nAlgorithm 1 on a mostly-zero line under a read-only window:");
    let predictor = DirectionPredictor::new(
        &bits,
        PredictorConfig {
            window: 15,
            line_bits: 512,
            partitions: 8,
            delta_t: 0.0,
        },
    )?;
    let mut history = AccessHistory::new();
    let dirs = DirectionBits::all_normal(8);
    let zero_line = [0u64, 0, 0, 0, 0, 0, u64::MAX, 0];
    for i in 1..=15 {
        if let Some(summary) = predictor.observe(&mut history, false) {
            let decision = predictor.decide(summary, &zero_line, &dirs);
            println!(
                "  access {i}: window complete -> pattern {}, flip mask {:#010b}, projected saving {:.1} fJ",
                decision.pattern, decision.flips, decision.projected_saving_fj
            );
        }
    }
    Ok(())
}

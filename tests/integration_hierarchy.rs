//! Hierarchy integration: kernels through the split-L1/L2 stack keep
//! their semantics and the level statistics obey inclusion-style
//! invariants.

use cnt_sim::trace::{MemoryAccess, Trace};
use cnt_sim::{
    Address, CacheGeometry, CacheHierarchy, HierarchyConfig, MainMemory, ReplacementKind,
};
use cnt_workloads::suite_small;

fn tiny_hierarchy() -> CacheHierarchy {
    // Small caches to force traffic at every level.
    let config = HierarchyConfig {
        l1i: CacheGeometry::new(1024, 64, 2).expect("valid"),
        l1d: CacheGeometry::new(2048, 64, 2).expect("valid"),
        l2: Some(CacheGeometry::new(8192, 64, 4).expect("valid")),
        replacement: ReplacementKind::Lru,
    };
    CacheHierarchy::new(config)
}

fn reference_image(trace: &Trace) -> MainMemory {
    let mut mem = MainMemory::new();
    for access in trace {
        if access.is_write() {
            mem.store(access.addr, access.width, access.value);
        }
    }
    mem
}

#[test]
fn kernels_survive_the_full_hierarchy() {
    for workload in suite_small() {
        let mut h = tiny_hierarchy();
        h.run(workload.trace.iter()).expect("trace runs");
        h.flush_all();
        let mut reference = reference_image(&workload.trace);
        for access in workload.trace.iter().filter(|a| a.is_write()) {
            let addr = access.addr.align_down(8);
            assert_eq!(
                h.memory_mut().load(addr, 8),
                reference.load(addr, 8),
                "{}: {addr} diverged through the hierarchy",
                workload.name
            );
        }
    }
}

#[test]
fn l2_sees_only_l1_misses() {
    let workload = &suite_small()[4]; // stencil: strong locality
    let mut h = tiny_hierarchy();
    h.run(workload.trace.iter()).expect("trace runs");
    let l1_misses = h.l1d_stats().misses() + h.l1i_stats().misses();
    let l1_writebacks = h.l1d_stats().writebacks + h.l1i_stats().writebacks;
    let l2 = h.l2_stats().expect("l2 configured");
    assert_eq!(
        l2.accesses(),
        l1_misses + l1_writebacks,
        "every L2 access is an L1 refill or spill"
    );
    assert!(
        l2.accesses() < workload.trace.len() as u64,
        "L1 must filter"
    );
}

#[test]
fn ifetch_stream_isolates_to_l1i() {
    let mut h = tiny_hierarchy();
    let trace: Trace = (0..256u64)
        .map(|i| MemoryAccess::ifetch(Address::new(0x1000 + (i % 32) * 64)))
        .collect();
    h.run(trace.iter()).expect("trace runs");
    assert_eq!(h.l1i_stats().accesses(), 256);
    assert_eq!(h.l1d_stats().accesses(), 0);
    // 32 distinct lines, 1 KiB L1I (16 lines): misses exceed 32 due to
    // capacity, but hits still dominate on the loop.
    assert!(h.l1i_stats().misses() >= 32);
}

#[test]
fn cnt_hierarchy_and_raw_hierarchy_agree_on_cache_behaviour() {
    // Differential test: the energy-metered CntHierarchy (all levels at
    // EncodingPolicy::None) and the raw cnt-sim CacheHierarchy implement
    // the same cache semantics independently; their per-level hit/miss
    // statistics must be identical on the same trace.
    use cnt_cache::{CntCacheConfig, CntHierarchy, CntHierarchyConfig, EncodingPolicy};

    for workload in suite_small().iter().take(6) {
        let geometry = |size: u64, ways: u32| CacheGeometry::new(size, 64, ways).expect("valid");
        let raw_config = HierarchyConfig {
            l1i: geometry(1024, 2),
            l1d: geometry(2048, 2),
            l2: Some(geometry(8192, 4)),
            replacement: ReplacementKind::Lru,
        };
        let mut raw = CacheHierarchy::new(raw_config);
        raw.run(workload.trace.iter()).expect("raw runs");

        let cnt_config = CntHierarchyConfig {
            l1i: CntCacheConfig::builder()
                .name("L1I")
                .size_bytes(1024)
                .associativity(2)
                .build()
                .expect("valid"),
            l1d: CntCacheConfig::builder()
                .name("L1D")
                .size_bytes(2048)
                .associativity(2)
                .build()
                .expect("valid"),
            l2: Some(
                CntCacheConfig::builder()
                    .name("L2")
                    .size_bytes(8192)
                    .associativity(4)
                    .policy(EncodingPolicy::None)
                    .build()
                    .expect("valid"),
            ),
        };
        let mut cnt = CntHierarchy::new(cnt_config).expect("valid");
        cnt.run(workload.trace.iter()).expect("cnt runs");

        assert_eq!(
            raw.l1d_stats(),
            cnt.l1d().stats(),
            "{}: L1D statistics diverged",
            workload.name
        );
        assert_eq!(
            raw.l1i_stats(),
            cnt.l1i().stats(),
            "{}: L1I statistics diverged",
            workload.name
        );
        assert_eq!(
            raw.l2_stats().expect("configured"),
            cnt.l2().expect("configured").stats(),
            "{}: L2 statistics diverged",
            workload.name
        );
    }
}

#[test]
fn hierarchy_without_l2_matches_flat_semantics() {
    let workload = &suite_small()[1]; // fir
    let mut config = HierarchyConfig::typical();
    config.l2 = None;
    let mut h = CacheHierarchy::new(config);
    h.run(workload.trace.iter()).expect("trace runs");
    h.flush_all();
    let mut reference = reference_image(&workload.trace);
    for access in workload.trace.iter().filter(|a| a.is_write()) {
        let addr = access.addr.align_down(8);
        assert_eq!(h.memory_mut().load(addr, 8), reference.load(addr, 8));
    }
}

//! Cross-crate property tests: random traces through the full CNT-Cache
//! stack must preserve semantics, keep energy monotone, and keep the
//! encoding metadata self-consistent.

use std::collections::HashMap;

use cnt_cache::{
    AdaptiveParams, CntCache, CntCacheConfig, CntHierarchy, CntHierarchyConfig, EncodingPolicy,
};
use cnt_encoding::BitPreference;
use cnt_sim::trace::MemoryAccess;
use cnt_sim::Address;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Read { addr: u64, width: u8 },
    Write { addr: u64, width: u8, value: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let width = prop::sample::select(vec![1u8, 2, 4, 8]);
    (0u64..8192, width, any::<u64>(), any::<bool>()).prop_map(|(raw, width, value, is_write)| {
        let addr = raw & !(u64::from(width) - 1);
        if is_write {
            Op::Write { addr, width, value }
        } else {
            Op::Read { addr, width }
        }
    })
}

fn arb_policy() -> impl Strategy<Value = EncodingPolicy> {
    prop::sample::select(vec![
        EncodingPolicy::None,
        EncodingPolicy::StaticInvert {
            preference: BitPreference::MoreOnes,
            partitions: 8,
        },
        EncodingPolicy::adaptive_default(),
        EncodingPolicy::Adaptive(AdaptiveParams {
            window: 3,
            partitions: 64,
            delta_t: 0.0,
            ..AdaptiveParams::paper_default()
        }),
        EncodingPolicy::Adaptive(AdaptiveParams {
            window: 31,
            partitions: 1,
            fifo_capacity: 1,
            ..AdaptiveParams::paper_default()
        }),
    ])
}

fn width_mask(width: u8) -> u64 {
    match width {
        8 => u64::MAX,
        w => (1u64 << (u64::from(w) * 8)) - 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random operations through any policy behave exactly like flat
    /// byte-addressed memory.
    #[test]
    fn cnt_cache_is_transparent(ops in prop::collection::vec(arb_op(), 1..300), policy in arb_policy()) {
        let config = CntCacheConfig::builder()
            .size_bytes(1024) // tiny: constant evictions + re-encodings
            .associativity(2)
            .policy(policy)
            .build()
            .expect("valid config");
        let mut cache = CntCache::new(config).expect("valid cache");
        let mut reference: HashMap<u64, u8> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Write { addr, width, value } => {
                    cache.write(Address::new(addr), width, value).expect("write ok");
                    for i in 0..u64::from(width) {
                        reference.insert(addr + i, (value >> (8 * i)) as u8);
                    }
                }
                Op::Read { addr, width } => {
                    let got = cache.read(Address::new(addr), width).expect("read ok");
                    let mut expect = 0u64;
                    for i in (0..u64::from(width)).rev() {
                        expect = (expect << 8) | u64::from(*reference.get(&(addr + i)).unwrap_or(&0));
                    }
                    prop_assert_eq!(got, expect & width_mask(width));
                }
            }
        }

        // Final flush lands the reference image in memory.
        cache.flush();
        for (&addr, &byte) in &reference {
            prop_assert_eq!(cache.memory_mut().load(Address::new(addr), 1) as u8, byte);
        }
    }

    /// Energy accumulates monotonically and the breakdown stays
    /// internally consistent on any workload and policy.
    #[test]
    fn energy_is_monotone_and_consistent(ops in prop::collection::vec(arb_op(), 1..200), policy in arb_policy()) {
        let config = CntCacheConfig::builder()
            .size_bytes(1024)
            .associativity(2)
            .policy(policy)
            .build()
            .expect("valid config");
        let mut cache = CntCache::new(config).expect("valid cache");
        let mut last = cache.total_energy();
        for op in &ops {
            match *op {
                Op::Write { addr, width, value } => {
                    cache.write(Address::new(addr), width, value).expect("write ok");
                }
                Op::Read { addr, width } => {
                    let _ = cache.read(Address::new(addr), width).expect("read ok");
                }
            }
            let now = cache.total_energy();
            prop_assert!(now >= last, "energy went backwards");
            last = now;
        }
        let b = cache.meter().breakdown();
        let rw = b.read_energy() + b.write_energy();
        prop_assert!((b.total() - rw).abs().femtojoules() < 1e-6);
        // The internal audit passes after any workload.
        prop_assert!(cache.audit().is_ok(), "{:?}", cache.audit());
    }

    /// Random traffic through a fully-encoded two-level hierarchy behaves
    /// exactly like flat memory, and every level passes its audit.
    #[test]
    fn cnt_hierarchy_is_transparent(ops in prop::collection::vec(arb_op(), 1..250)) {
        let config = CntHierarchyConfig {
            l1i: CntCacheConfig::builder()
                .name("L1I")
                .size_bytes(1024)
                .associativity(2)
                .build()
                .expect("valid"),
            l1d: CntCacheConfig::builder()
                .name("L1D")
                .size_bytes(1024) // tiny: constant L1<->L2 traffic
                .associativity(2)
                .policy(EncodingPolicy::Adaptive(AdaptiveParams {
                    window: 4,
                    delta_t: 0.0,
                    ..AdaptiveParams::paper_default()
                }))
                .build()
                .expect("valid"),
            l2: Some(
                CntCacheConfig::builder()
                    .name("L2")
                    .size_bytes(4096)
                    .associativity(4)
                    .policy(EncodingPolicy::adaptive_default())
                    .build()
                    .expect("valid"),
            ),
        };
        let mut h = CntHierarchy::new(config).expect("valid hierarchy");
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Write { addr, width, value } => {
                    h.access(&MemoryAccess::write(Address::new(addr), width, value)).expect("write");
                    for i in 0..u64::from(width) {
                        reference.insert(addr + i, (value >> (8 * i)) as u8);
                    }
                }
                Op::Read { addr, width } => {
                    let got = h.access(&MemoryAccess::read(Address::new(addr), width)).expect("read");
                    let mut expect = 0u64;
                    for i in (0..u64::from(width)).rev() {
                        expect = (expect << 8) | u64::from(*reference.get(&(addr + i)).unwrap_or(&0));
                    }
                    prop_assert_eq!(got, expect & width_mask(width), "at {:#x}", addr);
                }
            }
        }
        h.flush_all();
        for (&addr, &byte) in &reference {
            prop_assert_eq!(h.memory_mut().load(Address::new(addr), 1) as u8, byte);
        }
        prop_assert!(h.l1d().audit().is_ok());
        prop_assert!(h.l2().expect("configured").audit().is_ok());
    }

    /// The per-line direction metadata always stays consistent: stored
    /// lines decode back to their logical content.
    #[test]
    fn directions_stay_decodable(ops in prop::collection::vec(arb_op(), 1..200)) {
        let config = CntCacheConfig::builder()
            .size_bytes(1024)
            .associativity(2)
            .policy(EncodingPolicy::Adaptive(AdaptiveParams {
                window: 3, // aggressive: maximum switch churn
                delta_t: 0.0,
                ..AdaptiveParams::paper_default()
            }))
            .build()
            .expect("valid config");
        let mut cache = CntCache::new(config).expect("valid cache");
        for op in &ops {
            match *op {
                Op::Write { addr, width, value } => {
                    cache.write(Address::new(addr), width, value).expect("write ok");
                }
                Op::Read { addr, width } => {
                    let _ = cache.read(Address::new(addr), width).expect("read ok");
                }
            }
        }
        let lines: Vec<_> = cache
            .valid_lines()
            .map(|(loc, line, dirs)| (loc, line.as_words().to_vec(), *dirs))
            .collect();
        for (loc, logical, dirs) in lines {
            let stored = cache.stored_line(loc).expect("valid line");
            let inverted_partitions = dirs.inverted_count();
            // Count how many 64-bit words differ: with 8 partitions over a
            // 512-bit line, exactly the inverted partitions' words differ.
            let differing = stored
                .iter()
                .zip(logical.iter())
                .filter(|(s, l)| s != l)
                .count() as u32;
            prop_assert_eq!(differing, inverted_partitions);
            // And XOR-ing back restores the logical words.
            for (w, (&s, &l)) in stored.iter().zip(logical.iter()).enumerate() {
                let p = (w as u32 * 64) / 64; // partition index for 8x64-bit layout
                if dirs.is_inverted(p) {
                    prop_assert_eq!(s, !l);
                } else {
                    prop_assert_eq!(s, l);
                }
            }
        }
    }
}

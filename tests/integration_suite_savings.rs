//! The headline reproduction as a regression test: suite-level savings
//! stay in the expected band and the losers stay bounded.

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy, EnergyReport};
use cnt_sim::trace::Trace;
use cnt_workloads::suite_small;

fn run(policy: EncodingPolicy, trace: &Trace) -> EnergyReport {
    let mut cache = CntCache::new(
        CntCacheConfig::builder()
            .policy(policy)
            .build()
            .expect("valid config"),
    )
    .expect("valid cache");
    cache.run(trace.iter()).expect("trace runs");
    cache.flush();
    cache.report()
}

#[test]
fn average_saving_is_in_the_paper_band() {
    let mut savings = Vec::new();
    for w in suite_small() {
        let base = run(EncodingPolicy::None, &w.trace);
        let cnt = run(EncodingPolicy::adaptive_default(), &w.trace);
        savings.push(cnt.saving_vs(&base));
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(
        (5.0..40.0).contains(&avg),
        "suite average saving {avg:.1}% left the plausible band (paper: 22.2%)"
    );
}

#[test]
fn no_kernel_loses_more_than_bounded_overhead() {
    // Adaptive encoding can lose on adversarial data, but only by its
    // metadata + switch overhead — never catastrophically.
    for w in suite_small() {
        let base = run(EncodingPolicy::None, &w.trace);
        let cnt = run(EncodingPolicy::adaptive_default(), &w.trace);
        let saving = cnt.saving_vs(&base);
        assert!(
            saving > -15.0,
            "{} lost {:.1}% — overhead is not bounded",
            w.name,
            -saving
        );
    }
}

#[test]
fn winners_win_for_the_right_reason() {
    // On the sparse read-heavy kernels the gain must come from the read
    // path: stored one-bits must dominate reads after adaptation.
    for name in ["matmul", "fir"] {
        let w = suite_small()
            .into_iter()
            .find(|w| w.name == name)
            .expect("kernel present");
        let base = run(EncodingPolicy::None, &w.trace);
        let cnt = run(EncodingPolicy::adaptive_default(), &w.trace);
        let base_ones_frac =
            base.breakdown.bits_read_one as f64 / base.breakdown.bits_read() as f64;
        let cnt_ones_frac = cnt.breakdown.bits_read_one as f64 / cnt.breakdown.bits_read() as f64;
        assert!(
            cnt_ones_frac > base_ones_frac + 0.2,
            "{name}: stored-ones read fraction {base_ones_frac:.2} -> {cnt_ones_frac:.2} (must grow)"
        );
    }
}

#[test]
fn fifo_never_drops_at_default_drain_rate() {
    for w in suite_small() {
        let cnt = run(EncodingPolicy::adaptive_default(), &w.trace);
        assert_eq!(cnt.fifo.dropped, 0, "{} dropped updates", w.name);
        assert_eq!(
            cnt.fifo.drained + cnt.fifo.pushed - cnt.fifo.drained,
            cnt.fifo.pushed,
            "bookkeeping sanity"
        );
        assert!(cnt.fifo.max_occupancy <= 8, "{}", w.name);
    }
}

#[test]
fn switch_counts_are_consistent() {
    for w in suite_small() {
        let cnt = run(EncodingPolicy::adaptive_default(), &w.trace);
        // Applied switches cannot exceed queued decisions; queued
        // decisions cannot exceed completed windows.
        assert!(cnt.encoding.switches_applied <= cnt.encoding.switch_decisions);
        assert!(cnt.encoding.switch_decisions <= cnt.encoding.windows);
        // Every applied switch flipped at least one partition.
        assert!(cnt.encoding.partition_flips >= cnt.encoding.switches_applied);
        // Projected savings of queued decisions are positive.
        if cnt.encoding.switch_decisions > 0 {
            assert!(cnt.encoding.projected_saving_fj > 0.0, "{}", w.name);
        }
    }
}

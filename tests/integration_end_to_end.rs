//! End-to-end data integrity: every kernel of the suite, under every
//! encoding policy, must leave exactly the same memory image as a plain
//! un-encoded replay — encoding must be invisible to the program.

use cnt_cache::{AdaptiveParams, CntCache, CntCacheConfig, EncodingPolicy};
use cnt_encoding::BitPreference;
use cnt_sim::trace::Trace;
use cnt_sim::{Address, MainMemory};
use cnt_workloads::suite_small;

/// Replays a trace directly against flat memory (no cache): the
/// architectural reference image.
fn reference_image(trace: &Trace) -> MainMemory {
    let mut mem = MainMemory::new();
    for access in trace {
        if access.is_write() {
            mem.store(access.addr, access.width, access.value);
        } else {
            let _ = mem.load(access.addr, access.width);
        }
    }
    mem
}

fn policies() -> Vec<EncodingPolicy> {
    vec![
        EncodingPolicy::None,
        EncodingPolicy::StaticInvert {
            preference: BitPreference::MoreOnes,
            partitions: 8,
        },
        EncodingPolicy::StaticInvert {
            preference: BitPreference::MoreZeros,
            partitions: 1,
        },
        EncodingPolicy::adaptive_default(),
        EncodingPolicy::Adaptive(AdaptiveParams {
            window: 4,
            partitions: 64,
            delta_t: 0.0,
            ..AdaptiveParams::paper_default()
        }),
        EncodingPolicy::Adaptive(AdaptiveParams {
            partitions: 1,
            drain_per_access: 0, // FIFO only drains at flush
            ..AdaptiveParams::paper_default()
        }),
        EncodingPolicy::ZeroFlag,
    ]
}

#[test]
fn all_policies_preserve_program_semantics() {
    for workload in suite_small() {
        let mut reference = reference_image(&workload.trace);
        let touched: Vec<Address> = workload
            .trace
            .iter()
            .filter(|a| a.is_write())
            .map(|a| a.addr.align_down(8))
            .collect();

        for policy in policies() {
            let config = CntCacheConfig::builder()
                .size_bytes(4096) // small: force heavy eviction traffic
                .associativity(2)
                .policy(policy)
                .build()
                .expect("valid config");
            let mut cache = CntCache::new(config).expect("valid cache");
            cache.run(workload.trace.iter()).expect("trace runs");
            cache.flush();
            for &addr in &touched {
                let expect = reference.load(addr, 8);
                let got = cache.memory_mut().load(addr, 8);
                assert_eq!(
                    got, expect,
                    "{}: policy {policy} corrupted {addr}",
                    workload.name
                );
            }
        }
    }
}

#[test]
fn reads_see_writes_in_program_order() {
    // Drive the same kernel through the cache and through flat memory in
    // lockstep, comparing every read value.
    for workload in suite_small() {
        let mut flat = MainMemory::new();
        let config = CntCacheConfig::builder()
            .size_bytes(2048)
            .associativity(2)
            .policy(EncodingPolicy::adaptive_default())
            .build()
            .expect("valid config");
        let mut cache = CntCache::new(config).expect("valid cache");
        for access in workload.trace.iter() {
            if access.is_write() {
                flat.store(access.addr, access.width, access.value);
                cache
                    .write(access.addr, access.width, access.value)
                    .expect("write ok");
            } else {
                let expect = flat.load(access.addr, access.width);
                let got = cache.read(access.addr, access.width).expect("read ok");
                assert_eq!(
                    got, expect,
                    "{}: read mismatch at {}",
                    workload.name, access.addr
                );
            }
        }
    }
}

#[test]
fn wide_lines_and_many_partitions_work_end_to_end() {
    // 128-byte lines (1024 bits) with 32 partitions: partitions span
    // half-words of metadata bookkeeping and two words of data each.
    for partitions in [1u32, 4, 16, 32, 64] {
        let config = CntCacheConfig::builder()
            .size_bytes(8 * 1024)
            .line_bytes(128)
            .associativity(2)
            .policy(EncodingPolicy::Adaptive(AdaptiveParams {
                window: 6,
                partitions,
                ..AdaptiveParams::paper_default()
            }))
            .build()
            .expect("valid config");
        let mut cache = CntCache::new(config).expect("valid cache");
        for w in suite_small().iter().take(4) {
            cache.run(w.trace.iter()).expect("trace runs");
        }
        cache.flush();
        assert!(
            cache.audit().is_ok(),
            "partitions={partitions}: {:?}",
            cache.audit()
        );
        // All resident lines still decode.
        let lines: Vec<_> = cache
            .valid_lines()
            .map(|(loc, line, dirs)| (loc, line.as_words().to_vec(), *dirs))
            .collect();
        for (loc, logical, dirs) in lines {
            let stored = cache.stored_line(loc).expect("valid");
            assert_eq!(stored.len(), 16, "128-byte lines hold 16 words");
            if dirs.all_normal_dirs() {
                assert_eq!(stored, logical);
            }
        }
    }
}

#[test]
fn sixteen_bit_accesses_preserve_semantics_under_encoding() {
    let config = CntCacheConfig::builder()
        .size_bytes(2048)
        .associativity(2)
        .policy(EncodingPolicy::adaptive_default())
        .build()
        .expect("valid config");
    let mut cache = CntCache::new(config).expect("valid cache");
    // Dense interleaving of 1/2/4/8-byte accesses to overlapping words.
    for i in 0..512u64 {
        let base = (i % 32) * 64;
        cache
            .write(Address::new(base), 8, i.wrapping_mul(0x0101_0101_0101_0101))
            .expect("w8");
        cache
            .write(Address::new(base + 8), 2, i & 0xFFFF)
            .expect("w2");
        cache
            .write(Address::new(base + 12), 4, (i ^ 0xFFFF_FFFF) & 0xFFFF_FFFF)
            .expect("w4");
        cache
            .write(Address::new(base + 17), 1, i & 0xFF)
            .expect("w1");
        assert_eq!(
            cache.read(Address::new(base + 8), 2).expect("r2"),
            i & 0xFFFF
        );
        assert_eq!(
            cache.read(Address::new(base + 12), 4).expect("r4"),
            (i ^ 0xFFFF_FFFF) & 0xFFFF_FFFF
        );
        assert_eq!(
            cache.read(Address::new(base + 17), 1).expect("r1"),
            i & 0xFF
        );
    }
    assert!(cache.audit().is_ok());
}

#[test]
fn stored_lines_always_decode_to_logical_content() {
    let workload = &suite_small()[2]; // quicksort: heavy mixed traffic
    let config = CntCacheConfig::builder()
        .size_bytes(4096)
        .associativity(2)
        .policy(EncodingPolicy::adaptive_default())
        .build()
        .expect("valid config");
    let mut cache = CntCache::new(config).expect("valid cache");
    cache.run(workload.trace.iter()).expect("trace runs");
    let mut checked = 0;
    let lines: Vec<_> = cache
        .valid_lines()
        .map(|(loc, line, dirs)| (loc, line.as_words().to_vec(), *dirs))
        .collect();
    for (loc, logical, dirs) in lines {
        let stored = cache.stored_line(loc).expect("valid line");
        // XOR involution: applying the direction mask twice restores.
        assert!(!stored.is_empty(), "stored line must materialize at {loc}");
        if dirs.all_normal_dirs() {
            assert_eq!(stored, logical, "normal lines are stored verbatim");
        } else {
            assert_ne!(stored, logical, "inverted lines differ in the array");
        }
        checked += 1;
    }
    assert!(checked > 0, "no resident lines to check");
}

//! Energy-accounting conservation: the meter inside `CntCache` must agree
//! exactly with an independent bit count performed by a reference
//! observer over the raw simulator, and breakdowns must be internally
//! consistent.

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
use cnt_energy::{BitEnergies, ChargeKind, Energy};
use cnt_sim::{
    Address, ArrayObserver, Cache, CacheGeometry, LineLocation, MainMemory, ReplacementKind,
};
use cnt_workloads::suite_small;

/// Independent accountant: counts stored bits the way the physical array
/// would see them for an *un-encoded* cache.
#[derive(Default)]
struct ReferenceAccountant {
    read_ones: u64,
    read_bits: u64,
    written_ones: u64,
    written_bits: u64,
}

impl ArrayObserver for ReferenceAccountant {
    fn word_read(&mut self, _: LineLocation, _: usize, value: u64) {
        self.read_ones += u64::from(value.count_ones());
        self.read_bits += 64;
    }
    fn word_written(&mut self, _: LineLocation, _: usize, _: u64, new: u64) {
        self.written_ones += u64::from(new.count_ones());
        self.written_bits += 64;
    }
    fn line_filled(&mut self, _: LineLocation, _: Address, data: &[u64]) {
        for &w in data {
            self.written_ones += u64::from(w.count_ones());
            self.written_bits += 64;
        }
    }
    fn line_evicted(&mut self, _: LineLocation, _: Address, data: &[u64], dirty: bool) {
        if dirty {
            for &w in data {
                self.read_ones += u64::from(w.count_ones());
                self.read_bits += 64;
            }
        }
    }
}

impl ReferenceAccountant {
    fn total(&self, bits: &BitEnergies) -> Energy {
        bits.rd1 * self.read_ones as f64
            + bits.rd0 * (self.read_bits - self.read_ones) as f64
            + bits.wr1 * self.written_ones as f64
            + bits.wr0 * (self.written_bits - self.written_ones) as f64
    }
}

#[test]
fn baseline_meter_matches_independent_accounting() {
    for workload in suite_small() {
        // CntCache path (no encoding, no metadata metering).
        let mut config = CntCacheConfig::builder()
            .size_bytes(4096)
            .associativity(2)
            .policy(EncodingPolicy::None)
            .meter_metadata(false)
            .build()
            .expect("valid config");
        config.name = workload.name.clone();
        let mut cache = CntCache::new(config).expect("valid cache");
        cache.run(workload.trace.iter()).expect("trace runs");
        cache.flush();

        // Reference path: same geometry, raw simulator, counting observer.
        let geometry = CacheGeometry::new(4096, 64, 2).expect("valid geometry");
        let mut raw = Cache::new("ref", geometry, ReplacementKind::Lru);
        let mut mem = MainMemory::new();
        let mut accountant = ReferenceAccountant::default();
        for access in workload.trace.iter() {
            if access.is_write() {
                raw.write(
                    access.addr,
                    access.width,
                    access.value,
                    &mut mem,
                    &mut accountant,
                )
                .expect("write ok");
            } else {
                raw.read(access.addr, access.width, &mut mem, &mut accountant)
                    .expect("read ok");
            }
        }
        raw.flush(&mut mem, &mut accountant);

        let bits = BitEnergies::cnfet_default();
        let reference = accountant.total(&bits);
        let metered = cache.total_energy();
        let diff = (reference - metered).abs().femtojoules();
        assert!(
            diff < 1e-6 * reference.femtojoules().max(1.0),
            "{}: meter {metered} vs reference {reference}",
            workload.name
        );

        // Bit counts agree too.
        let b = cache.meter().breakdown();
        assert_eq!(b.bits_read(), accountant.read_bits, "{}", workload.name);
        assert_eq!(
            b.bits_written(),
            accountant.written_bits,
            "{}",
            workload.name
        );
        assert_eq!(b.bits_read_one, accountant.read_ones, "{}", workload.name);
        assert_eq!(
            b.bits_written_one, accountant.written_ones,
            "{}",
            workload.name
        );
    }
}

#[test]
fn breakdown_partitions_are_exhaustive() {
    // total == Σ per-kind energies == read_energy + write_energy, with
    // adaptive encoding and metadata metering enabled.
    let workload = &suite_small()[0];
    let config = CntCacheConfig::builder()
        .policy(EncodingPolicy::adaptive_default())
        .build()
        .expect("valid config");
    let mut cache = CntCache::new(config).expect("valid cache");
    cache.run(workload.trace.iter()).expect("trace runs");
    cache.flush();
    let b = cache.meter().breakdown();
    let by_kind: Energy = ChargeKind::ALL.iter().map(|k| b.energy(*k)).sum();
    let total = b.total();
    assert!((total - by_kind).abs().femtojoules() < 1e-9);
    let rw = b.read_energy() + b.write_energy();
    assert!((total - rw).abs().femtojoules() < 1e-9);
    // Every kind the adaptive path exercises shows activity.
    for kind in [
        ChargeKind::DataRead,
        ChargeKind::DataWrite,
        ChargeKind::LineFill,
        ChargeKind::MetadataRead,
        ChargeKind::MetadataWrite,
    ] {
        assert!(b.bits(kind) > 0, "no activity recorded for {kind}");
    }
}

#[test]
fn encode_switch_energy_is_attributed() {
    // A read-only loop over zero lines forces re-encodings; their cost
    // must land in the EncodeSwitch bucket, not in demand traffic.
    let config = CntCacheConfig::builder()
        .policy(EncodingPolicy::adaptive_default())
        .build()
        .expect("valid config");
    let mut cache = CntCache::new(config).expect("valid cache");
    for round in 0..64 {
        for line in 0..4u64 {
            let _ = round;
            cache.read(Address::new(line * 64), 8).expect("read ok");
        }
    }
    let b = cache.meter().breakdown();
    assert!(
        b.energy(ChargeKind::EncodeSwitch).femtojoules() > 0.0,
        "switches must be charged"
    );
    assert_eq!(
        b.bits(ChargeKind::EncodeSwitch) % 64,
        0,
        "switch writes are whole partitions"
    );
}

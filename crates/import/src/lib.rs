//! # cnt-import — real-application trace importers for CNT-Cache
//!
//! The synthetic kernels in `cnt-workloads` exercise known access
//! shapes; answering "what does the adaptive encoder save on a *real*
//! program" needs captures from real tools. This crate ingests the two
//! interchange formats those tools actually emit and converts them to
//! the repo's chunked `.ctr` format, where the whole replay/energy
//! pipeline (streaming, checkpoints, benches, `cnt-serve`) picks them
//! up unchanged:
//!
//! - [`champsim`] — ChampSim-style packed binary instruction records
//!   (64-byte `input_instr` structs);
//! - [`text`] — DynamoRIO/memtrace-style text streams
//!   (`R 0x7f.. / W 0x7f.. 8 0x..` lines);
//! - both transparently accepted gzip-compressed (detected by magic),
//!   via the vendored DEFLATE shim.
//!
//! The design stance mirrors the `.ctr` reader: **strict by default**.
//! Every malformed record is a typed [`ImportError`] carrying a line
//! number or byte offset; nothing is silently skipped. `--lenient` is
//! an explicit opt-in that drops damaged records and accounts for
//! every drop in the [`ImportReport`], which is also where automation
//! (CI's `metrics_lint`) checks that the importer's arithmetic holds.
//!
//! Inputs are buffered in memory: interchange captures are bounded
//! (unlike `.ctr` replay, which must stream), and the gzip shim
//! decodes whole members anyway. The `.ctr` *output* is written
//! through the streaming [`cnt_trace::TraceWriter`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod champsim;
pub mod error;
pub mod text;

use std::fs;
use std::io::Write;
use std::path::Path;

use cnt_sim::trace::{AccessKind, MemoryAccess};
use cnt_trace::writer::WriteOptions;
use cnt_trace::{ReadOptions, StreamReader, TraceWriter};
use serde::{Deserialize, Serialize};

pub use error::ImportError;

/// Which foreign format an input is parsed as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceFormat {
    /// ChampSim-style packed 64-byte binary records.
    Champsim,
    /// DynamoRIO/memtrace-style text lines.
    Memtrace,
}

impl SourceFormat {
    /// Stable lowercase name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            SourceFormat::Champsim => "champsim",
            SourceFormat::Memtrace => "memtrace",
        }
    }

    /// Parses a CLI flag value.
    pub fn from_flag(flag: &str) -> Option<Self> {
        match flag {
            "champsim" => Some(SourceFormat::Champsim),
            "memtrace" | "text" => Some(SourceFormat::Memtrace),
            _ => None,
        }
    }
}

/// Importer configuration.
#[derive(Debug, Clone, Copy)]
pub struct ImportOptions {
    /// Source format; `None` sniffs it from the (decompressed) bytes.
    pub format: Option<SourceFormat>,
    /// Drop damaged records (counted in the report) instead of failing
    /// on the first one.
    pub lenient: bool,
    /// Target accesses per `.ctr` chunk.
    pub chunk_accesses: u32,
    /// DEFLATE-compress the `.ctr` chunk payloads.
    pub compress: bool,
}

impl Default for ImportOptions {
    fn default() -> Self {
        ImportOptions {
            format: None,
            lenient: false,
            chunk_accesses: cnt_trace::DEFAULT_CHUNK_ACCESSES,
            compress: false,
        }
    }
}

/// What one import produced — the machine-readable receipt.
///
/// The arithmetic is deliberately redundant (`accesses` must equal
/// `reads + writes + ifetches`; `dropped > 0` only with `lenient`) so
/// `metrics_lint` can cross-check an import after the fact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportReport {
    /// Input path (or `"<memory>"` for in-memory imports).
    pub source: String,
    /// Format the input was parsed as (`"champsim"` / `"memtrace"`).
    pub format: String,
    /// Whether the input was gzip-wrapped.
    pub gzip: bool,
    /// Whether lenient mode was on.
    pub lenient: bool,
    /// Source records seen (text lines / binary structs), including
    /// dropped ones but not comments or blank lines.
    pub records_in: u64,
    /// Accesses written to the `.ctr` output.
    pub accesses: u64,
    /// Data loads among `accesses`.
    pub reads: u64,
    /// Data stores among `accesses`.
    pub writes: u64,
    /// Instruction fetches among `accesses`.
    pub ifetches: u64,
    /// Records dropped (always 0 unless `lenient`).
    pub dropped: u64,
    /// The first drop's error text, for triage.
    #[serde(default)]
    pub first_drop: Option<String>,
    /// Chunks in the `.ctr` output.
    pub chunks: u64,
    /// Payload bytes in the `.ctr` output (compressed size when
    /// compression is on).
    pub payload_bytes: u64,
    /// Total `.ctr` output size in bytes.
    pub output_bytes: u64,
    /// The output's trace-identity digest (FNV-1a over header and
    /// frames, as `cnt_trace::StreamReader::identity` computes it),
    /// in hex. Re-importing the same source must reproduce it.
    pub identity: String,
}

/// Accesses accumulated by a format parser, with drop accounting.
#[derive(Debug, Default)]
pub struct ParsedStream {
    /// The demand accesses, in source order.
    pub accesses: Vec<MemoryAccess>,
    /// Source records seen (including dropped).
    pub records_in: u64,
    /// Records dropped under lenient mode.
    pub dropped: u64,
    /// The first drop's rendered error.
    pub first_drop: Option<String>,
}

impl ParsedStream {
    /// Appends one parsed access.
    pub fn push(&mut self, access: MemoryAccess) {
        self.accesses.push(access);
    }

    /// Counts one lenient-mode drop, keeping the first error text.
    pub fn drop_record(&mut self, error: &ImportError) {
        self.dropped += 1;
        if self.first_drop.is_none() {
            self.first_drop = Some(error.to_string());
        }
    }
}

/// SplitMix64 — the repo's standard cheap deterministic value hash,
/// used to synthesize write payloads for formats that don't record
/// data bytes.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sniffs the source format from decompressed bytes: a stream whose
/// first non-whitespace bytes look like memtrace lines (an opcode
/// letter followed by whitespace, or a `#` comment) is text; anything
/// else is treated as packed binary records.
pub fn sniff_format(bytes: &[u8]) -> SourceFormat {
    let head = bytes.iter().position(|b| !b.is_ascii_whitespace());
    match head {
        None => SourceFormat::Memtrace, // empty: harmless either way
        Some(i) => match bytes[i] {
            b'#' => SourceFormat::Memtrace,
            b'R' | b'W' | b'I' | b'r' | b'w' | b'i'
                if bytes.get(i + 1).is_some_and(|b| b.is_ascii_whitespace()) =>
            {
                SourceFormat::Memtrace
            }
            _ => SourceFormat::Champsim,
        },
    }
}

/// Imports raw input bytes into `.ctr` bytes plus the report.
///
/// This is the pure core of [`import_file`]: gzip detection and
/// decompression, format sniffing, strict/lenient parsing, `.ctr`
/// packing, and identity computation — no filesystem involved.
///
/// # Errors
///
/// Any [`ImportError`]; in strict mode the first malformed record.
pub fn import_bytes(
    raw: &[u8],
    source: &str,
    opts: ImportOptions,
) -> Result<(Vec<u8>, ImportReport), ImportError> {
    let gzip = flate2::is_gzip(raw);
    let decompressed: Vec<u8>;
    let bytes: &[u8] = if gzip {
        let mut decoder = flate2::read::GzDecoder::new(raw);
        let mut out = Vec::new();
        std::io::Read::read_to_end(&mut decoder, &mut out).map_err(|e| ImportError::Gzip {
            what: e.to_string(),
        })?;
        decompressed = out;
        &decompressed
    } else {
        raw
    };

    let format = opts.format.unwrap_or_else(|| sniff_format(bytes));
    let parsed = match format {
        SourceFormat::Champsim => champsim::parse_champsim(bytes, opts.lenient)?,
        SourceFormat::Memtrace => text::parse_text(bytes, opts.lenient)?,
    };
    if parsed.accesses.is_empty() {
        return Err(ImportError::Empty);
    }

    let counters = cnt_obs::registry();
    counters.counter("import.records").add(parsed.records_in);
    counters
        .counter("import.accesses")
        .add(parsed.accesses.len() as u64);
    counters.counter("import.dropped").add(parsed.dropped);

    let mut ctr = Vec::new();
    let mut writer = TraceWriter::with_options(
        &mut ctr,
        WriteOptions {
            chunk_accesses: opts.chunk_accesses,
            compress: opts.compress,
        },
    )?;
    let (mut reads, mut writes, mut ifetches) = (0u64, 0u64, 0u64);
    for access in &parsed.accesses {
        match access.kind {
            AccessKind::Read => reads += 1,
            AccessKind::Write => writes += 1,
            AccessKind::InstrFetch => ifetches += 1,
        }
        writer.push(access)?;
    }
    let summary = writer.finish()?;

    // Stream the produced bytes back through the real reader: this both
    // proves the output replays and yields the identity digest the
    // report promises.
    let mut reader = StreamReader::new(&ctr[..], ReadOptions::default())?;
    while reader.next_raw()?.is_some() {}
    let identity = format!("{:016x}", reader.identity());

    let report = ImportReport {
        source: source.to_string(),
        format: format.name().to_string(),
        gzip,
        lenient: opts.lenient,
        records_in: parsed.records_in,
        accesses: summary.accesses,
        reads,
        writes,
        ifetches,
        dropped: parsed.dropped,
        first_drop: parsed.first_drop,
        chunks: summary.chunks,
        payload_bytes: summary.payload_bytes,
        output_bytes: ctr.len() as u64,
        identity,
    };
    Ok((ctr, report))
}

/// Imports `input` (a ChampSim/memtrace capture, plain or gzip'd) into
/// a `.ctr` file at `output`, returning the report.
///
/// The output is written atomically (`.tmp` + rename) so a failed
/// import never leaves a half-written trace behind.
///
/// # Errors
///
/// Any [`ImportError`].
pub fn import_file(
    input: &Path,
    output: &Path,
    opts: ImportOptions,
) -> Result<ImportReport, ImportError> {
    let raw = fs::read(input)?;
    let (ctr, report) = import_bytes(&raw, &input.display().to_string(), opts)?;
    let tmp = output.with_extension("ctr.tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&ctr)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, output)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_trace::read_trace;

    const TEXT: &[u8] = b"# fixture\nR 0x1000\nW 0x2000 8 0xff\nI 0x401000\nR 0x1040 4\n";

    fn gzip(bytes: &[u8]) -> Vec<u8> {
        let mut encoder = flate2::write::GzEncoder::new(Vec::new(), flate2::Compression::default());
        encoder.write_all(bytes).expect("buffers");
        encoder.finish().expect("compresses")
    }

    fn champsim_bytes() -> Vec<u8> {
        let mut bytes = Vec::new();
        for i in 0..5u64 {
            let mut record = [0u8; champsim::RECORD_BYTES];
            record[..8].copy_from_slice(&(0x401000 + i * 4).to_le_bytes());
            record[32..40].copy_from_slice(&(0x1000 + i * 64).to_le_bytes());
            if i % 2 == 0 {
                record[16..24].copy_from_slice(&(0x5000 + i * 64).to_le_bytes());
            }
            bytes.extend_from_slice(&record);
        }
        bytes
    }

    #[test]
    fn sniffs_text_vs_binary() {
        assert_eq!(sniff_format(TEXT), SourceFormat::Memtrace);
        assert_eq!(sniff_format(&champsim_bytes()), SourceFormat::Champsim);
        assert_eq!(sniff_format(b"  R 0x10\n"), SourceFormat::Memtrace);
        // 'R' followed by non-whitespace is not a memtrace line.
        assert_eq!(sniff_format(b"RIFF...."), SourceFormat::Champsim);
    }

    #[test]
    fn text_import_round_trips_and_reports() {
        let (ctr, report) =
            import_bytes(TEXT, "<memory>", ImportOptions::default()).expect("imports");
        assert_eq!(report.format, "memtrace");
        assert!(!report.gzip);
        assert_eq!(report.records_in, 4);
        assert_eq!(report.accesses, 4);
        assert_eq!(report.reads, 2);
        assert_eq!(report.writes, 1);
        assert_eq!(report.ifetches, 1);
        assert_eq!(report.dropped, 0);
        assert_eq!(
            report.accesses,
            report.reads + report.writes + report.ifetches
        );
        assert_eq!(report.output_bytes, ctr.len() as u64);
        let trace = read_trace(&ctr[..], ReadOptions::default()).expect("replays");
        assert_eq!(trace.len(), 4);
    }

    #[test]
    fn gzip_wrapped_input_imports_to_identical_ctr() {
        let plain = import_bytes(TEXT, "<memory>", ImportOptions::default()).expect("imports");
        let gz = gzip(TEXT);
        let wrapped = import_bytes(&gz, "<memory>", ImportOptions::default()).expect("imports gz");
        assert!(wrapped.1.gzip);
        assert_eq!(plain.0, wrapped.0, "gzip transparency: same .ctr bytes");
        assert_eq!(plain.1.identity, wrapped.1.identity);
    }

    #[test]
    fn damaged_gzip_is_a_typed_error_even_in_lenient_mode() {
        let mut gz = gzip(TEXT);
        let mid = gz.len() / 2;
        gz[mid] ^= 0x20;
        let opts = ImportOptions {
            lenient: true,
            ..ImportOptions::default()
        };
        let err = import_bytes(&gz, "<memory>", opts).expect_err("rejects");
        assert!(matches!(err, ImportError::Gzip { .. }), "{err}");
    }

    #[test]
    fn champsim_import_reports_access_mix() {
        let bytes = champsim_bytes();
        let (ctr, report) =
            import_bytes(&bytes, "<memory>", ImportOptions::default()).expect("imports");
        assert_eq!(report.format, "champsim");
        assert_eq!(report.records_in, 5);
        assert_eq!(report.ifetches, 5);
        assert_eq!(report.reads, 5);
        assert_eq!(report.writes, 3);
        assert_eq!(report.accesses, 13);
        let trace = read_trace(&ctr[..], ReadOptions::default()).expect("replays");
        assert_eq!(trace.len(), 13);
    }

    #[test]
    fn reimport_is_byte_identical() {
        for compress in [false, true] {
            let opts = ImportOptions {
                compress,
                ..ImportOptions::default()
            };
            let a = import_bytes(TEXT, "<memory>", opts).expect("imports");
            let b = import_bytes(TEXT, "<memory>", opts).expect("imports");
            assert_eq!(a.0, b.0, "compress={compress}");
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn compressed_output_still_replays() {
        let opts = ImportOptions {
            compress: true,
            chunk_accesses: 2,
            ..ImportOptions::default()
        };
        let (ctr, report) = import_bytes(TEXT, "<memory>", opts).expect("imports");
        let plain = import_bytes(TEXT, "<memory>", ImportOptions::default()).expect("imports");
        let a = read_trace(&ctr[..], ReadOptions::default()).expect("replays");
        let b = read_trace(&plain.0[..], ReadOptions::default()).expect("replays");
        assert_eq!(a, b, "compression must not change the replayed accesses");
        assert_eq!(report.accesses, 4);
    }

    #[test]
    fn empty_input_is_refused() {
        for input in [&b""[..], b"# only comments\n\n"] {
            let err = import_bytes(input, "<memory>", ImportOptions::default())
                .expect_err("rejects empty");
            assert!(matches!(err, ImportError::Empty), "{err}");
        }
    }

    #[test]
    fn import_file_writes_atomically_and_round_trips() {
        let dir = std::env::temp_dir().join("cnt_import_test");
        fs::create_dir_all(&dir).expect("mkdir");
        let input = dir.join("fixture.txt");
        let output = dir.join("fixture.ctr");
        fs::write(&input, TEXT).expect("writes input");
        let report = import_file(&input, &output, ImportOptions::default()).expect("imports");
        assert_eq!(report.accesses, 4);
        assert!(report.source.ends_with("fixture.txt"));
        let bytes = fs::read(&output).expect("reads output");
        assert_eq!(bytes.len() as u64, report.output_bytes);
        assert!(
            !dir.join("fixture.ctr.tmp").exists(),
            "tmp file renamed away"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

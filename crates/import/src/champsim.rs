//! ChampSim-style packed binary instruction-trace parser.
//!
//! ChampSim distributes traces as a flat array of fixed 64-byte
//! `input_instr` records (usually xz- or gzip-compressed):
//!
//! ```text
//! offset  field                       size
//! 0       ip                          u64 (little-endian)
//! 8       is_branch                   u8  (0 or 1)
//! 9       branch_taken                u8  (0 or 1)
//! 10      destination_registers[2]    2 × u8
//! 12      source_registers[4]         4 × u8
//! 16      destination_memory[2]       2 × u64
//! 32      source_memory[4]            4 × u64
//! ```
//!
//! The CNT-Cache model consumes demand accesses, so each record maps
//! to: one instruction fetch at `ip`, one 8-byte read per non-zero
//! `source_memory` slot, and one 8-byte write per non-zero
//! `destination_memory` slot. Register fields don't touch the cache
//! and are ignored. Writes carry a deterministic synthesized value
//! (ChampSim traces record *which* bytes move, not their contents,
//! while the energy model prices actual data bits).
//!
//! Strictness: the flag bytes are validated (anything but 0/1 means
//! the reader lost record framing — the single most common symptom of
//! decompressing a truncated download), and a trailing partial record
//! is a typed [`ImportError::TruncatedRecord`] with its byte offset,
//! never a silent drop. Lenient mode skips flag-damaged *records*;
//! truncation stays fatal because past it there is no 64-byte boundary
//! to trust.

use cnt_sim::trace::MemoryAccess;
use cnt_sim::Address;

use crate::error::ImportError;
use crate::{splitmix64, ParsedStream};

/// Size of one packed `input_instr` record.
pub const RECORD_BYTES: usize = 64;

/// Parses a whole ChampSim-style binary stream.
///
/// # Errors
///
/// [`ImportError::BadFlag`] for framing damage (droppable in lenient
/// mode), [`ImportError::TruncatedRecord`] for a torn tail (always
/// fatal).
pub fn parse_champsim(bytes: &[u8], lenient: bool) -> Result<ParsedStream, ImportError> {
    let mut out = ParsedStream::default();
    let whole = bytes.len() / RECORD_BYTES * RECORD_BYTES;
    for (idx, record) in bytes[..whole].chunks_exact(RECORD_BYTES).enumerate() {
        let offset = (idx * RECORD_BYTES) as u64;
        out.records_in += 1;
        match parse_record(record, offset) {
            Ok(accesses) => {
                for access in accesses {
                    out.push(access);
                }
            }
            Err(e) if lenient && e.is_droppable() => out.drop_record(&e),
            Err(e) => return Err(e),
        }
    }
    if whole < bytes.len() {
        return Err(ImportError::TruncatedRecord {
            offset: whole as u64,
            have: bytes.len() - whole,
            need: RECORD_BYTES,
        });
    }
    Ok(out)
}

/// Decodes one 64-byte record into its demand accesses.
fn parse_record(record: &[u8], offset: u64) -> Result<Vec<MemoryAccess>, ImportError> {
    let ip = u64_at(record, 0);
    for (at, field) in [(8usize, "is_branch"), (9, "branch_taken")] {
        if record[at] > 1 {
            return Err(ImportError::BadFlag {
                offset,
                field,
                value: record[at],
            });
        }
    }
    let mut accesses = Vec::with_capacity(1 + 6);
    accesses.push(MemoryAccess::ifetch(Address::new(ip & !7)));
    // Loads before stores: a store's operands are read first.
    for slot in 0..4 {
        let addr = u64_at(record, 32 + slot * 8);
        if addr != 0 {
            accesses.push(MemoryAccess::read(Address::new(addr & !7), 8));
        }
    }
    for slot in 0..2 {
        let addr = u64_at(record, 16 + slot * 8);
        if addr != 0 {
            let value = splitmix64(offset ^ addr);
            accesses.push(MemoryAccess::write(Address::new(addr & !7), 8, value));
        }
    }
    Ok(accesses)
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_sim::trace::AccessKind;

    /// Builds one 64-byte record.
    pub(crate) fn record(ip: u64, dst_mem: [u64; 2], src_mem: [u64; 4]) -> [u8; RECORD_BYTES] {
        let mut bytes = [0u8; RECORD_BYTES];
        bytes[..8].copy_from_slice(&ip.to_le_bytes());
        bytes[8] = 0; // is_branch
        bytes[9] = 1; // branch_taken
        for (i, a) in dst_mem.iter().enumerate() {
            bytes[16 + i * 8..24 + i * 8].copy_from_slice(&a.to_le_bytes());
        }
        for (i, a) in src_mem.iter().enumerate() {
            bytes[32 + i * 8..40 + i * 8].copy_from_slice(&a.to_le_bytes());
        }
        bytes
    }

    #[test]
    fn maps_records_to_fetch_reads_writes() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&record(0x401000, [0x5000, 0], [0x1000, 0x2000, 0, 0]));
        bytes.extend_from_slice(&record(0x401004, [0, 0], [0, 0, 0, 0]));
        let parsed = parse_champsim(&bytes, false).expect("parses");
        assert_eq!(parsed.records_in, 2);
        let kinds: Vec<AccessKind> = parsed.accesses.iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AccessKind::InstrFetch,
                AccessKind::Read,
                AccessKind::Read,
                AccessKind::Write,
                AccessKind::InstrFetch,
            ]
        );
        assert_eq!(parsed.accesses[0].addr, Address::new(0x401000));
        assert_eq!(parsed.accesses[3].addr, Address::new(0x5000));
        assert_ne!(parsed.accesses[3].value, 0, "writes carry synthesized data");
    }

    #[test]
    fn synthesized_values_are_deterministic() {
        let bytes = record(0x401000, [0x5000, 0x6000], [0, 0, 0, 0]);
        let a = parse_champsim(&bytes, false).expect("parses").accesses;
        let b = parse_champsim(&bytes, false).expect("parses").accesses;
        assert_eq!(a, b);
        assert_ne!(a[1].value, a[2].value, "different slots, different values");
    }

    #[test]
    fn bad_flag_names_the_record_offset() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&record(0x401000, [0, 0], [0, 0, 0, 0]));
        let mut bad = record(0x401004, [0, 0], [0, 0, 0, 0]);
        bad[8] = 0x7f;
        bytes.extend_from_slice(&bad);
        let err = parse_champsim(&bytes, false).expect_err("rejects");
        assert!(
            matches!(
                err,
                ImportError::BadFlag {
                    offset: 64,
                    field: "is_branch",
                    value: 0x7f
                }
            ),
            "{err}"
        );
        // Lenient drops exactly that record.
        let parsed = parse_champsim(&bytes, true).expect("lenient parses");
        assert_eq!(parsed.records_in, 2);
        assert_eq!(parsed.dropped, 1);
        assert_eq!(parsed.accesses.len(), 1);
        assert!(parsed.first_drop.expect("recorded").contains("byte 64"));
    }

    #[test]
    fn truncated_tail_is_fatal_even_in_lenient_mode() {
        let mut bytes = record(0x401000, [0, 0], [0, 0, 0, 0]).to_vec();
        bytes.extend_from_slice(&[0u8; 10]);
        for lenient in [false, true] {
            let err = parse_champsim(&bytes, lenient).expect_err("rejects");
            assert!(
                matches!(
                    err,
                    ImportError::TruncatedRecord {
                        offset: 64,
                        have: 10,
                        need: 64
                    }
                ),
                "{err}"
            );
        }
    }
}

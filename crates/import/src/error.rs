//! Typed errors for trace importing.
//!
//! Every parse failure names where it happened — a 1-based line number
//! for text streams, a byte offset for binary ones — so a failed import
//! of a multi-GB capture points at the damage instead of just refusing.
//! Nothing here is ever silently skipped: strict mode surfaces the
//! first bad record as an error, and lenient mode (opt-in) counts every
//! drop in the [`ImportReport`](crate::ImportReport).

use std::error::Error;
use std::fmt;
use std::io;

use cnt_trace::TraceError;

/// Everything that can go wrong while importing a foreign trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImportError {
    /// An underlying I/O failure on the input or output file.
    Io(io::Error),
    /// The gzip wrapper is damaged (bad magic, header, CRC-32 or
    /// length trailer). Never recoverable: past a broken DEFLATE
    /// stream there is no record boundary to resynchronize on, so
    /// lenient mode does not apply.
    Gzip {
        /// What the gzip decoder reported.
        what: String,
    },
    /// A text line's first field is not `R`, `W` or `I`.
    BadOpcode {
        /// 1-based line number.
        line: u64,
        /// The offending field.
        found: String,
    },
    /// A text line's address field is not hexadecimal.
    BadAddress {
        /// 1-based line number.
        line: u64,
        /// The offending field.
        found: String,
    },
    /// A text line's width field is not one of 1, 2, 4, 8.
    BadWidth {
        /// 1-based line number.
        line: u64,
        /// The offending field.
        found: String,
    },
    /// A text line's value field is not hexadecimal.
    BadValue {
        /// 1-based line number.
        line: u64,
        /// The offending field.
        found: String,
    },
    /// A text line has too many fields for its opcode.
    BadFieldCount {
        /// 1-based line number.
        line: u64,
        /// Fields found.
        found: usize,
        /// Maximum fields this opcode admits.
        max: usize,
    },
    /// A binary record's one-byte flag holds something other than 0/1.
    BadFlag {
        /// Byte offset of the record start.
        offset: u64,
        /// Which flag field.
        field: &'static str,
        /// The byte actually found.
        value: u8,
    },
    /// The input ends in the middle of a fixed-size binary record.
    TruncatedRecord {
        /// Byte offset of the torn record.
        offset: u64,
        /// Bytes present.
        have: usize,
        /// Bytes a whole record needs.
        need: usize,
    },
    /// The input produced zero accesses — empty, all comments, or (in
    /// lenient mode) everything dropped. An empty `.ctr` would replay
    /// as a silent no-op, so this is surfaced instead.
    Empty,
    /// The `.ctr` writer or verification reader failed.
    Trace(TraceError),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "import I/O error: {e}"),
            ImportError::Gzip { what } => write!(f, "gzip wrapper is damaged: {what}"),
            ImportError::BadOpcode { line, found } => {
                write!(f, "line {line}: bad opcode `{found}` (expected R, W or I)")
            }
            ImportError::BadAddress { line, found } => {
                write!(f, "line {line}: bad address `{found}` (expected hex)")
            }
            ImportError::BadWidth { line, found } => {
                write!(
                    f,
                    "line {line}: bad width `{found}` (expected 1, 2, 4 or 8)"
                )
            }
            ImportError::BadValue { line, found } => {
                write!(f, "line {line}: bad value `{found}` (expected hex)")
            }
            ImportError::BadFieldCount { line, found, max } => {
                write!(
                    f,
                    "line {line}: {found} fields (this opcode admits at most {max})"
                )
            }
            ImportError::BadFlag {
                offset,
                field,
                value,
            } => write!(
                f,
                "record at byte {offset}: {field} flag is {value:#04x} (expected 0 or 1)"
            ),
            ImportError::TruncatedRecord { offset, have, need } => write!(
                f,
                "truncated record at byte {offset}: {have} of {need} bytes"
            ),
            ImportError::Empty => write!(f, "input produced zero accesses"),
            ImportError::Trace(e) => write!(f, "writing .ctr output failed: {e}"),
        }
    }
}

impl Error for ImportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ImportError::Io(e) => Some(e),
            ImportError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ImportError {
    fn from(e: io::Error) -> Self {
        ImportError::Io(e)
    }
}

impl From<TraceError> for ImportError {
    fn from(e: TraceError) -> Self {
        ImportError::Trace(e)
    }
}

impl ImportError {
    /// `true` for per-record damage lenient mode may drop; wrapper-level
    /// damage (gzip, I/O, truncated binary tail mid-stream) stays fatal.
    pub fn is_droppable(&self) -> bool {
        matches!(
            self,
            ImportError::BadOpcode { .. }
                | ImportError::BadAddress { .. }
                | ImportError::BadWidth { .. }
                | ImportError::BadValue { .. }
                | ImportError::BadFieldCount { .. }
                | ImportError::BadFlag { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_location() {
        let e = ImportError::BadOpcode {
            line: 7,
            found: "X".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.is_droppable());
        let t = ImportError::TruncatedRecord {
            offset: 128,
            have: 12,
            need: 64,
        };
        assert!(t.to_string().contains("byte 128"));
        assert!(!t.is_droppable());
        assert!(!ImportError::Empty.is_droppable());
    }
}

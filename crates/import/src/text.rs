//! DynamoRIO/memtrace-style text stream parser.
//!
//! The format is one access per line:
//!
//! ```text
//! R 0x7f2a00401000
//! W 0x7f2a00500040 8 0xdeadbeef
//! I 0x401000
//! # comments and blank lines are ignored
//! ```
//!
//! Fields are whitespace-separated: an opcode (`R`ead, `W`rite,
//! `I`nstruction fetch), a hex address (`0x` prefix optional), an
//! optional width (1, 2, 4 or 8 bytes; default 8), and — for writes
//! only — an optional hex value. Writes without a value get a
//! deterministic synthesized one (the CNT-Cache energy model prices
//! actual data bits, so a write must carry *some* payload; deriving it
//! from the line number and address keeps imports reproducible).
//!
//! Strictness is the point: any malformed field is a typed
//! [`ImportError`] carrying the 1-based line number. Lenient mode drops
//! the offending *line* (never a prefix of it) and counts the drop.

use cnt_sim::trace::MemoryAccess;
use cnt_sim::Address;

use crate::error::ImportError;
use crate::{splitmix64, ParsedStream};

/// Widths the `.ctr` record format can carry.
const WIDTHS: [u8; 4] = [1, 2, 4, 8];

/// Parses a whole memtrace-style text stream.
///
/// # Errors
///
/// Typed [`ImportError`]s naming the 1-based line; in lenient mode
/// droppable line-level errors are counted instead of returned.
pub fn parse_text(bytes: &[u8], lenient: bool) -> Result<ParsedStream, ImportError> {
    let mut out = ParsedStream::default();
    for (idx, raw_line) in bytes.split(|&b| b == b'\n').enumerate() {
        let line_no = idx as u64 + 1;
        let line = trim_ascii(raw_line);
        if line.is_empty() || line[0] == b'#' {
            continue;
        }
        out.records_in += 1;
        match parse_line(line, line_no) {
            Ok(access) => out.push(access),
            Err(e) if lenient && e.is_droppable() => out.drop_record(&e),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Parses one non-empty, non-comment line.
fn parse_line(line: &[u8], line_no: u64) -> Result<MemoryAccess, ImportError> {
    let mut fields = line
        .split(|b| b.is_ascii_whitespace())
        .filter(|f| !f.is_empty());
    let opcode = fields.next().expect("line is non-empty");
    let rest: Vec<&[u8]> = fields.collect();

    let kind = match opcode {
        b"R" | b"r" => b'R',
        b"W" | b"w" => b'W',
        b"I" | b"i" => b'I',
        other => {
            return Err(ImportError::BadOpcode {
                line: line_no,
                found: lossy(other),
            })
        }
    };

    let max_fields = if kind == b'W' { 3 } else { 2 };
    if rest.len() > max_fields {
        return Err(ImportError::BadFieldCount {
            line: line_no,
            found: rest.len() + 1,
            max: max_fields + 1,
        });
    }
    let Some(addr_field) = rest.first() else {
        return Err(ImportError::BadAddress {
            line: line_no,
            found: String::new(),
        });
    };
    let addr = parse_hex(addr_field).ok_or_else(|| ImportError::BadAddress {
        line: line_no,
        found: lossy(addr_field),
    })?;

    let width = match rest.get(1) {
        None => 8u8,
        Some(field) => {
            let w = parse_dec(field).ok_or_else(|| ImportError::BadWidth {
                line: line_no,
                found: lossy(field),
            })?;
            let w = u8::try_from(w).unwrap_or(0);
            if !WIDTHS.contains(&w) {
                return Err(ImportError::BadWidth {
                    line: line_no,
                    found: lossy(field),
                });
            }
            w
        }
    };

    // `.ctr` records require natural alignment; captures from real
    // machines contain unaligned accesses, which are normalized by
    // aligning the address down. This is a value-preserving transform
    // for the energy model (the cache line touched is the same), not a
    // silent drop.
    let aligned = Address::new(addr & !(u64::from(width) - 1));
    Ok(match kind {
        b'R' => MemoryAccess::read(aligned, width),
        b'I' => MemoryAccess::ifetch(Address::new(addr & !7)),
        _ => {
            let value = match rest.get(2) {
                Some(field) => parse_hex(field).ok_or_else(|| ImportError::BadValue {
                    line: line_no,
                    found: lossy(field),
                })?,
                None => splitmix64(line_no ^ addr),
            };
            MemoryAccess::write(aligned, width, mask_value(value, width))
        }
    })
}

/// Keeps only the low `width * 8` bits (the record format's contract).
fn mask_value(value: u64, width: u8) -> u64 {
    if width >= 8 {
        value
    } else {
        value & ((1u64 << (u32::from(width) * 8)) - 1)
    }
}

/// Parses a hex field, accepting an optional `0x`/`0X` prefix.
fn parse_hex(field: &[u8]) -> Option<u64> {
    let digits = match field {
        [b'0', b'x', rest @ ..] | [b'0', b'X', rest @ ..] => rest,
        other => other,
    };
    if digits.is_empty() || digits.len() > 16 {
        return None;
    }
    let mut value = 0u64;
    for &b in digits {
        value = (value << 4) | u64::from((b as char).to_digit(16)? as u8);
    }
    Some(value)
}

/// Parses a small decimal field.
fn parse_dec(field: &[u8]) -> Option<u64> {
    if field.is_empty() || field.len() > 3 {
        return None;
    }
    let mut value = 0u64;
    for &b in field {
        if !b.is_ascii_digit() {
            return None;
        }
        value = value * 10 + u64::from(b - b'0');
    }
    Some(value)
}

fn trim_ascii(line: &[u8]) -> &[u8] {
    let start = line.iter().position(|b| !b.is_ascii_whitespace());
    match start {
        None => &[],
        Some(start) => {
            let end = line.iter().rposition(|b| !b.is_ascii_whitespace()).unwrap();
            &line[start..=end]
        }
    }
}

fn lossy(field: &[u8]) -> String {
    String::from_utf8_lossy(field).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_sim::trace::AccessKind;

    #[test]
    fn parses_the_documented_forms() {
        let text = b"# header comment\n\
                     R 0x7f2a00401000\n\
                     W 0x7f2a00500040 8 0xdeadbeef\n\
                     I 401000\n\
                     w 1000 4\n\
                     \n";
        let parsed = parse_text(text, false).expect("parses");
        assert_eq!(parsed.records_in, 4);
        assert_eq!(parsed.accesses.len(), 4);
        assert_eq!(parsed.dropped, 0);
        let a = &parsed.accesses;
        assert_eq!(a[0], MemoryAccess::read(Address::new(0x7f2a_0040_1000), 8));
        assert_eq!(
            a[1],
            MemoryAccess::write(Address::new(0x7f2a_0050_0040), 8, 0xdead_beef)
        );
        assert_eq!(a[2].kind, AccessKind::InstrFetch);
        assert_eq!(a[3].kind, AccessKind::Write);
        assert_eq!(a[3].width, 4);
        assert!(a[3].value <= u64::from(u32::MAX), "value masked to width");
    }

    #[test]
    fn synthesized_write_values_are_deterministic() {
        let text = b"W 1000\nW 1000\nW 1008\n";
        let a = parse_text(text, false).expect("parses").accesses;
        let b = parse_text(text, false).expect("parses").accesses;
        assert_eq!(a, b);
        assert_ne!(a[0].value, a[2].value, "different lines, different values");
        assert_ne!(a[0].value, a[1].value, "line number feeds the hash");
    }

    #[test]
    fn unaligned_addresses_are_aligned_down() {
        let parsed = parse_text(b"R 0x1003 4\n", false).expect("parses");
        assert_eq!(parsed.accesses[0].addr, Address::new(0x1000));
    }

    #[test]
    fn each_malformed_field_is_a_typed_error_with_its_line() {
        type Case = (&'static [u8], fn(&ImportError) -> bool);
        let cases: &[Case] = &[
            (b"R 1000\nX 2000\n", |e| {
                matches!(e, ImportError::BadOpcode { line: 2, .. })
            }),
            (b"R zz\n", |e| {
                matches!(e, ImportError::BadAddress { line: 1, .. })
            }),
            (b"R\n", |e| {
                matches!(e, ImportError::BadAddress { line: 1, .. })
            }),
            (b"R 1000 3\n", |e| {
                matches!(e, ImportError::BadWidth { line: 1, .. })
            }),
            (b"W 1000 8 qq\n", |e| {
                matches!(e, ImportError::BadValue { line: 1, .. })
            }),
            (b"R 1000 8 55\n", |e| {
                matches!(e, ImportError::BadFieldCount { line: 1, .. })
            }),
            (b"W 1000 8 55 99\n", |e| {
                matches!(e, ImportError::BadFieldCount { line: 1, .. })
            }),
        ];
        for (text, check) in cases {
            let err = parse_text(text, false).expect_err("must reject");
            assert!(check(&err), "{err} for {:?}", String::from_utf8_lossy(text));
        }
    }

    #[test]
    fn lenient_drops_only_the_bad_lines_and_counts_them() {
        let text = b"R 1000\nX 2000\nW 3000\nR zz\n";
        let parsed = parse_text(text, true).expect("lenient parses");
        assert_eq!(parsed.records_in, 4);
        assert_eq!(parsed.accesses.len(), 2);
        assert_eq!(parsed.dropped, 2);
        let first = parsed.first_drop.expect("first drop recorded");
        assert!(first.contains("line 2"), "{first}");
    }
}

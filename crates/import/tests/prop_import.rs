//! Robustness properties of the trace importers, mirroring the
//! checkpoint robustness suite: valid inputs import deterministically,
//! arbitrary byte damage yields a typed error (or a clean parse of what
//! remained valid) — never a panic, never silently wrong counts — and
//! the committed golden fixtures keep their exact shape and identity.

use std::path::PathBuf;

use cnt_import::{import_bytes, ImportError, ImportOptions, SourceFormat};
use proptest::prelude::*;

/// The committed golden fixtures under `tests/fixtures/` at the repo
/// root (shared with the CI import-smoke job).
fn fixture(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("fixture `{}`: {e}", path.display()))
}

fn opts() -> ImportOptions {
    ImportOptions::default()
}

fn lenient() -> ImportOptions {
    ImportOptions {
        lenient: true,
        ..ImportOptions::default()
    }
}

/// Forced ChampSim parsing: random record bytes can look like a
/// memtrace opcode to the sniffer (e.g. an `ip` whose low bytes are
/// `R `), so the binary proptests pin the format like a real user
/// importing a known capture would.
fn champsim(lenient: bool) -> ImportOptions {
    ImportOptions {
        format: Some(SourceFormat::Champsim),
        lenient,
        ..ImportOptions::default()
    }
}

// ---------------------------------------------------------------- golden

#[test]
fn golden_champsim_fixture_keeps_its_shape_and_identity() {
    let raw = fixture("champsim_small.bin");
    let (ctr, report) = import_bytes(&raw, "champsim_small.bin", opts()).expect("imports");
    assert_eq!(report.format, "champsim");
    assert_eq!(report.records_in, 6);
    assert_eq!(
        (
            report.accesses,
            report.reads,
            report.writes,
            report.ifetches
        ),
        (18, 8, 4, 6)
    );
    assert_eq!(report.dropped, 0);
    assert_eq!(report.identity, "0bcbe4fa2c838cbc");

    // The gzip'd variant is byte-for-byte the same import.
    let gz = fixture("champsim_small.bin.gz");
    let (ctr_gz, report_gz) = import_bytes(&gz, "champsim_small.bin.gz", opts()).expect("imports");
    assert!(report_gz.gzip);
    assert_eq!(ctr_gz, ctr, "gzip wrapper must not change the output");
    assert_eq!(report_gz.identity, report.identity);
}

#[test]
fn golden_memtrace_fixture_keeps_its_shape_and_identity() {
    let raw = fixture("memtrace_small.txt");
    let (ctr, report) = import_bytes(&raw, "memtrace_small.txt", opts()).expect("imports");
    assert_eq!(report.format, "memtrace");
    assert_eq!(report.records_in, 7);
    assert_eq!(
        (
            report.accesses,
            report.reads,
            report.writes,
            report.ifetches
        ),
        (7, 3, 3, 1)
    );
    assert_eq!(report.identity, "d878a841dda66ddc");

    let gz = fixture("memtrace_small.txt.gz");
    let (ctr_gz, report_gz) = import_bytes(&gz, "memtrace_small.txt.gz", opts()).expect("imports");
    assert!(report_gz.gzip);
    assert_eq!(ctr_gz, ctr);
    assert_eq!(report_gz.identity, report.identity);
}

// ------------------------------------------------------------ generators

/// One valid memtrace line (no comments — those are exercised
/// separately so access counting stays exact).
fn arb_text_line() -> impl Strategy<Value = String> {
    let width = prop::sample::select(vec![1u8, 2, 4, 8]);
    (0u8..3, 0u64..0x1_0000_0000u64, width, any::<u64>()).prop_map(|(op, addr, width, value)| {
        match op {
            0 => format!("R 0x{addr:x} {width}"),
            1 => format!("W 0x{addr:x} {width} 0x{value:x}"),
            _ => format!("I 0x{addr:x}"),
        }
    })
}

fn arb_text_stream() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_text_line(), 1..80).prop_map(|lines| lines.join("\n") + "\n")
}

/// A valid ChampSim record stream: flags constrained to 0/1, at least
/// one record (empty imports are refused by design).
fn arb_champsim_stream() -> impl Strategy<Value = Vec<u8>> {
    let record = (
        any::<u64>(),
        any::<bool>(),
        prop::collection::vec(any::<u64>(), 2),
        prop::collection::vec(any::<u64>(), 4),
    )
        .prop_map(|(ip, branch, dests, srcs)| {
            let mut b = vec![0u8; 64];
            b[..8].copy_from_slice(&ip.to_le_bytes());
            b[8] = u8::from(branch);
            b[9] = u8::from(branch);
            for (i, a) in dests.iter().enumerate() {
                b[16 + 8 * i..24 + 8 * i].copy_from_slice(&a.to_le_bytes());
            }
            for (i, a) in srcs.iter().enumerate() {
                b[32 + 8 * i..40 + 8 * i].copy_from_slice(&a.to_le_bytes());
            }
            b
        });
    prop::collection::vec(record, 1..40).prop_map(|records| records.concat())
}

// ------------------------------------------------------------ properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Valid text streams import with exact counts, deterministically.
    #[test]
    fn valid_text_imports_deterministically(text in arb_text_stream()) {
        let lines = text.lines().count() as u64;
        let (ctr_a, report) = import_bytes(text.as_bytes(), "t", opts()).expect("valid text");
        prop_assert_eq!(report.records_in, lines);
        prop_assert_eq!(report.accesses, lines);
        prop_assert_eq!(report.dropped, 0);
        let (ctr_b, _) = import_bytes(text.as_bytes(), "t", opts()).expect("valid text");
        prop_assert_eq!(ctr_a, ctr_b, "same bytes in, same .ctr out");
    }

    /// Any single-byte mutation of a valid text stream either still
    /// imports (counts balanced) or fails with a typed error — and in
    /// lenient mode record-level damage is dropped and counted, never
    /// silently absorbed.
    #[test]
    fn mutated_text_is_typed_or_clean(
        text in arb_text_stream(),
        pos in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = text.into_bytes();
        let at = pos % bytes.len();
        bytes[at] = byte;
        match import_bytes(&bytes, "t", opts()) {
            Ok((_, report)) => {
                prop_assert_eq!(report.dropped, 0, "strict mode never drops");
                prop_assert_eq!(
                    report.accesses,
                    report.reads + report.writes + report.ifetches
                );
            }
            Err(e) => {
                // The error display names a location (line or source)
                // and lenient mode either recovers or refuses for the
                // same wrapper-level reason.
                prop_assert!(!e.to_string().is_empty());
                match import_bytes(&bytes, "t", lenient()) {
                    Ok((_, report)) => {
                        prop_assert!(e.is_droppable(), "lenient only absorbs record damage");
                        prop_assert!(report.dropped > 0);
                        prop_assert!(report.first_drop.is_some());
                    }
                    Err(again) => {
                        // Wrapper damage (or every record dropped).
                        prop_assert!(!again.to_string().is_empty());
                    }
                }
            }
        }
    }

    /// Valid ChampSim streams import with one access per non-zero
    /// memory operand plus one ifetch per record.
    #[test]
    fn valid_champsim_imports_deterministically(raw in arb_champsim_stream()) {
        let records = (raw.len() / 64) as u64;
        let (ctr_a, report) =
            import_bytes(&raw, "c", champsim(false)).expect("valid champsim");
        prop_assert_eq!(report.records_in, records);
        prop_assert_eq!(report.ifetches, records);
        prop_assert_eq!(
            report.accesses,
            report.reads + report.writes + report.ifetches
        );
        let (ctr_b, _) = import_bytes(&raw, "c", champsim(false)).expect("valid champsim");
        prop_assert_eq!(ctr_a, ctr_b);
    }

    /// Cutting a ChampSim stream anywhere is either a clean
    /// record-boundary prefix (imports the remaining records) or a
    /// typed truncation error — fatal even in lenient mode.
    #[test]
    fn champsim_prefixes_parse_clean_or_fail_typed(
        raw in arb_champsim_stream(),
        cut in any::<usize>(),
    ) {
        let keep = cut % (raw.len() + 1);
        let prefix = &raw[..keep];
        let expect_records = (keep / 64) as u64;
        for o in [champsim(false), champsim(true)] {
            match import_bytes(prefix, "c", o) {
                Ok((_, report)) => {
                    prop_assert_eq!(keep % 64, 0, "partial trailing record must not import");
                    prop_assert_eq!(report.records_in, expect_records);
                }
                Err(ImportError::TruncatedRecord { offset, .. }) => {
                    prop_assert!(keep % 64 != 0);
                    prop_assert_eq!(offset, keep as u64 - keep as u64 % 64);
                }
                Err(ImportError::Empty) => prop_assert_eq!(keep, 0),
                Err(other) => {
                    panic!("unexpected error for a {keep}-byte prefix: {other}");
                }
            }
        }
    }

    /// Arbitrary bytes never panic the importer: every outcome is a
    /// clean import or a typed error, under both format forcings.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        for format in [SourceFormat::Champsim, SourceFormat::Memtrace] {
            let forced = ImportOptions { format: Some(format), ..ImportOptions::default() };
            match import_bytes(&bytes, "x", forced) {
                Ok((_, report)) => {
                    prop_assert!(report.accesses > 0);
                }
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            }
        }
    }
}

//! # flate2 — offline vendored stand-in
//!
//! The workspace vendors every dependency (see DESIGN.md), so this
//! crate reimplements the subset of `flate2`'s API the workspace uses,
//! on top of a std-only DEFLATE engine:
//!
//! - [`read::DeflateDecoder`] / [`read::GzDecoder`] — decompressing
//!   readers over raw DEFLATE and gzip members;
//! - [`write::DeflateEncoder`] / [`write::GzEncoder`] — compressing
//!   writers (greedy LZ77 with fixed-Huffman codes);
//! - [`Compression`] — accepted for API compatibility; the vendored
//!   encoder has a single strategy, so the level only gates the
//!   degenerate `Compression::none()` stored path... which this shim
//!   does not implement either: every level emits the same stream.
//!
//! Two deliberate deviations from the real crate, both documented at
//! the call sites that rely on them:
//!
//! 1. **Whole-stream buffering.** The decoders read their source to
//!    EOF and decode in one pass rather than streaming incrementally.
//!    Every consumer in this workspace (`.ctr` chunk payloads, import
//!    fixtures) holds the compressed input in memory anyway.
//! 2. **Decode caps.** [`read::DeflateDecoder::with_limit`] and
//!    [`read::GzDecoder::with_limit`] bound the decompressed size, so
//!    a corrupt chunk cannot balloon memory past the reader's budget.
//!    The real crate leaves this to the caller.
//!
//! The *format* is the contract: output decodes with zlib/`gzip -d`,
//! and input from stock `gzip(1)` (dynamic-Huffman blocks included)
//! decodes here, CRC-32 and ISIZE verified.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc32;
mod deflate;
mod gzip;
mod inflate;

pub use crc32::crc32;
pub use gzip::{is_gzip, GzipError};
pub use inflate::InflateError;

/// Compression level selector, accepted for API compatibility.
///
/// The vendored encoder always runs the same greedy fixed-Huffman
/// strategy; the level is recorded but does not change the output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Compression(u32);

impl Compression {
    /// An explicit level (0-9 in the real crate's convention).
    pub fn new(level: u32) -> Compression {
        Compression(level)
    }

    /// No compression requested (still emits a valid DEFLATE stream).
    pub fn none() -> Compression {
        Compression(0)
    }

    /// Fastest compression.
    pub fn fast() -> Compression {
        Compression(1)
    }

    /// Best-ratio compression.
    pub fn best() -> Compression {
        Compression(9)
    }

    /// The recorded numeric level.
    pub fn level(&self) -> u32 {
        self.0
    }
}

impl Default for Compression {
    fn default() -> Compression {
        Compression(6)
    }
}

fn invalid_data<E: std::error::Error + Send + Sync + 'static>(e: E) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}

/// Decompressing readers.
pub mod read {
    use std::io::{self, Read};

    use super::invalid_data;

    /// Shared serve-from-decoded-buffer plumbing for both decoders.
    struct Buffered<R> {
        inner: R,
        limit: usize,
        decoded: Option<Vec<u8>>,
        pos: usize,
    }

    impl<R: Read> Buffered<R> {
        fn new(inner: R, limit: usize) -> Self {
            Buffered {
                inner,
                limit,
                decoded: None,
                pos: 0,
            }
        }

        fn fill(
            &mut self,
            decode: impl FnOnce(&[u8], usize) -> io::Result<Vec<u8>>,
        ) -> io::Result<()> {
            if self.decoded.is_none() {
                let mut raw = Vec::new();
                self.inner.read_to_end(&mut raw)?;
                self.decoded = Some(decode(&raw, self.limit)?);
            }
            Ok(())
        }

        fn serve(&mut self, buf: &mut [u8]) -> usize {
            let decoded = self.decoded.as_ref().expect("filled before serving");
            let n = buf.len().min(decoded.len() - self.pos);
            buf[..n].copy_from_slice(&decoded[self.pos..self.pos + n]);
            self.pos += n;
            n
        }
    }

    /// Reads a raw DEFLATE stream, yielding decompressed bytes.
    pub struct DeflateDecoder<R> {
        buffered: Buffered<R>,
    }

    impl<R: Read> DeflateDecoder<R> {
        /// Wraps `inner`, decoding without a size cap.
        pub fn new(inner: R) -> DeflateDecoder<R> {
            DeflateDecoder::with_limit(inner, usize::MAX)
        }

        /// Wraps `inner`, failing with `InvalidData` if the decoded
        /// stream would exceed `limit` bytes (shim extension).
        pub fn with_limit(inner: R, limit: usize) -> DeflateDecoder<R> {
            DeflateDecoder {
                buffered: Buffered::new(inner, limit),
            }
        }

        /// Consumes the decoder, returning the underlying reader.
        pub fn into_inner(self) -> R {
            self.buffered.inner
        }
    }

    impl<R: Read> Read for DeflateDecoder<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.buffered
                .fill(|raw, limit| crate::inflate::inflate(raw, limit).map_err(invalid_data))?;
            Ok(self.buffered.serve(buf))
        }
    }

    /// Reads one gzip member, yielding decompressed bytes after
    /// verifying the header and the CRC-32/ISIZE trailer.
    pub struct GzDecoder<R> {
        buffered: Buffered<R>,
    }

    impl<R: Read> GzDecoder<R> {
        /// Wraps `inner`, decoding without a size cap.
        pub fn new(inner: R) -> GzDecoder<R> {
            GzDecoder::with_limit(inner, usize::MAX)
        }

        /// Wraps `inner` with a decoded-size cap (shim extension).
        pub fn with_limit(inner: R, limit: usize) -> GzDecoder<R> {
            GzDecoder {
                buffered: Buffered::new(inner, limit),
            }
        }

        /// Consumes the decoder, returning the underlying reader.
        pub fn into_inner(self) -> R {
            self.buffered.inner
        }
    }

    impl<R: Read> Read for GzDecoder<R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.buffered
                .fill(|raw, limit| crate::gzip::decompress(raw, limit).map_err(invalid_data))?;
            Ok(self.buffered.serve(buf))
        }
    }
}

/// Compressing writers.
pub mod write {
    use std::io::{self, Write};

    use super::Compression;

    /// Writes a raw DEFLATE stream to the wrapped writer on `finish`.
    pub struct DeflateEncoder<W: Write> {
        inner: W,
        buf: Vec<u8>,
    }

    impl<W: Write> DeflateEncoder<W> {
        /// Wraps `inner`; the level is accepted but not consulted.
        pub fn new(inner: W, _level: Compression) -> DeflateEncoder<W> {
            DeflateEncoder {
                inner,
                buf: Vec::new(),
            }
        }

        /// Compresses everything written so far, writes the stream to
        /// the inner writer, and returns it.
        pub fn finish(mut self) -> io::Result<W> {
            let stream = crate::deflate::compress(&self.buf);
            self.inner.write_all(&stream)?;
            Ok(self.inner)
        }
    }

    impl<W: Write> Write for DeflateEncoder<W> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.buf.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Writes a single-member gzip archive to the wrapped writer on
    /// `finish`.
    pub struct GzEncoder<W: Write> {
        inner: W,
        buf: Vec<u8>,
    }

    impl<W: Write> GzEncoder<W> {
        /// Wraps `inner`; the level is accepted but not consulted.
        pub fn new(inner: W, _level: Compression) -> GzEncoder<W> {
            GzEncoder {
                inner,
                buf: Vec::new(),
            }
        }

        /// Compresses everything written so far, writes the archive
        /// (header, deflate payload, CRC-32 + ISIZE trailer), and
        /// returns the inner writer.
        pub fn finish(mut self) -> io::Result<W> {
            let archive = crate::gzip::compress(&self.buf);
            self.inner.write_all(&archive)?;
            Ok(self.inner)
        }
    }

    impl<W: Write> Write for GzEncoder<W> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.buf.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use std::io::{Read, Write};

    use super::*;

    #[test]
    fn deflate_reader_writer_round_trip() {
        let input = b"reader/writer round trip ".repeat(200);
        let mut enc = write::DeflateEncoder::new(Vec::new(), Compression::default());
        enc.write_all(&input).unwrap();
        let compressed = enc.finish().unwrap();
        let mut out = Vec::new();
        read::DeflateDecoder::new(compressed.as_slice())
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn gz_reader_writer_round_trip() {
        let input = b"gzip member round trip ".repeat(150);
        let mut enc = write::GzEncoder::new(Vec::new(), Compression::best());
        enc.write_all(&input).unwrap();
        let archive = enc.finish().unwrap();
        assert!(is_gzip(&archive));
        let mut out = Vec::new();
        read::GzDecoder::new(archive.as_slice())
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn decode_limit_is_io_error() {
        let input = vec![7u8; 4096];
        let mut enc = write::DeflateEncoder::new(Vec::new(), Compression::default());
        enc.write_all(&input).unwrap();
        let compressed = enc.finish().unwrap();
        let mut out = Vec::new();
        let err = read::DeflateDecoder::with_limit(compressed.as_slice(), 100)
            .read_to_end(&mut out)
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    /// A gzip member produced by CPython's zlib with a dynamic-Huffman
    /// block (BTYPE=2): proves the inflater handles output from real
    /// encoders, not just its own fixed-Huffman streams.
    #[test]
    fn decodes_dynamic_huffman_member_from_real_zlib() {
        // python3: gzip.compress(body, mtime=0) for the body rebuilt
        // below; byte 10's BTYPE field reads 2 (dynamic).
        const ARCHIVE: &[u8] = &[
            0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x03, 0x65, 0xd6, 0x4b, 0x8e,
            0xdb, 0x40, 0x0c, 0x45, 0xd1, 0x79, 0xaf, 0xa2, 0x97, 0x20, 0x16, 0x8b, 0x9f, 0xda,
            0x46, 0x26, 0x19, 0xb3, 0x3e, 0x5c, 0x43, 0x96, 0x1f, 0xa1, 0xc5, 0x04, 0xf0, 0x93,
            0x87, 0xc2, 0x03, 0x74, 0x6d, 0x1d, 0x17, 0xf4, 0xeb, 0xfb, 0xfa, 0x63, 0x79, 0xfd,
            0xff, 0x7c, 0xfd, 0xfe, 0x7f, 0x81, 0x7e, 0x2e, 0x7c, 0xfb, 0x7d, 0xe1, 0xfa, 0xfa,
            0xf5, 0xb1, 0xeb, 0xb8, 0xe3, 0x67, 0x37, 0x0e, 0x9b, 0x8d, 0x49, 0x30, 0x77, 0x9c,
            0xeb, 0x33, 0xe7, 0xa5, 0x27, 0x59, 0x1b, 0xcc, 0x17, 0xce, 0xc7, 0x33, 0xdf, 0x11,
            0xaa, 0x9b, 0xf8, 0x73, 0x4e, 0xaf, 0xe8, 0xf5, 0xcc, 0xcd, 0xf7, 0x3e, 0xba, 0x3a,
            0xcc, 0x5f, 0xed, 0xf9, 0xcc, 0xc9, 0x48, 0xf4, 0x32, 0x81, 0x39, 0xb6, 0x53, 0x7b,
            0xe6, 0x53, 0xfa, 0xda, 0xd1, 0x14, 0xe6, 0xd8, 0x4e, 0xf2, 0xcc, 0x85, 0xbd, 0x0b,
            0x6f, 0xfb, 0x9c, 0x37, 0x6c, 0xbf, 0x6f, 0xf7, 0x33, 0x4f, 0x9a, 0x73, 0x6d, 0x77,
            0x98, 0x63, 0x3b, 0xcd, 0x67, 0xee, 0x99, 0xdc, 0x8d, 0x07, 0xcc, 0x5f, 0xed, 0xe7,
            0x99, 0xb7, 0xd3, 0x62, 0x5d, 0x27, 0x60, 0x8e, 0xed, 0x8d, 0x9e, 0xf9, 0x5a, 0xda,
            0x38, 0xc6, 0xfc, 0x9c, 0x33, 0xb6, 0xdf, 0x75, 0x3f, 0x73, 0x8d, 0x31, 0x66, 0xef,
            0x0b, 0xe6, 0xd8, 0xde, 0xac, 0xda, 0x37, 0xb5, 0x9d, 0x1b, 0xd6, 0x98, 0xde, 0xe2,
            0x59, 0x87, 0x5d, 0x1e, 0x16, 0x07, 0xe6, 0xaf, 0xf4, 0xfd, 0xcc, 0xbb, 0xf4, 0xfb,
            0x6b, 0x48, 0x7e, 0xce, 0x3b, 0xa6, 0x73, 0x39, 0x2f, 0xbe, 0xc0, 0xbd, 0x63, 0x3a,
            0x17, 0x77, 0xa7, 0x48, 0xea, 0x0b, 0xb8, 0x77, 0x6c, 0xe7, 0xe2, 0x4e, 0x79, 0xd4,
            0x8f, 0x01, 0xf7, 0x8e, 0xed, 0x5c, 0xdc, 0xe7, 0xb9, 0x9f, 0x97, 0x37, 0xe0, 0x2e,
            0xaf, 0xf6, 0xe2, 0x2e, 0x4b, 0xc4, 0x69, 0x03, 0x77, 0x79, 0xb5, 0x17, 0xf7, 0x0c,
            0x5f, 0x39, 0x1d, 0xb8, 0x0b, 0xb6, 0xf7, 0xe2, 0x3e, 0x7c, 0x75, 0x13, 0x06, 0xee,
            0x82, 0xed, 0xbd, 0xb8, 0xb3, 0xe6, 0x3c, 0xe7, 0x00, 0x77, 0xc5, 0xf6, 0x5e, 0xdc,
            0xb7, 0x30, 0xab, 0x0f, 0xe0, 0xae, 0xd8, 0xde, 0x8b, 0xbb, 0xb1, 0xc6, 0x69, 0x1d,
            0xb8, 0xeb, 0xab, 0xbd, 0xb8, 0x13, 0x45, 0x93, 0x99, 0xc0, 0x5d, 0xb1, 0x5d, 0x8a,
            0x7b, 0xe4, 0x1e, 0x5b, 0x02, 0xb8, 0x1b, 0xb6, 0x4b, 0x71, 0xef, 0x87, 0xa8, 0xa7,
            0x00, 0x77, 0xc3, 0x76, 0x29, 0xee, 0x67, 0x75, 0x5f, 0xe3, 0x02, 0xef, 0x86, 0xed,
            0x52, 0xde, 0x3d, 0xfc, 0x7e, 0x06, 0x13, 0xbc, 0xdb, 0xab, 0xbd, 0xbc, 0x37, 0x9f,
            0x36, 0x97, 0x82, 0x77, 0xc7, 0x76, 0x2d, 0xef, 0x75, 0xfe, 0x82, 0x77, 0xc7, 0x76,
            0x2d, 0xef, 0x2a, 0x4d, 0xef, 0x5f, 0x07, 0xbc, 0x3b, 0xb6, 0xeb, 0xbf, 0xe3, 0x5d,
            0x4e, 0x1b, 0x0e, 0xdc, 0x1d, 0xd3, 0xb5, 0xb8, 0x07, 0x0d, 0x09, 0x66, 0xe0, 0x3e,
            0x5e, 0xe9, 0xc5, 0x9d, 0x73, 0x6d, 0x5a, 0x07, 0xb8, 0x8f, 0x57, 0x7a, 0x71, 0xdf,
            0xe7, 0xea, 0x43, 0x07, 0x70, 0x1f, 0x98, 0x6e, 0xc5, 0xdd, 0x16, 0x2f, 0xba, 0x3a,
            0x70, 0x1f, 0xd8, 0x6e, 0xc5, 0x9d, 0xc2, 0xd8, 0x47, 0x02, 0xf7, 0xc0, 0x76, 0x2b,
            0xee, 0xd3, 0x63, 0x5e, 0x1c, 0xc0, 0x3d, 0xb0, 0xdd, 0x8a, 0xbb, 0xe8, 0x69, 0xb6,
            0x05, 0xb8, 0xc7, 0xab, 0xbd, 0xb8, 0xa7, 0xd0, 0x9d, 0x72, 0x01, 0xf7, 0xc0, 0x76,
            0x2f, 0xee, 0x83, 0x85, 0xec, 0x9a, 0xc0, 0x7d, 0x62, 0xbb, 0x17, 0x77, 0x26, 0xf7,
            0x13, 0x0a, 0xdc, 0x27, 0xb6, 0x7b, 0x71, 0x5f, 0xb9, 0xee, 0xff, 0x31, 0x01, 0xf7,
            0x89, 0xed, 0x5e, 0xdc, 0x75, 0xa7, 0xed, 0xbd, 0x80, 0xfb, 0x7c, 0xb5, 0x17, 0xf7,
            0xd5, 0x52, 0xcc, 0x40, 0xfb, 0xc2, 0xf4, 0x51, 0xda, 0xeb, 0xf5, 0x01, 0xb4, 0x2f,
            0x4c, 0x1f, 0xa5, 0xbd, 0xfb, 0x38, 0x3d, 0x0e, 0x68, 0x5f, 0x98, 0x3e, 0x4a, 0xfb,
            0xd1, 0x2d, 0xab, 0x0f, 0xe0, 0xbe, 0x30, 0x7d, 0x14, 0x77, 0x97, 0x6b, 0xf3, 0xe9,
            0xc0, 0x7d, 0xbf, 0xda, 0x8b, 0x7b, 0xe3, 0xde, 0xa7, 0x25, 0x70, 0xdf, 0xaf, 0xf6,
            0xe2, 0xbe, 0xe8, 0x16, 0x4c, 0x01, 0xdc, 0x37, 0xb6, 0x47, 0x71, 0x97, 0x9c, 0x1c,
            0x53, 0x80, 0xfb, 0xc6, 0xf6, 0x28, 0xee, 0xb9, 0xcf, 0x6c, 0x72, 0x01, 0xf7, 0x83,
            0xed, 0x51, 0xdc, 0xc7, 0x6a, 0x6d, 0x9c, 0x09, 0xdc, 0x0f, 0xb6, 0x47, 0x71, 0xe7,
            0x90, 0x20, 0x57, 0xe0, 0x7e, 0x5e, 0xed, 0xc5, 0x7d, 0xfb, 0xa0, 0xd1, 0x08, 0xb8,
            0x1f, 0x6c, 0x9f, 0xc5, 0xdd, 0xf4, 0x3e, 0x7d, 0xe7, 0x02, 0xee, 0x89, 0xed, 0xb3,
            0xb8, 0xdf, 0xef, 0x6f, 0x97, 0x8b, 0x01, 0xf7, 0xc4, 0xf6, 0x59, 0xdc, 0x27, 0xb3,
            0x65, 0x36, 0xe0, 0x9e, 0xd8, 0x3e, 0x8b, 0xbb, 0x90, 0xe6, 0xfd, 0x9a, 0x0a, 0xdc,
            0xf3, 0xd5, 0x5e, 0xdc, 0x4f, 0x86, 0x66, 0xf3, 0xfc, 0xfa, 0x0b, 0x0f, 0x18, 0xee,
            0x68, 0xb6, 0x0b, 0x00, 0x00,
        ];
        assert_eq!(
            (ARCHIVE[10] >> 1) & 3,
            2,
            "test vector must be a dynamic block"
        );
        let mut body = Vec::new();
        for i in 0u64..64 {
            body.extend_from_slice(
                format!("R 0x{:012x}\n", 0x7f00_0000_0000u64 + i * 64).as_bytes(),
            );
            body.extend_from_slice(
                format!(
                    "W 0x{:012x} 8 0x{:x}\n",
                    0x7f00_0010_0000u64 + i * 48,
                    (i * 2_654_435_761) % (1u64 << 32)
                )
                .as_bytes(),
            );
        }
        let mut out = Vec::new();
        read::GzDecoder::new(ARCHIVE).read_to_end(&mut out).unwrap();
        assert_eq!(out, body);
    }
}

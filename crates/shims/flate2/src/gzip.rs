//! Gzip (RFC 1952) member framing around the DEFLATE engine.
//!
//! Decompression parses the full member header — optional FEXTRA,
//! FNAME, FCOMMENT, and FHCRC fields included — inflates the payload,
//! and then verifies both trailer fields: CRC-32 of the uncompressed
//! data and ISIZE (length mod 2^32). A corrupt archive is a typed
//! error, never a silently-wrong byte stream. Bytes after the first
//! member are ignored, matching `flate2::read::GzDecoder`.

use std::fmt;

use crate::crc32::crc32;
use crate::inflate::{inflate, InflateError};

/// The two gzip magic bytes.
const MAGIC: [u8; 2] = [0x1F, 0x8B];
/// CM value for DEFLATE, the only defined compression method.
const CM_DEFLATE: u8 = 8;

const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;

/// A typed gzip member failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GzipError {
    /// The member ended inside the named structure.
    Truncated(&'static str),
    /// The first two bytes are not `1f 8b`.
    BadMagic([u8; 2]),
    /// The CM byte names a method other than DEFLATE.
    BadMethod(u8),
    /// The optional FHCRC header checksum does not match.
    BadHeaderCrc {
        /// CRC-16 recorded in the member.
        stored: u16,
        /// CRC-16 computed over the header bytes.
        computed: u16,
    },
    /// The DEFLATE payload failed to decode.
    Inflate(InflateError),
    /// The trailer CRC-32 does not match the decompressed bytes.
    BadCrc {
        /// CRC-32 recorded in the trailer.
        stored: u32,
        /// CRC-32 computed over the decompressed bytes.
        computed: u32,
    },
    /// The trailer ISIZE does not match the decompressed length.
    BadLength {
        /// ISIZE recorded in the trailer.
        stored: u32,
        /// Decompressed length mod 2^32.
        computed: u32,
    },
}

impl fmt::Display for GzipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GzipError::Truncated(what) => write!(f, "gzip member truncated in {what}"),
            GzipError::BadMagic(found) => write!(
                f,
                "not a gzip stream (magic {:02x} {:02x}, want 1f 8b)",
                found[0], found[1]
            ),
            GzipError::BadMethod(cm) => {
                write!(
                    f,
                    "unsupported gzip compression method {cm} (want 8, deflate)"
                )
            }
            GzipError::BadHeaderCrc { stored, computed } => write!(
                f,
                "gzip header CRC mismatch (stored {stored:#06x}, computed {computed:#06x})"
            ),
            GzipError::Inflate(e) => write!(f, "gzip payload: {e}"),
            GzipError::BadCrc { stored, computed } => write!(
                f,
                "gzip CRC-32 mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            GzipError::BadLength { stored, computed } => write!(
                f,
                "gzip ISIZE mismatch (stored {stored}, decompressed {computed} mod 2^32)"
            ),
        }
    }
}

impl std::error::Error for GzipError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GzipError::Inflate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InflateError> for GzipError {
    fn from(e: InflateError) -> Self {
        GzipError::Inflate(e)
    }
}

/// Returns true when `data` starts with the gzip magic bytes.
pub fn is_gzip(data: &[u8]) -> bool {
    data.len() >= 2 && data[0] == MAGIC[0] && data[1] == MAGIC[1]
}

/// Decompresses one gzip member, verifying header and trailer.
///
/// `limit` caps the decompressed size (see [`InflateError::TooLarge`]).
pub fn decompress(data: &[u8], limit: usize) -> Result<Vec<u8>, GzipError> {
    if data.len() < 2 {
        return Err(GzipError::Truncated("magic"));
    }
    if !is_gzip(data) {
        return Err(GzipError::BadMagic([data[0], data[1]]));
    }
    if data.len() < 10 {
        return Err(GzipError::Truncated("fixed header"));
    }
    if data[2] != CM_DEFLATE {
        return Err(GzipError::BadMethod(data[2]));
    }
    let flg = data[3];
    // Bytes 4..8 are MTIME, 8 is XFL, 9 is OS — all informational.
    let mut pos = 10usize;
    if flg & FEXTRA != 0 {
        let xlen_bytes = data
            .get(pos..pos + 2)
            .ok_or(GzipError::Truncated("FEXTRA length"))?;
        let xlen = usize::from(u16::from_le_bytes([xlen_bytes[0], xlen_bytes[1]]));
        pos += 2;
        if data.len() < pos + xlen {
            return Err(GzipError::Truncated("FEXTRA field"));
        }
        pos += xlen;
    }
    for (flag, what) in [(FNAME, "FNAME field"), (FCOMMENT, "FCOMMENT field")] {
        if flg & flag != 0 {
            let nul = data[pos..]
                .iter()
                .position(|&b| b == 0)
                .ok_or(GzipError::Truncated(what))?;
            pos += nul + 1;
        }
    }
    if flg & FHCRC != 0 {
        let stored_bytes = data
            .get(pos..pos + 2)
            .ok_or(GzipError::Truncated("FHCRC field"))?;
        let stored = u16::from_le_bytes([stored_bytes[0], stored_bytes[1]]);
        let computed = (crc32(&data[..pos]) & 0xFFFF) as u16;
        if stored != computed {
            return Err(GzipError::BadHeaderCrc { stored, computed });
        }
        pos += 2;
    }
    if data.len() < pos + 8 {
        return Err(GzipError::Truncated("deflate payload"));
    }
    // The inflater ignores trailing bytes, so handing it everything up
    // to EOF is safe; the trailer is re-read from the tail below. (A
    // member's compressed length is not recorded anywhere, so the
    // trailer can only be located from the end for single members.)
    let payload = &data[pos..];
    let out = inflate(&payload[..payload.len() - 8], limit)?;
    let trailer = &data[data.len() - 8..];
    let stored_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let stored_isize = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    let computed_crc = crc32(&out);
    if stored_crc != computed_crc {
        return Err(GzipError::BadCrc {
            stored: stored_crc,
            computed: computed_crc,
        });
    }
    let computed_isize = (out.len() as u64 & 0xFFFF_FFFF) as u32;
    if stored_isize != computed_isize {
        return Err(GzipError::BadLength {
            stored: stored_isize,
            computed: computed_isize,
        });
    }
    Ok(out)
}

/// Compresses `input` into a minimal single-member gzip archive
/// (no name, no mtime, OS byte 255 = unknown — fully deterministic).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 32);
    out.extend_from_slice(&MAGIC);
    out.push(CM_DEFLATE);
    out.push(0); // FLG: no optional fields
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME: not recorded
    out.push(0); // XFL
    out.push(255); // OS: unknown
    out.extend_from_slice(&crate::deflate::compress(input));
    out.extend_from_slice(&crc32(input).to_le_bytes());
    out.extend_from_slice(&((input.len() as u64 & 0xFFFF_FFFF) as u32).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let input = b"per-workload energy baselines".repeat(64);
        let archive = compress(&input);
        assert!(is_gzip(&archive));
        assert_eq!(decompress(&archive, 1 << 20).unwrap(), input);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            decompress(b"PKzip-this-is-not", 1 << 20),
            Err(GzipError::BadMagic([b'P', b'K']))
        );
    }

    #[test]
    fn payload_corruption_caught_by_crc() {
        let input = b"corrupt me".repeat(100);
        let mut archive = compress(&input);
        // Flip a bit mid-payload: either the inflater chokes or the
        // trailer CRC catches it; both are typed errors.
        let mid = archive.len() / 2;
        archive[mid] ^= 0x10;
        match decompress(&archive, 1 << 20) {
            Err(GzipError::BadCrc { .. }) | Err(GzipError::Inflate(_)) => {}
            other => panic!("corruption must be caught, got {other:?}"),
        }
    }

    #[test]
    fn trailer_crc_mismatch_is_typed() {
        let input = b"trailer check";
        let mut archive = compress(input);
        let n = archive.len();
        archive[n - 8] ^= 0xFF; // CRC byte
        assert!(matches!(
            decompress(&archive, 1 << 20),
            Err(GzipError::BadCrc { .. })
        ));
    }

    #[test]
    fn isize_mismatch_is_typed() {
        let input = b"isize check";
        let mut archive = compress(input);
        let n = archive.len();
        archive[n - 1] ^= 0xFF; // ISIZE high byte
        assert!(matches!(
            decompress(&archive, 1 << 20),
            Err(GzipError::BadLength { .. })
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let archive = compress(b"truncate me please, somewhere in the middle");
        for cut in [0, 1, 5, 9, 12, archive.len() - 8, archive.len() - 1] {
            assert!(
                decompress(&archive[..cut], 1 << 20).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn header_with_name_and_extra_fields_parses() {
        // Hand-assemble a header exercising FEXTRA + FNAME + FHCRC.
        let input = b"optional header fields";
        let deflated = crate::deflate::compress(input);
        let mut archive = vec![0x1F, 0x8B, 8, FEXTRA | FNAME | FHCRC, 0, 0, 0, 0, 0, 255];
        archive.extend_from_slice(&3u16.to_le_bytes()); // XLEN
        archive.extend_from_slice(b"abc");
        archive.extend_from_slice(b"trace.txt\0");
        let hcrc = (crc32(&archive) & 0xFFFF) as u16;
        archive.extend_from_slice(&hcrc.to_le_bytes());
        archive.extend_from_slice(&deflated);
        archive.extend_from_slice(&crc32(input).to_le_bytes());
        archive.extend_from_slice(&(input.len() as u32).to_le_bytes());
        assert_eq!(decompress(&archive, 1 << 20).unwrap(), input);
    }
}

//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over byte slices.
//!
//! The shim carries its own copy rather than depending on `cnt-trace`:
//! shims sit below every workspace crate and must stay dependency-free.
//! Reflected polynomial `0xEDB88320`, init and final XOR `0xFFFF_FFFF`
//! — exactly what gzip's trailer records, so archives produced by
//! stock `gzip(1)` validate against this implementation.

use std::sync::OnceLock;

static TABLE: OnceLock<[u32; 256]> = OnceLock::new();

fn table() -> &'static [u32; 256] {
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Computes the CRC-32 of `data` in one call.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value from the CRC catalogue.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"hello world"), 0x0D4A_1185);
    }
}

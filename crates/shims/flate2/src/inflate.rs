//! A slice-based DEFLATE (RFC 1951) decoder.
//!
//! Supports all three block types — stored, fixed-Huffman, and
//! dynamic-Huffman — so streams produced by stock `gzip(1)`/zlib (which
//! emit dynamic blocks for anything non-trivial) decode, not just this
//! shim's own fixed-Huffman output. The decoder is deliberately the
//! simple canonical-Huffman walk (the `puff` algorithm): bit-at-a-time,
//! no lookup-table acceleration. Trace chunks and import fixtures are
//! small; correctness and auditability beat speed here.
//!
//! Every decode takes an explicit output cap so a corrupt or malicious
//! stream cannot balloon memory: DEFLATE expands up to ~1032x, and the
//! caller (e.g. the `.ctr` reader with its chunk budget) knows how much
//! it is willing to hold.

use std::fmt;

/// Maximum bits in a Huffman code (RFC 1951 §3.2.1).
const MAX_BITS: usize = 15;
/// Number of literal/length symbols.
const MAX_LCODES: usize = 286;
/// Number of distance symbols.
const MAX_DCODES: usize = 30;

/// Length-code base values for symbols 257..=285.
pub(crate) const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits for each length code.
pub(crate) const LENGTH_EXTRA: [u16; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Distance-code base values for symbols 0..=29.
pub(crate) const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits for each distance code.
pub(crate) const DIST_EXTRA: [u16; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// The permuted order code-length code lengths arrive in (RFC 1951 §3.2.7).
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// A typed DEFLATE decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InflateError {
    /// The input ended before the stream was complete.
    Truncated,
    /// A block header declared the reserved block type `11`.
    BadBlockType,
    /// A stored block's `LEN` and `NLEN` fields are not complements.
    BadStoredLength,
    /// A Huffman code walked off the end of the code table.
    BadCode,
    /// A code-length sequence was internally inconsistent.
    BadLengths(&'static str),
    /// A match distance reached before the start of the output.
    BadDistance,
    /// The decoded output exceeded the caller's cap.
    TooLarge {
        /// The cap that was exceeded, in bytes.
        limit: usize,
    },
}

impl fmt::Display for InflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InflateError::Truncated => write!(f, "deflate stream ended mid-block"),
            InflateError::BadBlockType => write!(f, "reserved deflate block type 11"),
            InflateError::BadStoredLength => {
                write!(f, "stored block LEN/NLEN fields are not complements")
            }
            InflateError::BadCode => write!(f, "invalid Huffman code in deflate stream"),
            InflateError::BadLengths(what) => {
                write!(f, "inconsistent Huffman code lengths: {what}")
            }
            InflateError::BadDistance => {
                write!(f, "match distance reaches before the start of the output")
            }
            InflateError::TooLarge { limit } => {
                write!(f, "decoded output exceeds the {limit}-byte cap")
            }
        }
    }
}

impl std::error::Error for InflateError {}

/// LSB-first bit reader over a byte slice.
struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index.
    pos: usize,
    /// Bits already consumed from `data[pos]`.
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bit: 0,
        }
    }

    /// Reads `n` bits (n <= 16), least significant first.
    fn bits(&mut self, n: u32) -> Result<u32, InflateError> {
        let mut value = 0u32;
        for i in 0..n {
            let byte = *self.data.get(self.pos).ok_or(InflateError::Truncated)?;
            value |= u32::from((byte >> self.bit) & 1) << i;
            self.bit += 1;
            if self.bit == 8 {
                self.bit = 0;
                self.pos += 1;
            }
        }
        Ok(value)
    }

    /// Discards any partial byte (stored-block alignment).
    fn align(&mut self) {
        if self.bit != 0 {
            self.bit = 0;
            self.pos += 1;
        }
    }
}

/// A canonical Huffman decoding table: symbol counts per code length
/// plus the symbols sorted by (length, symbol order).
struct Huffman {
    counts: [u16; MAX_BITS + 1],
    symbols: Vec<u16>,
}

impl Huffman {
    /// Builds a table from per-symbol code lengths (0 = unused).
    fn build(lengths: &[u8]) -> Result<Huffman, InflateError> {
        let mut counts = [0u16; MAX_BITS + 1];
        for &len in lengths {
            counts[usize::from(len)] += 1;
        }
        if usize::from(counts[0]) == lengths.len() {
            return Err(InflateError::BadLengths("no symbols have codes"));
        }
        // An over-subscribed set of lengths cannot form a prefix code.
        let mut left = 1i32;
        for len in 1..=MAX_BITS {
            left <<= 1;
            left -= i32::from(counts[len]);
            if left < 0 {
                return Err(InflateError::BadLengths("over-subscribed code lengths"));
            }
        }
        let mut offsets = [0u16; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.len()];
        for (symbol, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[usize::from(offsets[usize::from(len)])] = symbol as u16;
                offsets[usize::from(len)] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    /// Decodes one symbol, consuming bits MSB-of-code-first.
    fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, InflateError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..=MAX_BITS {
            code |= reader.bits(1)? as i32;
            let count = i32::from(self.counts[len]);
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(InflateError::BadCode)
    }
}

/// Fixed-Huffman tables (RFC 1951 §3.2.6), built on demand.
fn fixed_tables() -> Result<(Huffman, Huffman), InflateError> {
    let mut lit_lengths = [0u8; 288];
    for (symbol, len) in lit_lengths.iter_mut().enumerate() {
        *len = match symbol {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist_lengths = [5u8; MAX_DCODES];
    Ok((
        Huffman::build(&lit_lengths)?,
        Huffman::build(&dist_lengths)?,
    ))
}

/// Decodes the literal/length + distance symbol stream of one block.
fn inflate_block(
    reader: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    limit: usize,
    lit: &Huffman,
    dist: &Huffman,
) -> Result<(), InflateError> {
    loop {
        let symbol = lit.decode(reader)?;
        match symbol {
            0..=255 => {
                if out.len() >= limit {
                    return Err(InflateError::TooLarge { limit });
                }
                out.push(symbol as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let idx = usize::from(symbol - 257);
                let length = usize::from(LENGTH_BASE[idx])
                    + reader.bits(u32::from(LENGTH_EXTRA[idx]))? as usize;
                let dsym = dist.decode(reader)?;
                if usize::from(dsym) >= MAX_DCODES {
                    return Err(InflateError::BadCode);
                }
                let didx = usize::from(dsym);
                let distance = usize::from(DIST_BASE[didx])
                    + reader.bits(u32::from(DIST_EXTRA[didx]))? as usize;
                if distance > out.len() {
                    return Err(InflateError::BadDistance);
                }
                if out.len() + length > limit {
                    return Err(InflateError::TooLarge { limit });
                }
                // Byte-at-a-time copy: overlapping matches (distance <
                // length) must re-read bytes this copy produced.
                let start = out.len() - distance;
                for i in 0..length {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            _ => return Err(InflateError::BadCode),
        }
    }
}

/// Reads the dynamic-Huffman table definition of one block.
fn dynamic_tables(reader: &mut BitReader<'_>) -> Result<(Huffman, Huffman), InflateError> {
    let hlit = reader.bits(5)? as usize + 257;
    let hdist = reader.bits(5)? as usize + 1;
    let hclen = reader.bits(4)? as usize + 4;
    if hlit > MAX_LCODES {
        return Err(InflateError::BadLengths("too many literal/length codes"));
    }
    let mut clen_lengths = [0u8; 19];
    for &idx in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[idx] = reader.bits(3)? as u8;
    }
    let clen = Huffman::build(&clen_lengths)?;

    let mut lengths = vec![0u8; hlit + hdist];
    let mut i = 0;
    while i < lengths.len() {
        let symbol = clen.decode(reader)?;
        match symbol {
            0..=15 => {
                lengths[i] = symbol as u8;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err(InflateError::BadLengths("repeat with no previous length"));
                }
                let prev = lengths[i - 1];
                let reps = 3 + reader.bits(2)? as usize;
                if i + reps > lengths.len() {
                    return Err(InflateError::BadLengths("repeat past end of lengths"));
                }
                lengths[i..i + reps].fill(prev);
                i += reps;
            }
            17 | 18 => {
                let reps = if symbol == 17 {
                    3 + reader.bits(3)? as usize
                } else {
                    11 + reader.bits(7)? as usize
                };
                if i + reps > lengths.len() {
                    return Err(InflateError::BadLengths("zero-run past end of lengths"));
                }
                i += reps;
            }
            _ => return Err(InflateError::BadCode),
        }
    }
    if lengths[256] == 0 {
        return Err(InflateError::BadLengths("end-of-block symbol has no code"));
    }
    let lit = Huffman::build(&lengths[..hlit])?;
    let dist = Huffman::build(&lengths[hlit..])?;
    Ok((lit, dist))
}

/// Decodes a complete raw DEFLATE stream.
///
/// `limit` caps the decoded size; exceeding it returns
/// [`InflateError::TooLarge`] instead of allocating further. Trailing
/// bytes after the final block are ignored (gzip trailers live there).
pub fn inflate(data: &[u8], limit: usize) -> Result<Vec<u8>, InflateError> {
    let mut reader = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = reader.bits(1)?;
        let btype = reader.bits(2)?;
        match btype {
            0 => {
                reader.align();
                let len = reader.bits(16)? as usize;
                let nlen = reader.bits(16)? as usize;
                if len != (!nlen & 0xFFFF) {
                    return Err(InflateError::BadStoredLength);
                }
                if out.len() + len > limit {
                    return Err(InflateError::TooLarge { limit });
                }
                let end = reader.pos.checked_add(len).ok_or(InflateError::Truncated)?;
                let bytes = data.get(reader.pos..end).ok_or(InflateError::Truncated)?;
                out.extend_from_slice(bytes);
                reader.pos = end;
            }
            1 => {
                let (lit, dist) = fixed_tables()?;
                inflate_block(&mut reader, &mut out, limit, &lit, &dist)?;
            }
            2 => {
                let (lit, dist) = dynamic_tables(&mut reader)?;
                inflate_block(&mut reader, &mut out, limit, &lit, &dist)?;
            }
            _ => return Err(InflateError::BadBlockType),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_block_round_trips() {
        // Hand-built stored block: BFINAL=1, BTYPE=00, aligned LEN/NLEN.
        let payload = b"stored bytes";
        let mut stream = vec![0b0000_0001];
        stream.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        stream.extend_from_slice(&(!(payload.len() as u16)).to_le_bytes());
        stream.extend_from_slice(payload);
        assert_eq!(inflate(&stream, 1 << 16).unwrap(), payload);
    }

    #[test]
    fn stored_block_bad_nlen_rejected() {
        let mut stream = vec![0b0000_0001];
        stream.extend_from_slice(&5u16.to_le_bytes());
        stream.extend_from_slice(&5u16.to_le_bytes()); // not the complement
        stream.extend_from_slice(b"hello");
        assert_eq!(
            inflate(&stream, 1 << 16),
            Err(InflateError::BadStoredLength)
        );
    }

    #[test]
    fn reserved_block_type_rejected() {
        // BFINAL=1, BTYPE=11.
        assert_eq!(
            inflate(&[0b0000_0111], 1 << 16),
            Err(InflateError::BadBlockType)
        );
    }

    #[test]
    fn truncated_stream_rejected() {
        assert_eq!(inflate(&[], 1 << 16), Err(InflateError::Truncated));
        let mut stream = vec![0b0000_0001];
        stream.extend_from_slice(&100u16.to_le_bytes());
        stream.extend_from_slice(&(!100u16).to_le_bytes());
        stream.extend_from_slice(b"short");
        assert_eq!(inflate(&stream, 1 << 16), Err(InflateError::Truncated));
    }

    #[test]
    fn output_cap_enforced() {
        let payload = [0u8; 64];
        let mut stream = vec![0b0000_0001];
        stream.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        stream.extend_from_slice(&(!(payload.len() as u16)).to_le_bytes());
        stream.extend_from_slice(&payload);
        assert_eq!(
            inflate(&stream, 63),
            Err(InflateError::TooLarge { limit: 63 })
        );
    }
}

//! A greedy LZ77 + fixed-Huffman DEFLATE (RFC 1951) encoder.
//!
//! One block per stream, `BTYPE=01`: every compliant inflater — this
//! shim's own, zlib, `gzip -d` — decodes the output. The matcher is a
//! hash-chain search over 3-byte prefixes with a bounded chain walk, so
//! repetitive inputs (trace payloads are full of repeated address
//! deltas and zero value words) compress well, while the encoder stays
//! a few dozen lines with no dynamic-table construction. Compression
//! ratio is traded for auditability; the format, not the ratio, is the
//! contract.

use crate::inflate::{DIST_BASE, DIST_EXTRA, LENGTH_BASE, LENGTH_EXTRA};

/// Sliding-window size (RFC 1951 maximum back-reference distance).
const WINDOW: usize = 32 * 1024;
/// Minimum/maximum match lengths representable by DEFLATE.
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
/// How many hash-chain candidates the greedy matcher inspects.
const CHAIN_LIMIT: usize = 64;
/// Hash table size (15-bit hash of a 3-byte prefix).
const HASH_SIZE: usize = 1 << 15;

/// LSB-first bit writer.
struct BitWriter {
    out: Vec<u8>,
    bitbuf: u32,
    bitcnt: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            bitbuf: 0,
            bitcnt: 0,
        }
    }

    /// Writes `n` bits of `value`, least significant first.
    fn bits(&mut self, value: u32, n: u32) {
        self.bitbuf |= value << self.bitcnt;
        self.bitcnt += n;
        while self.bitcnt >= 8 {
            self.out.push((self.bitbuf & 0xFF) as u8);
            self.bitbuf >>= 8;
            self.bitcnt -= 8;
        }
    }

    /// Writes a Huffman code: codes go on the wire most significant
    /// bit first, the reverse of extra-bits fields.
    fn code(&mut self, code: u32, n: u32) {
        let mut reversed = 0u32;
        for i in 0..n {
            reversed |= ((code >> i) & 1) << (n - 1 - i);
        }
        self.bits(reversed, n);
    }

    /// Flushes the partial byte (zero-padded) and returns the stream.
    fn finish(mut self) -> Vec<u8> {
        if self.bitcnt > 0 {
            self.out.push((self.bitbuf & 0xFF) as u8);
        }
        self.out
    }
}

/// Emits one literal/length symbol with the fixed code (RFC 1951 §3.2.6).
fn emit_litlen(writer: &mut BitWriter, symbol: u16) {
    match symbol {
        0..=143 => writer.code(0x30 + u32::from(symbol), 8),
        144..=255 => writer.code(0x190 + u32::from(symbol) - 144, 9),
        256..=279 => writer.code(u32::from(symbol) - 256, 7),
        _ => writer.code(0xC0 + u32::from(symbol) - 280, 8),
    }
}

/// Maps a match length (3..=258) to its (symbol index, extra-bit value).
fn length_symbol(len: usize) -> (usize, u32) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    let idx = LENGTH_BASE
        .iter()
        .rposition(|&base| usize::from(base) <= len)
        .expect("length >= 3 always has a base");
    (idx, (len - usize::from(LENGTH_BASE[idx])) as u32)
}

/// Maps a match distance (1..=32768) to its (symbol, extra-bit value).
fn dist_symbol(dist: usize) -> (usize, u32) {
    debug_assert!((1..=WINDOW).contains(&dist));
    let idx = DIST_BASE
        .iter()
        .rposition(|&base| usize::from(base) <= dist)
        .expect("distance >= 1 always has a base");
    (idx, (dist - usize::from(DIST_BASE[idx])) as u32)
}

fn hash3(input: &[u8], i: usize) -> usize {
    ((usize::from(input[i]) << 10) ^ (usize::from(input[i + 1]) << 5) ^ usize::from(input[i + 2]))
        & (HASH_SIZE - 1)
}

/// Compresses `input` into a single fixed-Huffman DEFLATE block.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut writer = BitWriter::new();
    writer.bits(1, 1); // BFINAL
    writer.bits(1, 2); // BTYPE = 01, fixed Huffman

    // head[h] = most recent position with hash h; prev[i] = previous
    // position in i's chain. usize::MAX marks an empty slot.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; input.len()];
    let insert = |head: &mut Vec<usize>, prev: &mut Vec<usize>, i: usize| {
        if i + MIN_MATCH <= input.len() {
            let h = hash3(input, i);
            prev[i] = head[h];
            head[h] = i;
        }
    };

    let mut i = 0;
    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= input.len() {
            let mut candidate = head[hash3(input, i)];
            let mut chain = 0;
            while candidate != usize::MAX && chain < CHAIN_LIMIT {
                let dist = i - candidate;
                if dist > WINDOW {
                    break;
                }
                let max_len = MAX_MATCH.min(input.len() - i);
                let mut len = 0;
                while len < max_len && input[candidate + len] == input[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len == MAX_MATCH {
                        break;
                    }
                }
                candidate = prev[candidate];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            let (lsym, lextra) = length_symbol(best_len);
            emit_litlen(&mut writer, 257 + lsym as u16);
            writer.bits(lextra, u32::from(LENGTH_EXTRA[lsym]));
            let (dsym, dextra) = dist_symbol(best_dist);
            writer.code(dsym as u32, 5);
            writer.bits(dextra, u32::from(DIST_EXTRA[dsym]));
            for k in i..i + best_len {
                insert(&mut head, &mut prev, k);
            }
            i += best_len;
        } else {
            emit_litlen(&mut writer, u16::from(input[i]));
            insert(&mut head, &mut prev, i);
            i += 1;
        }
    }
    emit_litlen(&mut writer, 256); // end of block
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn empty_round_trips() {
        let stream = compress(b"");
        assert_eq!(inflate(&stream, 1 << 20).unwrap(), b"");
    }

    #[test]
    fn literal_only_round_trips() {
        let stream = compress(b"abc");
        assert_eq!(inflate(&stream, 1 << 20).unwrap(), b"abc");
    }

    #[test]
    fn repetitive_input_round_trips_and_shrinks() {
        let input: Vec<u8> = b"cnt-cache trace chunk "
            .iter()
            .copied()
            .cycle()
            .take(8192)
            .collect();
        let stream = compress(&input);
        assert!(
            stream.len() < input.len() / 4,
            "repetitive input should compress well: {} -> {}",
            input.len(),
            stream.len()
        );
        assert_eq!(inflate(&stream, 1 << 20).unwrap(), input);
    }

    #[test]
    fn pseudorandom_input_round_trips() {
        let mut seed = 0xF1A7_E2u64;
        let input: Vec<u8> = (0..4096)
            .map(|_| (splitmix64(&mut seed) & 0xFF) as u8)
            .collect();
        let stream = compress(&input);
        assert_eq!(inflate(&stream, 1 << 20).unwrap(), input);
    }

    #[test]
    fn overlapping_matches_round_trip() {
        // distance < length forces the overlapped-copy path in inflate.
        let input = vec![0x55u8; 1024];
        let stream = compress(&input);
        assert_eq!(inflate(&stream, 1 << 20).unwrap(), input);
    }

    #[test]
    fn all_lengths_round_trip() {
        // Sweep match lengths across every length-code bucket boundary.
        for n in [3usize, 4, 10, 11, 18, 19, 114, 115, 257, 258, 259, 600] {
            let mut input = b"seed".to_vec();
            input.extend(std::iter::repeat(b'x').take(n));
            let stream = compress(&input);
            assert_eq!(inflate(&stream, 1 << 20).unwrap(), input, "length {n}");
        }
    }
}

//! Offline stand-in for `proptest`.
//!
//! A deterministic, non-shrinking property tester covering the subset the
//! workspace uses: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), integer/float range strategies,
//! `any::<T>()`, tuple strategies, `prop_map`, `prop::sample::select`,
//! `prop::collection::vec`, and the `prop_assert*` / `prop_assume!`
//! macros. Failing cases are reported by panic with the sampled values'
//! `Debug` form; there is no shrinking.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    /// Types with a canonical full-domain strategy (stand-in for
    /// `proptest::arbitrary::Arbitrary`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T> {
        _marker: ::std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: ::std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice among a fixed set of values.
    pub struct Select<T> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let span = self.options.len() as u128;
            let idx = ((rng.next_u64() as u128 * span) >> 64) as usize;
            self.options[idx].clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a
    /// half-open range.
    pub trait IntoSizeRange {
        fn bounds(&self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> Range<usize> {
            *self..*self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> Range<usize> {
            self.clone()
        }
    }

    /// Strategy producing `Vec`s of a given length from an element
    /// strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let size = size.bounds();
        assert!(size.start < size.end, "vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u128;
            let len = self.size.start + ((rng.next_u64() as u128 * span) >> 64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is supported.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Same default and env override as the real crate.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name, so
    /// every run replays the same cases.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut seed = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x100000001b3);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

/// Full-domain strategy for a type (stand-in for `proptest::arbitrary::any`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespace mirror of the real crate's `prelude::prop` module.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Defines `#[test]` functions that run a body over sampled inputs.
///
/// Each case's sampled arguments are printed on failure via the panic
/// message of the `prop_assert*` macros; there is no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strat = ($($strat,)+);
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..config.cases {
                    let ($($arg,)+) = $crate::strategy::Strategy::sample(&strat, &mut rng);
                    // The closure gives `prop_assume!` an early exit that
                    // skips only this case.
                    (|| $body)();
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Flavor {
        Plain,
        Spicy { level: u8 },
    }

    fn arb_flavor() -> impl Strategy<Value = Flavor> {
        (any::<bool>(), 0u8..10).prop_map(|(spicy, level)| {
            if spicy {
                Flavor::Spicy { level }
            } else {
                Flavor::Plain
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 0u32..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(fixed in prop::collection::vec(any::<u64>(), 8),
                               ranged in prop::collection::vec(any::<bool>(), 1..5)) {
            prop_assert_eq!(fixed.len(), 8);
            prop_assert!((1..5).contains(&ranged.len()));
        }

        #[test]
        fn select_and_map_compose(flavor in arb_flavor(), pick in prop::sample::select(vec![1u8, 2, 4, 8])) {
            prop_assert!(matches!(pick, 1 | 2 | 4 | 8));
            if let Flavor::Spicy { level } = flavor {
                prop_assert!(level < 10);
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn same_name_same_stream() {
        use crate::strategy::Strategy;
        let strat = 0u64..1000;
        let mut r1 = crate::test_runner::TestRng::for_test("t");
        let mut r2 = crate::test_runner::TestRng::for_test("t");
        for _ in 0..64 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access and no
//! crates.io cache, so the real `serde` cannot be fetched. This shim
//! provides the exact subset the workspace uses — `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums plus `#[serde(transparent)]`
//! newtypes — over a simple self-describing [`Value`] data model instead
//! of serde's visitor architecture. `serde_json` (also shimmed) renders
//! [`Value`] to JSON text and parses it back.
//!
//! Supported shapes:
//!
//! * structs with named fields → [`Value::Map`] keyed by field name,
//! * single-field tuple structs marked `#[serde(transparent)]` → the
//!   inner value itself,
//! * enums with unit variants → [`Value::Str`] of the variant name,
//! * enums with struct variants → externally tagged
//!   `{"Variant": {fields…}}`, matching serde's default representation.
//!
//! Anything fancier (generics, renames, skips) is intentionally
//! unsupported and fails at compile time in the derive macro.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing tree of data — the interchange format between the
/// [`Serialize`]/[`Deserialize`] traits and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (insertion order preserved so output is stable).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::custom(format!("expected {what}, got {}", got.type_name()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Converts a type into a [`Value`].
pub trait Serialize {
    /// The value form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs a type from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code.
// ---------------------------------------------------------------------------

/// Fetches a required struct field from a map value (derive support).
///
/// # Errors
///
/// Returns [`DeError`] when the value is not a map or the field is absent.
pub fn struct_field<'v>(v: &'v Value, field: &str, ty: &str) -> Result<&'v Value, DeError> {
    match v {
        Value::Map(_) => v
            .get(field)
            .ok_or_else(|| DeError::custom(format!("missing field `{field}` for {ty}"))),
        other => Err(DeError::expected(ty, other)),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} overflows {}", stringify!($t)))),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| DeError::custom(format!("{n} overflows usize")))
        })
    }
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} overflows i64")))?,
                    other => return Err(DeError::expected(stringify!($t), other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("{wide} overflows {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // JSON has no NaN/infinity literal; the serializer emits null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected {N} elements, got {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

/// Types usable as map keys: rendered as strings (JSON objects only have
/// string keys, mirroring how the real serde_json stringifies integer
/// keys).
pub trait MapKey: Sized {
    /// The string form of the key.
    fn to_key(&self) -> String;
    /// Parses a key back from its string form.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] for malformed keys.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError::custom(format!("bad {} map key `{key}`", stringify!($t))))
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort by key string for deterministic output across hash seeds.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let tuple = ($(
                            {
                                let _ = $idx;
                                $name::from_value(
                                    it.next().ok_or_else(|| DeError::custom("tuple too short"))?,
                                )?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::custom("tuple too long"));
                        }
                        Ok(tuple)
                    }
                    other => Err(DeError::expected("tuple sequence", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1.5f64, 2.5];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let boxed: Box<[u64]> = vec![9, 8].into_boxed_slice();
        assert_eq!(Box::<[u64]>::from_value(&boxed.to_value()).unwrap(), boxed);
        let mut map = HashMap::new();
        map.insert(5u64, vec![1u8]);
        assert_eq!(
            HashMap::<u64, Vec<u8>>::from_value(&map.to_value()).unwrap(),
            map
        );
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(<[u64; 3]>::from_value(&vec![1u64].to_value()).is_err());
        assert!(struct_field(&Value::Map(vec![]), "x", "T").is_err());
    }
}

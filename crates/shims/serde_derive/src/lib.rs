//! Derive macros for the vendored `serde` shim.
//!
//! The offline build environment has neither `syn` nor `quote`, so this
//! crate parses the item's token stream by hand. It supports exactly the
//! shapes the workspace uses:
//!
//! * structs with named fields,
//! * single-field tuple structs (serialized as the inner value, i.e. the
//!   serde newtype/`#[serde(transparent)]` representation),
//! * enums whose variants are units or carry named fields (externally
//!   tagged, serde's default),
//! * `#[serde(default)]` and `#[serde(default = "path")]` on named
//!   fields — a missing key deserializes to `Default::default()` or
//!   `path()` instead of erroring, so on-disk records can grow fields
//!   without invalidating old files. Serialization always writes every
//!   field, matching real serde.
//!
//! Generics, tuple variants, and other field attributes are ignored or
//! rejected rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field and its `#[serde(default …)]` marker, if any.
struct Field {
    name: String,
    /// `None` — required field. `Some(None)` — `#[serde(default)]`.
    /// `Some(Some(path))` — `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

/// The parsed shape of the deriving item.
enum Item {
    /// `struct Name { f1: T1, … }`
    Struct { name: String, fields: Vec<Field> },
    /// `struct Name(T);` — serialized transparently as the inner value.
    Newtype { name: String },
    /// `enum Name { Unit, Newtype(T), Struct { f: T }, … }`
    Enum {
        name: String,
        variants: Vec<(String, Variant)>,
    },
}

/// The shape of one enum variant.
enum Variant {
    Unit,
    /// Single-field tuple variant, externally tagged as `{"Name": value}`.
    Newtype,
    /// Named-field variant, externally tagged as `{"Name": {fields…}}`.
    Struct(Vec<Field>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl must parse"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match ident_at(&tokens, i).as_deref() {
        Some(k @ ("struct" | "enum")) => k.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = ident_at(&tokens, i)
        .ok_or("serde shim derive: expected item name")?
        .to_string();
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            let fields = parse_named_fields(g.stream())?;
            Ok(Item::Struct { name, fields })
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            let arity = top_level_comma_groups(g.stream());
            if arity == 1 {
                Ok(Item::Newtype { name })
            } else {
                Err(format!(
                    "serde shim derive: tuple struct `{name}` must have exactly one field"
                ))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "enum" => {
            let variants = parse_variants(g.stream())?;
            Ok(Item::Enum { name, variants })
        }
        _ => Err(format!("serde shim derive: malformed body for `{name}`")),
    }
}

/// Advances past any `#[…]` attributes and `pub` / `pub(…)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the bracket group.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Inspects the attributes preceding a field for a `#[serde(default)]`
/// or `#[serde(default = "path")]` marker while advancing past them and
/// any visibility tokens — the collecting counterpart of
/// [`skip_attrs_and_vis`].
fn parse_field_attrs(
    tokens: &[TokenTree],
    i: &mut usize,
) -> Result<Option<Option<String>>, String> {
    let mut default = None;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(attr)) = tokens.get(*i + 1) {
                    if let Some(found) = parse_serde_default(attr.stream())? {
                        default = Some(found);
                    }
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return Ok(default),
        }
    }
}

/// Extracts the `default` marker from one attribute's token stream
/// (`serde (…)` for a `#[serde(…)]` attribute; anything else yields
/// `None`). Inside the parens, `default` and `default = "path"` are
/// recognised; other serde arguments are ignored.
fn parse_serde_default(stream: TokenStream) -> Result<Option<Option<String>>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                if matches!(&inner[j], TokenTree::Ident(id) if id.to_string() == "default") {
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (inner.get(j + 1), inner.get(j + 2))
                    {
                        if eq.as_char() == '=' {
                            let text = lit.to_string();
                            let path = text.trim_matches('"').to_string();
                            if path.is_empty() || path == text {
                                return Err(format!(
                                    "serde shim derive: `default = {text}` needs a \
                                     quoted function path"
                                ));
                            }
                            return Ok(Some(Some(path)));
                        }
                    }
                    return Ok(Some(None));
                }
                j += 1;
            }
            Ok(None)
        }
        _ => Ok(None),
    }
}

/// Parses `f1: T1, f2: T2, …` (with attributes and visibility) into the
/// ordered field list. Types are skipped with angle-bracket tracking
/// so `HashMap<u64, Box<[u64; 8]>>` does not split on its inner comma.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    loop {
        let default = parse_field_attrs(&tokens, &mut i)?;
        let Some(name) = ident_at(&tokens, i) else {
            if i >= tokens.len() {
                return Ok(fields);
            }
            return Err(format!(
                "serde shim derive: expected field name, got {:?}",
                tokens[i].to_string()
            ));
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{name}`"
                ))
            }
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, default });
        if i < tokens.len() {
            i += 1; // consume the comma
        }
    }
}

/// Parses enum variants: `Unit, Newtype(T), WithFields { f: T }, …`.
fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Variant)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(name) = ident_at(&tokens, i) else {
            if i >= tokens.len() {
                return Ok(variants);
            }
            return Err("serde shim derive: expected variant name".into());
        };
        i += 1;
        let variant = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Variant::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if top_level_comma_groups(g.stream()) != 1 {
                    return Err(format!(
                        "serde shim derive: multi-field tuple variant `{name}` is not supported"
                    ));
                }
                i += 1;
                Variant::Newtype
            }
            _ => Variant::Unit,
        };
        variants.push((name, variant));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

/// Counts top-level comma-separated groups in a token stream (trailing
/// comma tolerated). Used to check tuple-struct arity.
fn top_level_comma_groups(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut groups = 0usize;
    let mut in_group = false;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    in_group = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_group {
            in_group = true;
            groups += 1;
        }
    }
    groups
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn map_entries(fields: &[Field], access: &str) -> String {
    let mut out = String::from("::std::vec![");
    for field in fields {
        let f = &field.name;
        out.push_str(&format!(
            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({access}{f})),"
        ));
    }
    out.push(']');
    out
}

fn struct_builder(ty_path: &str, ty_label: &str, fields: &[Field], source: &str) -> String {
    let mut out = format!("{ty_path} {{");
    for field in fields {
        let f = &field.name;
        match &field.default {
            // Required field: a missing key is an error naming the type.
            None => out.push_str(&format!(
                "{f}: ::serde::Deserialize::from_value(::serde::struct_field({source}, {f:?}, {ty_label:?})?)?,"
            )),
            // Defaulted field: a missing key falls back instead.
            Some(fallback) => {
                let fallback = match fallback {
                    None => String::from("::std::default::Default::default()"),
                    Some(path) => format!("{path}()"),
                };
                out.push_str(&format!(
                    "{f}: match ::serde::Value::get({source}, {f:?}) {{\
                        ::std::option::Option::Some(found) => ::serde::Deserialize::from_value(found)?,\
                        ::std::option::Option::None => {fallback},\
                    }},"
                ));
            }
        }
    }
    out.push('}');
    out
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => format!(
            "impl ::serde::Serialize for {name} {{\
                fn to_value(&self) -> ::serde::Value {{\
                    ::serde::Value::Map({entries})\
                }}\
            }}",
            entries = map_entries(fields, "&self.")
        ),
        Item::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\
                fn to_value(&self) -> ::serde::Value {{\
                    ::serde::Serialize::to_value(&self.0)\
                }}\
            }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (variant, shape) in variants {
                match shape {
                    Variant::Unit => arms.push_str(&format!(
                        "{name}::{variant} => ::serde::Value::Str(::std::string::String::from({variant:?})),"
                    )),
                    Variant::Newtype => arms.push_str(&format!(
                        "{name}::{variant}(inner) => ::serde::Value::Map(::std::vec![\
                            (::std::string::String::from({variant:?}), ::serde::Serialize::to_value(inner)),\
                        ]),"
                    )),
                    Variant::Struct(fields) => {
                        let bindings = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{variant} {{ {bindings} }} => ::serde::Value::Map(::std::vec![\
                                (::std::string::String::from({variant:?}), ::serde::Value::Map({entries})),\
                            ]),",
                            entries = map_entries(fields, "")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                    fn to_value(&self) -> ::serde::Value {{\
                        match self {{ {arms} }}\
                    }}\
                }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let header = |name: &str, body: &str| {
        format!(
            "impl ::serde::Deserialize for {name} {{\
                fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\
                    {body}\
                }}\
            }}"
        )
    };
    match item {
        Item::Struct { name, fields } => header(
            name,
            &format!(
                "::std::result::Result::Ok({})",
                struct_builder(name, name, fields, "v")
            ),
        ),
        Item::Newtype { name } => header(
            name,
            &format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (variant, shape) in variants {
                match shape {
                    Variant::Unit => unit_arms.push_str(&format!(
                        "{variant:?} => ::std::result::Result::Ok({name}::{variant}),"
                    )),
                    Variant::Newtype => tagged_arms.push_str(&format!(
                        "{variant:?} => ::std::result::Result::Ok({name}::{variant}(\
                            ::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Variant::Struct(fields) => {
                        let label = format!("{name}::{variant}");
                        tagged_arms.push_str(&format!(
                            "{variant:?} => ::std::result::Result::Ok({}),",
                            struct_builder(&label, &label, fields, "inner")
                        ));
                    }
                }
            }
            let body = format!(
                "match v {{\
                    ::serde::Value::Str(s) => match s.as_str() {{\
                        {unit_arms}\
                        other => ::std::result::Result::Err(::serde::DeError::custom(\
                            ::std::format!(\"unknown {name} variant `{{other}}`\"))),\
                    }},\
                    ::serde::Value::Map(entries) if entries.len() == 1 => {{\
                        let (tag, inner) = &entries[0];\
                        match tag.as_str() {{\
                            {tagged_arms}\
                            other => ::std::result::Result::Err(::serde::DeError::custom(\
                                ::std::format!(\"unknown {name} variant `{{other}}`\"))),\
                        }}\
                    }},\
                    other => ::std::result::Result::Err(::serde::DeError::expected({name:?}, other)),\
                }}"
            );
            header(name, &body)
        }
    }
}

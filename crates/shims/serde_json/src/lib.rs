//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON over the vendored `serde::Value` tree. Covers
//! the subset the workspace uses: `to_string`, `to_string_pretty`, and
//! `from_str` for any type implementing the shim's `Serialize` /
//! `Deserialize` traits.

use serde::{DeError, Deserialize, Serialize, Value};

pub type Error = DeError;
pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = value.to_value();
    check_finite(&v)?;
    let mut out = String::new();
    render(&v, &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = value.to_value();
    check_finite(&v)?;
    let mut out = String::new();
    render(&v, &mut out, Some(2), 0);
    Ok(out)
}

/// Real `serde_json` refuses to serialize non-finite floats
/// (`Error("float must be finite")`); mirror that so NaN/∞ bugs surface
/// here in tests instead of silently producing invalid-by-intent JSON.
fn check_finite(v: &Value) -> Result<()> {
    match v {
        Value::F64(f) if !f.is_finite() => {
            Err(DeError::custom(format!("float must be finite, got {f}")))
        }
        Value::Seq(items) => items.iter().try_for_each(check_finite),
        Value::Map(entries) => entries.iter().try_for_each(|(_, item)| check_finite(item)),
        _ => Ok(()),
    }
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => render_f64(*f, out),
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_f64(f: f64, out: &mut String) {
    if f.is_nan() || f.is_infinite() {
        // Unreachable through to_string/to_string_pretty (check_finite
        // rejects first); kept as a safe fallback for direct render use.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Match serde_json's "always show a fraction for floats" style.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| DeError::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(DeError::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(DeError::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(DeError::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(DeError::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(DeError::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| DeError::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::custom("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this workspace's
                            // ASCII-only keys; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(DeError::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 run starting at pos-1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while let Some(&nb) = self.bytes.get(end) {
                        if nb == b'"' || nb == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| DeError::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::custom("invalid number"))?;
        if text.is_empty() {
            return Err(DeError::custom(format!("expected value at byte {start}")));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| DeError::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);

        let nested: Vec<Vec<u64>> = vec![vec![], vec![7]];
        let s = to_string(&nested).unwrap();
        assert_eq!(from_str::<Vec<Vec<u64>>>(&s).unwrap(), nested);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u64, 2], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&s).unwrap(), v);
    }

    #[test]
    fn rejects_non_finite_floats() {
        // Parity with real serde_json: NaN and infinities are errors, at
        // any nesting depth.
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
        assert!(to_string_pretty(&f64::NEG_INFINITY).is_err());
        assert!(to_string(&vec![1.0, f64::NAN]).is_err());
        assert!(to_string(&vec![vec![f64::INFINITY]]).is_err());
        assert!(to_string(&vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}

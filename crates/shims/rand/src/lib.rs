//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset the workspace uses: `rngs::SmallRng` (the same
//! xoshiro256++ generator the real crate uses on 64-bit targets, seeded via
//! SplitMix64 exactly like `SeedableRng::seed_from_u64`), the `Rng` methods
//! `gen` / `gen_bool` / `gen_range`, and `seq::SliceRandom::shuffle`.
//!
//! Streams are deterministic per seed, which is all the workspace relies
//! on; derived values (`gen_range`, `shuffle`) are not guaranteed to match
//! the real crate bit-for-bit.

use std::ops::Range;

/// Core 64-bit generator interface (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Samples uniformly from a half-open range via Lemire's widening
    /// multiply (negligible bias for the range sizes used here).
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the full-width generator output
/// (stand-in for `Distribution<T> for Standard`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                    u64 => next_u64, usize => next_u64,
                    i8 => next_u32, i16 => next_u32, i32 => next_u32,
                    i64 => next_u64);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as in rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with `gen_range(a..b)`.
pub trait UniformInt: Copy + PartialOrd {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Lemire widening multiply: map a 64-bit draw onto [0, span).
                let draw = rng.next_u64() as u128;
                let offset = (draw * span) >> 64;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand` 0.8's `SmallRng` on
    /// 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words (for checkpointing).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from raw state words captured with
        /// [`state`](Self::state). The next draw continues the stream
        /// exactly where the captured generator left off.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, identical to rand_core's seed_from_u64.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (stand-in for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SmallRng::seed_from_u64(99);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(13);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..64).collect();
        let mut b: Vec<u32> = (0..64).collect();
        a.shuffle(&mut SmallRng::seed_from_u64(5));
        b.shuffle(&mut SmallRng::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(a, sorted, "64 elements should not shuffle to identity");
    }
}

//! Offline stand-in for `criterion`.
//!
//! Provides the group / `bench_function` / `bench_with_input` API subset
//! the workspace's benches use, backed by a simple wall-clock measurement
//! loop. Passing `--test` (as `cargo test` does for bench targets) runs
//! each benchmark exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo's test runner invokes bench binaries with `--test`; in
        // that mode we only smoke-run each benchmark once.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            smoke: self.smoke,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let smoke = self.smoke;
        run_one(&id.into(), None, smoke, &mut f);
        self
    }
}

/// A named set of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    smoke: bool,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.throughput, self.smoke, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            &label,
            self.throughput,
            self.smoke,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Units-per-iteration annotation used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    mode: BenchMode,
    /// Mean wall-clock time per iteration from the measurement phase.
    per_iter: Duration,
}

enum BenchMode {
    /// Run exactly once (smoke mode under `cargo test`).
    Smoke,
    /// Calibrate then measure.
    Measure,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            BenchMode::Smoke => {
                black_box(routine());
                self.per_iter = Duration::ZERO;
            }
            BenchMode::Measure => {
                // Calibrate: find an iteration count that takes ~50 ms.
                let mut iters: u64 = 1;
                let budget = Duration::from_millis(50);
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= budget || iters >= 1 << 30 {
                        self.per_iter = elapsed / iters as u32;
                        break;
                    }
                    // Aim past the budget next round to finish quickly.
                    iters = if elapsed.is_zero() {
                        iters * 16
                    } else {
                        let scale = budget.as_nanos() as u64 * 2 / elapsed.as_nanos().max(1) as u64;
                        (iters * scale.clamp(2, 16)).min(1 << 30)
                    };
                }
            }
        }
    }
}

fn run_one<F>(label: &str, throughput: Option<Throughput>, smoke: bool, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        mode: if smoke {
            BenchMode::Smoke
        } else {
            BenchMode::Measure
        },
        per_iter: Duration::ZERO,
    };
    f(&mut bencher);
    if smoke {
        println!("bench {label}: ok (smoke)");
        return;
    }
    let nanos = bencher.per_iter.as_nanos() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if nanos > 0.0 => {
            format!("  {:.1} Melem/s", n as f64 / nanos * 1e3)
        }
        Some(Throughput::Bytes(n)) if nanos > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / nanos * 1e9 / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("bench {label}: {nanos:.0} ns/iter{rate}");
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = <$crate::Criterion as ::std::default::Default>::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0u32;
        let mut b = Bencher {
            mode: BenchMode::Smoke,
            per_iter: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion { smoke: true };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("p", 8), &8u32, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}

//! End-to-end contracts of the replay service, over real sockets:
//!
//! * **Byte-identity** — metrics streamed over the socket are
//!   byte-identical to an offline `tracegen stream-replay`, at any
//!   `--jobs` setting.
//! * **Isolation** — concurrent sessions cannot perturb each other's
//!   streams, and the multiplexed log stays session-scoped.
//! * **Admission** — the global budget queues what fits eventually and
//!   rejects what never can; cancel and disconnect both free budget.
//! * **Crash resume** — a session interrupted mid-replay (checkpoint
//!   family on disk, no `done` marker) is completed byte-identically by
//!   `resume_pending` on the next server start.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cnt_bench::driver::{
    run_two_pass, stream_config_pair, CheckpointPlan, CheckpointStore, SessionPlan,
};
use cnt_bench::pool;
use cnt_bench::stream::CancelToken;
use cnt_serve::client::{replay_file, Client, ClientError, Event};
use cnt_serve::proto::OpenSession;
use cnt_serve::{Server, ServerConfig};
use cnt_trace::{
    CheckpointError, CheckpointFile, CheckpointRotator, CorruptionPolicy, ReadOptions,
};
use cnt_workloads::synthetic::SyntheticSpec;

const MIB: usize = 1024 * 1024;

/// Per-test scratch space; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("cnt_serve_e2e_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, leaf: &str) -> PathBuf {
        self.0.join(leaf)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Packs a synthetic trace big enough to span several streaming windows
/// at a 1 MiB budget (so checkpoints actually fire).
fn make_trace(path: &Path, accesses: usize) -> u64 {
    let spec = SyntheticSpec {
        accesses,
        ..Default::default()
    };
    let file = std::fs::File::create(path).expect("trace file");
    cnt_trace::pack_accesses(
        spec.stream(),
        std::io::BufWriter::new(file),
        cnt_trace::DEFAULT_CHUNK_ACCESSES,
    )
    .expect("packs");
    std::fs::metadata(path).expect("metadata").len()
}

/// The offline reference: what `tracegen stream-replay` would write for
/// this trace and budget. Fresh thread, same as every server session.
fn offline_metrics(trace: &Path, budget_mib: usize, metrics_every: u64) -> String {
    let trace = trace.to_path_buf();
    std::thread::spawn(move || {
        let (base_cfg, cnt_cfg) = stream_config_pair();
        let guard = cnt_obs::install_local(metrics_every, None);
        let plan = SessionPlan {
            input: &trace,
            opts: ReadOptions {
                budget_bytes: budget_mib * MIB,
                corruption: CorruptionPolicy::FailFast,
            },
            base_cfg: &base_cfg,
            cnt_cfg: &cnt_cfg,
            metrics_every: Some(metrics_every),
            checkpoint: None,
            cancel: None,
        };
        run_two_pass(plan, None).expect("offline replay");
        cnt_obs::to_jsonl(&guard.finish()).expect("serialises")
    })
    .join()
    .expect("offline thread")
}

struct TestServer {
    addr: String,
    state_dir: PathBuf,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(state_dir: PathBuf, cfg: ServerConfig) -> TestServer {
        let cfg = ServerConfig {
            state_dir: state_dir.clone(),
            ..cfg
        };
        let server = Server::bind("127.0.0.1:0", cfg).expect("binds");
        let addr = server.local_addr().expect("addr").to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                server.run(&shutdown, None).expect("listener survives");
            })
        };
        TestServer {
            addr,
            state_dir,
            shutdown,
            handle: Some(handle),
        }
    }

    fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handle.take().expect("running").join().expect("exits");
    }
}

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        spool_timeout: Duration::from_secs(5),
        pump_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

/// `sNNNN` directories currently present under a state dir.
fn session_dirs(state_dir: &Path) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(state_dir) else {
        return Vec::new();
    };
    let mut dirs: Vec<String> = entries
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| name.starts_with('s') && name[1..].bytes().all(|b| b.is_ascii_digit()))
        .collect();
    dirs.sort();
    dirs
}

#[test]
fn streamed_metrics_are_byte_identical_to_offline_at_any_jobs() {
    let scratch = Scratch::new("identity");
    let trace = scratch.path("t.ctr");
    make_trace(&trace, 120_000);
    let reference = offline_metrics(&trace, 1, 5_000);
    assert!(!reference.is_empty());

    let server = TestServer::start(scratch.path("state"), quick_cfg());
    for jobs in [1usize, 4] {
        pool::set_jobs(jobs);
        let outcome =
            replay_file(&server.addr, &trace, 1, 5_000, |_| {}).expect("session completes");
        assert_eq!(
            outcome.metrics_jsonl, reference,
            "streamed metrics diverged from offline at --jobs {jobs}"
        );
        assert_eq!(outcome.done.snapshots as usize, reference.lines().count());
        assert!(
            outcome.done.baseline_fj > outcome.done.cnt_fj,
            "CNT must save energy"
        );
    }
    pool::set_jobs(1);
    server.stop();
}

#[test]
fn concurrent_sessions_are_isolated_and_the_mux_log_is_scoped() {
    let scratch = Scratch::new("isolation");
    let trace = scratch.path("t.ctr");
    make_trace(&trace, 60_000);
    let reference = offline_metrics(&trace, 1, 2_000);

    let server = TestServer::start(scratch.path("state"), quick_cfg());
    let outcomes: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let addr = &server.addr;
                let trace = &trace;
                scope.spawn(move || {
                    replay_file(addr, trace, 1, 2_000, |_| {})
                        .expect("session completes")
                        .metrics_jsonl
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    for (session, jsonl) in outcomes.iter().enumerate() {
        assert_eq!(
            jsonl, &reference,
            "concurrent session {session} diverged from the offline stream"
        );
    }

    let mux = std::fs::read_to_string(server.state_dir.join("serve_metrics.jsonl"))
        .expect("multiplex log exists");
    let summary = cnt_obs::validate_sessions_jsonl(&mux).expect("mux log is session-scoped");
    assert_eq!(summary.sessions, 3);
    assert_eq!(summary.snapshots, 3 * reference.lines().count());
    server.stop();
}

#[test]
fn admission_queues_what_fits_and_rejects_what_never_can() {
    let scratch = Scratch::new("admission");
    let trace = scratch.path("t.ctr");
    let trace_bytes = make_trace(&trace, 30_000);

    let server = TestServer::start(
        scratch.path("state"),
        ServerConfig {
            global_budget_mib: 4,
            ..quick_cfg()
        },
    );

    // A request larger than the whole ledger is rejected outright.
    let mut too_big = Client::connect(&server.addr).expect("connects");
    let rejected = too_big.open(
        &OpenSession {
            budget_mib: 5,
            metrics_every: 0,
            trace_bytes,
            workload: None,
        },
        |_| {},
    );
    match rejected {
        Err(ClientError::Rejected(e)) => assert_eq!(e.code, "admission"),
        other => panic!("expected an admission rejection, got {other:?}"),
    }
    drop(too_big);

    // Holder takes 3 of the 4 MiB and sits in the spool phase.
    let mut holder = Client::connect(&server.addr).expect("connects");
    holder
        .open(
            &OpenSession {
                budget_mib: 3,
                metrics_every: 0,
                trace_bytes,
                workload: None,
            },
            |_| panic!("holder must be admitted immediately"),
        )
        .expect("admitted");

    // Waiter needs 3 MiB too: must queue until the holder cancels.
    let queued = Arc::new(AtomicBool::new(false));
    let waiter = {
        let addr = server.addr.clone();
        let trace = trace.clone();
        let queued = Arc::clone(&queued);
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connects");
            client
                .open(
                    &OpenSession {
                        budget_mib: 3,
                        metrics_every: 0,
                        trace_bytes,
                        workload: None,
                    },
                    |_| queued.store(true, Ordering::SeqCst),
                )
                .expect("admitted after the holder cancels");
            client.send_trace_file(&trace).expect("streams");
            client.finish().expect("finishes");
            loop {
                match client.recv_event().expect("events flow") {
                    Event::Done(done) => return done,
                    _ => continue,
                }
            }
        })
    };

    // Give the waiter time to hit the queue, then free the budget.
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        queued.load(Ordering::SeqCst),
        "waiter should have been queued while the holder held the budget"
    );
    holder.cancel().expect("cancels");
    drop(holder);

    let done = waiter.join().expect("waiter completes");
    assert!(done.accesses > 0);
    server.stop();
}

#[test]
fn cancel_mid_replay_frees_the_session_completely() {
    let scratch = Scratch::new("cancel");
    let trace = scratch.path("t.ctr");
    make_trace(&trace, 200_000);

    let server = TestServer::start(
        scratch.path("state"),
        ServerConfig {
            global_budget_mib: 2,
            ..quick_cfg()
        },
    );

    // Stream the whole trace, then cancel at the first obs frame —
    // early in pass 0 of a two-pass replay.
    let mut client = Client::connect(&server.addr).expect("connects");
    client
        .open(
            &OpenSession {
                budget_mib: 2,
                metrics_every: 1_000,
                trace_bytes: std::fs::metadata(&trace).expect("metadata").len(),
                workload: None,
            },
            |_| {},
        )
        .expect("admitted");
    client.send_trace_file(&trace).expect("streams");
    client.finish().expect("finishes");
    let outcome = loop {
        match client.recv_event() {
            Ok(Event::Obs(_)) => client.cancel().expect("cancel sends"),
            Ok(Event::Done(_)) => panic!("replay finished before the cancel took effect"),
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    match outcome {
        ClientError::Rejected(e) => assert_eq!(e.code, "cancelled"),
        other => panic!("expected a cancelled error, got {other}"),
    }
    drop(client);

    // The session is fully gone: directory removed, budget returned —
    // a new full-budget session is admitted without queueing.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        session_dirs(&server.state_dir).is_empty(),
        "cancelled session directory must be removed"
    );
    let outcome = replay_file(&server.addr, &trace, 2, 0, |event| {
        if let Event::Status(_) | Event::Obs(_) = event {}
    })
    .expect("full budget is free again");
    assert!(outcome.done.accesses > 0);
    server.stop();
}

#[test]
fn client_disconnect_mid_spool_frees_the_session() {
    let scratch = Scratch::new("disconnect");
    let trace = scratch.path("t.ctr");
    let trace_bytes = make_trace(&trace, 30_000);

    let server = TestServer::start(
        scratch.path("state"),
        ServerConfig {
            global_budget_mib: 2,
            ..quick_cfg()
        },
    );

    // Take the whole budget, then vanish mid-spool.
    let mut client = Client::connect(&server.addr).expect("connects");
    client
        .open(
            &OpenSession {
                budget_mib: 2,
                metrics_every: 0,
                trace_bytes,
                workload: None,
            },
            |_| {},
        )
        .expect("admitted");
    drop(client);

    // The server notices the hang-up, tears the session down, and the
    // next full-budget session is admitted cleanly.
    std::thread::sleep(Duration::from_millis(200));
    let outcome = replay_file(&server.addr, &trace, 2, 0, |_| {}).expect("budget was freed");
    assert!(outcome.done.accesses > 0);
    let dirs = session_dirs(&server.state_dir);
    assert_eq!(
        dirs.len(),
        1,
        "only the completed session remains: {dirs:?}"
    );
    server.stop();
}

/// A checkpoint store that cancels the replay after a fixed number of
/// generations — manufacturing the exact on-disk state a SIGKILL'd
/// server leaves behind.
struct KillAfter {
    inner: CheckpointRotator,
    writes_left: u32,
    token: CancelToken,
}

impl CheckpointStore for KillAfter {
    fn store(&mut self, file: &CheckpointFile) -> Result<(), CheckpointError> {
        self.inner.write(file)?;
        self.writes_left -= 1;
        if self.writes_left == 0 {
            self.token.cancel();
        }
        Ok(())
    }
}

#[test]
fn resume_pending_completes_interrupted_sessions_byte_identically() {
    let scratch = Scratch::new("resume");
    let trace = scratch.path("t.ctr");
    let trace_bytes = make_trace(&trace, 200_000);
    assert!(
        trace_bytes > MIB as u64,
        "trace must span several 1 MiB windows for checkpoints to fire"
    );
    let reference = offline_metrics(&trace, 1, 5_000);

    // Manufacture a killed session: spooled trace, meta, a checkpoint
    // family two generations deep, no `done` marker.
    let state_dir = scratch.path("state");
    let dir = state_dir.join("s0000");
    std::fs::create_dir_all(&dir).expect("session dir");
    std::fs::copy(&trace, dir.join("trace.ctr")).expect("spool");
    std::fs::write(dir.join("trace.ok"), b"ok\n").expect("marker");
    std::fs::write(
        dir.join("meta.json"),
        format!(
            "{{\"session\":\"s0000\",\"budget_mib\":1,\"metrics_every\":5000,\
             \"trace_bytes\":{trace_bytes}}}"
        ),
    )
    .expect("meta");
    {
        let token = CancelToken::new();
        let mut store = KillAfter {
            inner: CheckpointRotator::new(&dir.join("ckpt.ctrs"), 2).expect("rotator"),
            writes_left: 2,
            token: token.clone(),
        };
        let dir = dir.clone();
        let trace = trace.clone();
        let interrupted = std::thread::spawn(move || {
            let (base_cfg, cnt_cfg) = stream_config_pair();
            let _guard = cnt_obs::install_local(5_000, None);
            let plan = SessionPlan {
                input: &trace,
                opts: ReadOptions {
                    budget_bytes: MIB,
                    corruption: CorruptionPolicy::FailFast,
                },
                base_cfg: &base_cfg,
                cnt_cfg: &cnt_cfg,
                metrics_every: Some(5_000),
                checkpoint: Some(CheckpointPlan {
                    every: 4,
                    store: &mut store,
                }),
                cancel: Some(&token),
            };
            let err = match run_two_pass(plan, None) {
                Err(err) => err,
                Ok(_) => panic!("replay should have been interrupted mid-flight"),
            };
            assert!(err.as_cancelled().is_some(), "died via the kill switch");
            assert!(
                cnt_trace::rotate::latest(&dir.join("ckpt.ctrs"))
                    .expect("scan")
                    .is_some(),
                "a checkpoint generation is on disk"
            );
        });
        interrupted.join().expect("no panic");
    }
    assert!(!dir.join("done").is_file());

    // A session killed mid-spool (no trace.ok) must be swept, not resumed.
    let half_spooled = state_dir.join("s0001");
    std::fs::create_dir_all(&half_spooled).expect("dir");
    std::fs::write(half_spooled.join("trace.ctr"), b"partial").expect("write");

    // Next server start finishes the pending session before listening.
    let cfg = ServerConfig {
        checkpoint_every: Some(4),
        ..quick_cfg()
    };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            state_dir: state_dir.clone(),
            ..cfg
        },
    )
    .expect("binds");
    let resumed = server.resume_pending();
    assert_eq!(resumed.len(), 1, "one session to resume: {resumed:?}");
    assert_eq!(resumed[0].0, "s0000");
    resumed[0].1.as_ref().expect("resume succeeds");

    let metrics = std::fs::read_to_string(dir.join("metrics.jsonl")).expect("metrics written");
    assert_eq!(
        metrics, reference,
        "resumed session must match the uninterrupted offline replay byte-for-byte"
    );
    assert!(dir.join("done").is_file());
    assert!(!half_spooled.exists(), "mid-spool corpse swept");

    // The multiplexed log got the resumed session's scoped snapshots.
    let mux = std::fs::read_to_string(state_dir.join("serve_metrics.jsonl")).expect("mux log");
    let summary = cnt_obs::validate_sessions_jsonl(&mux).expect("scoped");
    assert_eq!(summary.sessions, 1);

    // Resuming again is a no-op: the session is done.
    assert!(server.resume_pending().is_empty());
    drop(server);
}

#[test]
fn registry_named_sessions_replay_byte_identically_to_streamed_traces() {
    let scratch = Scratch::new("workload");

    // An "imported" capture: a synthetic trace dropped into the trace
    // dir the server scans, registered as `import/capture`.
    let capture_dir = scratch.path("captures");
    std::fs::create_dir_all(&capture_dir).expect("capture dir");
    let capture = capture_dir.join("capture.ctr");
    make_trace(&capture, 30_000);

    let server = TestServer::start(
        scratch.path("state"),
        ServerConfig {
            trace_dir: Some(capture_dir),
            ..quick_cfg()
        },
    );

    // A synthetic registry workload: the server materializes the same
    // bytes a local `pack_trace` produces, so streaming the local pack
    // and naming the workload must give byte-identical metrics.
    let entry_trace = scratch.path("dct.ctr");
    {
        let registry = cnt_workloads::WorkloadRegistry::builtin();
        let selected = registry.select("synth/dct8x8").expect("known kernel");
        assert_eq!(selected.len(), 1);
        let workload = selected[0].load().expect("synthetic load");
        let file = std::fs::File::create(&entry_trace).expect("trace file");
        cnt_trace::pack_trace(
            &workload.trace,
            std::io::BufWriter::new(file),
            cnt_trace::DEFAULT_CHUNK_ACCESSES,
        )
        .expect("packs");
    }
    let streamed = replay_file(&server.addr, &entry_trace, 1, 2_000, |_| {})
        .expect("streamed session completes");
    let named = cnt_serve::replay_workload(&server.addr, "synth/dct8x8", 1, 2_000, |_| {})
        .expect("workload session completes");
    assert_eq!(
        named.metrics_jsonl, streamed.metrics_jsonl,
        "registry-named session diverged from streaming the same trace"
    );
    assert_eq!(named.done.accesses, streamed.done.accesses);

    // The imported capture replays through the same registry path.
    let imported = cnt_serve::replay_workload(&server.addr, "import/capture", 1, 2_000, |_| {})
        .expect("imported workload session completes");
    let reference =
        replay_file(&server.addr, &capture, 1, 2_000, |_| {}).expect("streamed capture completes");
    assert_eq!(imported.metrics_jsonl, reference.metrics_jsonl);

    // Unknown ids are rejected during admission with the typed code.
    match cnt_serve::replay_workload(&server.addr, "import/nope", 1, 0, |_| {}) {
        Err(ClientError::Rejected(e)) => assert_eq!(e.code, "workload"),
        other => panic!("expected a workload rejection, got {other:?}"),
    }

    // A workload request that also claims trace bytes is a confused
    // client and is refused at admission.
    let mut confused = Client::connect(&server.addr).expect("connects");
    match confused.open(
        &OpenSession {
            budget_mib: 1,
            metrics_every: 0,
            trace_bytes: 64,
            workload: Some("synth/dct8x8".to_string()),
        },
        |_| {},
    ) {
        Err(ClientError::Rejected(e)) => assert_eq!(e.code, "admission"),
        other => panic!("expected an admission rejection, got {other:?}"),
    }
    server.stop();
}

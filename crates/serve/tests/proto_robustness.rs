//! Robustness of the wire protocol against hostile or damaged input.
//!
//! The property under test: **no bytes a peer can send ever panic or
//! wedge this side**. Arbitrary garbage, bit-flipped frames, truncated
//! streams, oversized length prefixes, and version-skewed hellos must
//! all surface as the right typed [`ProtoError`] — and a live server
//! fed each of them must tear the connection down cleanly and keep
//! serving the next client.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cnt_serve::proto::{
    read_frame, read_hello, write_frame, Hello, Kind, ProtoError, FRAME_HEADER_BYTES, HELLO_BYTES,
    MAX_FRAME_PAYLOAD,
};
use cnt_serve::{Server, ServerConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes through the frame reader: typed error or a valid
    /// frame, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic_the_frame_reader(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_frame(&mut bytes.as_slice());
    }

    /// Arbitrary 16-byte hellos: only BadMagic, UnsupportedVersion, or a
    /// well-formed hello.
    #[test]
    fn arbitrary_hellos_decode_or_fail_typed(bytes in proptest::collection::vec(any::<u8>(), HELLO_BYTES)) {
        let sized: &[u8; HELLO_BYTES] = bytes.as_slice().try_into().expect("sized");
        match Hello::from_bytes(sized) {
            Ok(hello) => prop_assert_eq!(hello.version, cnt_serve::proto::VERSION),
            Err(ProtoError::BadMagic { .. } | ProtoError::UnsupportedVersion { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Flipping any single bit of a valid frame either still decodes to
    /// the same payload (flips confined to the ignored flags/reserved
    /// header bytes) or fails with a typed error — never a panic, never
    /// a silently different payload.
    #[test]
    fn single_bit_flips_never_silently_alter_a_frame(seed in any::<u64>(), bit in 0u8..8) {
        let payload = seed.to_le_bytes();
        let mut wire = Vec::new();
        write_frame(&mut wire, Kind::Chunk, &payload).expect("writes");
        let index = (seed % wire.len() as u64) as usize;
        wire[index] ^= 1 << bit;
        match read_frame(&mut wire.as_slice()) {
            Ok((kind, decoded)) => {
                // Only the ignored flags/reserved bytes (1..4) or a
                // kind-byte flip that lands on another valid kind may
                // still decode — and the payload must be untouched.
                if index == 0 {
                    prop_assert!(kind != Kind::Chunk, "kind flip cannot be invisible");
                } else {
                    prop_assert!(
                        (1..4).contains(&index),
                        "flip at byte {} must not decode", index
                    );
                    prop_assert_eq!(kind, Kind::Chunk);
                }
                prop_assert_eq!(decoded, payload.to_vec());
            }
            Err(
                ProtoError::UnknownKind { .. }
                | ProtoError::Crc { .. }
                | ProtoError::Oversized { .. }
                | ProtoError::Io(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Truncating a valid frame anywhere yields a typed error (or, cut
    /// exactly at the frame boundary, a clean `Closed` on the next read).
    #[test]
    fn truncated_frames_fail_typed(cut in any::<u64>()) {
        let mut wire = Vec::new();
        write_frame(&mut wire, Kind::Obs, b"{\"epoch\":0}\n").expect("writes");
        let cut = (cut % wire.len() as u64) as usize;
        match read_frame(&mut &wire[..cut]) {
            Err(ProtoError::Closed) => prop_assert_eq!(cut, 0),
            Err(ProtoError::Io(_)) => {}
            Ok(_) => prop_assert!(false, "truncated frame decoded"),
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }
}

/// Boots a loopback server for the live-connection cases.
fn test_server(name: &str) -> (String, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let state = std::env::temp_dir().join(format!("cnt_serve_proto_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&state).ok();
    let cfg = ServerConfig {
        state_dir: state,
        spool_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("binds");
    let addr = server.local_addr().expect("addr").to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            server.run(&shutdown, None).expect("listener survives");
        })
    };
    (addr, shutdown, handle)
}

fn stop_server(state_name: &str, shutdown: &AtomicBool, handle: std::thread::JoinHandle<()>) {
    shutdown.store(true, Ordering::SeqCst);
    handle.join().expect("server thread exits");
    let state = std::env::temp_dir().join(format!(
        "cnt_serve_proto_{state_name}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(state).ok();
}

/// Reads everything the server sends until it hangs up.
fn drain(stream: &mut TcpStream) -> Vec<u8> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).ok();
    bytes
}

/// A version-skewed client still receives the server's hello (so it can
/// report what the server speaks) plus a typed fatal error — then a
/// clean close. The server keeps serving afterwards.
#[test]
fn version_skew_gets_a_typed_refusal_and_a_clean_close() {
    let (addr, shutdown, handle) = test_server("skew");

    let mut stream = TcpStream::connect(&addr).expect("connects");
    let mut skewed = Hello::ours(0).to_bytes();
    skewed[8] = 0x63; // version 99
    stream.write_all(&skewed).expect("writes");
    let reply = drain(&mut stream);

    // The reply opens with the server's own well-formed hello...
    assert!(
        reply.len() >= HELLO_BYTES,
        "server sent {} bytes",
        reply.len()
    );
    let hello_bytes: &[u8; HELLO_BYTES] = reply[..HELLO_BYTES].try_into().expect("sized");
    let hello = Hello::from_bytes(hello_bytes).expect("server hello is well-formed");
    assert_eq!(hello.version, cnt_serve::proto::VERSION);
    // ...followed by a fatal Error frame naming the skew.
    let mut rest = &reply[HELLO_BYTES..];
    let (kind, payload) = read_frame(&mut rest).expect("error frame follows");
    assert_eq!(kind, Kind::Error);
    let e: cnt_serve::proto::ErrorMsg =
        cnt_serve::proto::decode_msg("ErrorMsg", &payload).expect("typed error");
    assert_eq!(e.code, "version-skew");
    assert!(e.fatal);

    // The server is still healthy: a well-formed hello gets one back.
    let mut second = TcpStream::connect(&addr).expect("connects");
    second
        .write_all(&Hello::ours(0).to_bytes())
        .expect("writes");
    let mut hello_back = [0u8; HELLO_BYTES];
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    second.read_exact(&mut hello_back).expect("server answers");
    Hello::from_bytes(&hello_back).expect("well-formed");

    drop(stream);
    drop(second);
    stop_server("skew", &shutdown, handle);
}

/// An oversized length prefix after a valid handshake is refused with a
/// typed error before any allocation, and the connection closes.
#[test]
fn oversized_frames_are_refused_without_allocation() {
    let (addr, shutdown, handle) = test_server("oversized");

    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .write_all(&Hello::ours(0).to_bytes())
        .expect("writes");
    let mut hello_back = [0u8; HELLO_BYTES];
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream.read_exact(&mut hello_back).expect("handshake");

    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[0] = 0x01; // OpenSession
    header[4..8].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    stream.write_all(&header).expect("writes");
    let reply = drain(&mut stream);
    let (kind, payload) = read_frame(&mut reply.as_slice()).expect("error frame");
    assert_eq!(kind, Kind::Error);
    let e: cnt_serve::proto::ErrorMsg =
        cnt_serve::proto::decode_msg("ErrorMsg", &payload).expect("typed error");
    assert_eq!(e.code, "oversized-frame");

    drop(stream);
    stop_server("oversized", &shutdown, handle);
}

/// Pure garbage instead of a hello: `bad-magic`, clean close, server
/// unharmed.
#[test]
fn garbage_handshake_is_refused() {
    let (addr, shutdown, handle) = test_server("garbage");

    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream.write_all(b"GET / HTTP/1.1\r\n").expect("writes");
    let reply = drain(&mut stream);
    assert!(reply.len() >= HELLO_BYTES);
    let mut rest = &reply[HELLO_BYTES..];
    let (kind, payload) = read_frame(&mut rest).expect("error frame");
    assert_eq!(kind, Kind::Error);
    let e: cnt_serve::proto::ErrorMsg =
        cnt_serve::proto::decode_msg("ErrorMsg", &payload).expect("typed error");
    assert_eq!(e.code, "bad-magic");

    drop(stream);
    stop_server("garbage", &shutdown, handle);
}

/// A hello read on the server side must also be immune to a client that
/// connects and immediately hangs up.
#[test]
fn instant_hangup_does_not_wedge_the_server() {
    let (addr, shutdown, handle) = test_server("hangup");
    for _ in 0..4 {
        drop(TcpStream::connect(&addr).expect("connects"));
    }
    // Still serving.
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .write_all(&Hello::ours(0).to_bytes())
        .expect("writes");
    let mut hello_back = [0u8; HELLO_BYTES];
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream.read_exact(&mut hello_back).expect("server answers");
    drop(stream);
    stop_server("hangup", &shutdown, handle);
}

/// The hello reader itself rejects valid-magic, skewed-version input
/// without consuming anything beyond the 16 bytes.
#[test]
fn hello_reader_is_exact() {
    let mut wire = Vec::new();
    wire.extend_from_slice(&Hello::ours(7).to_bytes());
    wire.extend_from_slice(b"trailing");
    let mut r = wire.as_slice();
    let hello = read_hello(&mut r).expect("reads");
    assert_eq!(hello.features, 7);
    assert_eq!(r, b"trailing", "exactly 16 bytes consumed");
}

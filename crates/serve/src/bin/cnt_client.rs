//! The `cnt_client` binary: replay one `.ctr` trace through a running
//! `cnt_serve` instance and collect the streamed metrics.
//!
//! ```text
//! cnt_client 127.0.0.1:7171 trace.ctr --budget-mib 8 \
//!            --metrics-every 5000 --metrics-out metrics.jsonl
//! cnt_client 127.0.0.1:7171 --workload synth/matmul --budget-mib 8
//! ```
//!
//! With `--workload ID` no trace file is given: the server materializes
//! the named registry workload itself and the client only consumes the
//! streamed replay.
//!
//! The streamed metrics file is byte-identical to what
//! `tracegen stream-replay` would have written offline for the same
//! trace and budget — that is the service's core guarantee.

use std::path::PathBuf;
use std::process::ExitCode;

use cnt_serve::client::{replay_file, replay_workload, Event, ReplayOutcome};

struct Args {
    addr: String,
    /// A local `.ctr` to stream, or a registry id the server replays.
    source: Source,
    budget_mib: usize,
    metrics_every: u64,
    metrics_out: Option<PathBuf>,
}

enum Source {
    Trace(PathBuf),
    Workload(String),
}

fn usage() -> ! {
    eprintln!(
        "usage: cnt_client ADDR TRACE.ctr [--budget-mib N] [--metrics-every N]\n\
         \u{20}                 [--metrics-out FILE]\n\
         \u{20}      cnt_client ADDR --workload ID [--budget-mib N] [--metrics-every N]\n\
         \u{20}                 [--metrics-out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut budget_mib = 8;
    let mut metrics_every = 0;
    let mut metrics_out = None;
    let mut workload = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--budget-mib" => {
                budget_mib = value("--budget-mib").parse().unwrap_or_else(|_| usage())
            }
            "--metrics-every" => {
                metrics_every = value("--metrics-every").parse().unwrap_or_else(|_| usage())
            }
            "--metrics-out" => metrics_out = Some(PathBuf::from(value("--metrics-out"))),
            "--workload" => workload = Some(value("--workload")),
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
            _ => positional.push(arg),
        }
    }
    let (addr, source) = match (workload, positional.len()) {
        (Some(id), 1) => (positional.pop().expect("len checked"), Source::Workload(id)),
        (None, 2) => {
            let trace = PathBuf::from(positional.pop().expect("len checked"));
            (positional.pop().expect("len checked"), Source::Trace(trace))
        }
        _ => usage(),
    };
    Args {
        addr,
        source,
        budget_mib,
        metrics_every,
        metrics_out,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let on_event = |event: &Event| match event {
        Event::Status(report) => {
            eprintln!(
                "client: {} {} at {}",
                report.session, report.phase, report.progress
            )
        }
        Event::Warning(e) => eprintln!("client: server warning ({}): {}", e.code, e.message),
        Event::Obs(_) | Event::Done(_) => {}
    };
    let outcome: Result<ReplayOutcome, _> = match &args.source {
        Source::Trace(path) => replay_file(
            &args.addr,
            path,
            args.budget_mib,
            args.metrics_every,
            on_event,
        ),
        Source::Workload(id) => replay_workload(
            &args.addr,
            id,
            args.budget_mib,
            args.metrics_every,
            on_event,
        ),
    };
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("cnt_client: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, &outcome.metrics_jsonl) {
            eprintln!("cnt_client: write `{}`: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let done = &outcome.done;
    let saving = if done.baseline_fj > 0.0 {
        (1.0 - done.cnt_fj / done.baseline_fj) * 100.0
    } else {
        0.0
    };
    println!(
        "session {}: {} accesses, {} snapshots streamed",
        done.session, done.accesses, done.snapshots
    );
    println!(
        "energy: baseline {:.1} fJ, adaptive CNT {:.1} fJ ({saving:.2}% saving)",
        done.baseline_fj, done.cnt_fj
    );
    ExitCode::SUCCESS
}

//! Serial-vs-concurrent session throughput for the replay service,
//! plus the byte-identity audit that makes the numbers trustworthy.
//!
//! Boots an in-process server on a loopback port, replays the same
//! synthetic trace as N sessions twice — one at a time, then all at
//! once — and writes a [`cnt_bench::ServeBenchRecord`] (`BENCH_serve.json`).
//! Before timing anything it verifies that every session's streamed
//! metrics JSONL is byte-identical to an offline
//! `tracegen stream-replay` of the same trace, so the benchmark can
//! never drift from the service's correctness bar.
//!
//! On a box with fewer than 4 cores the record still gets written, but
//! with `skip_note` set: the concurrency numbers are not a scaling
//! claim there.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use cnt_bench::driver::{run_two_pass, stream_config_pair, SessionPlan};
use cnt_bench::pool;
use cnt_bench::{PassRecord, ServeBenchRecord};
use cnt_serve::client::replay_file;
use cnt_serve::{Server, ServerConfig};
use cnt_trace::{CorruptionPolicy, ReadOptions};
use cnt_workloads::synthetic::SyntheticSpec;

const MIB: usize = 1024 * 1024;

struct Args {
    sessions: usize,
    accesses: usize,
    budget_mib: usize,
    metrics_every: u64,
    jobs: usize,
    iters: u32,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_serve [--sessions N] [--accesses N] [--budget-mib N]\n\
         \u{20}                 [--metrics-every N] [--jobs N] [--iters N] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        sessions: 4,
        accesses: 40_000,
        budget_mib: 4,
        metrics_every: 5_000,
        jobs: pool::default_jobs(),
        iters: 1,
        out: PathBuf::from("BENCH_serve.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--sessions" => args.sessions = parse_num(&value("--sessions")),
            "--accesses" => args.accesses = parse_num(&value("--accesses")),
            "--budget-mib" => args.budget_mib = parse_num(&value("--budget-mib")),
            "--metrics-every" => args.metrics_every = parse_num(&value("--metrics-every")),
            "--jobs" => args.jobs = parse_num(&value("--jobs")),
            "--iters" => args.iters = parse_num(&value("--iters")),
            "--out" => args.out = PathBuf::from(value("--out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    if args.sessions == 0 || args.accesses == 0 || args.iters == 0 {
        eprintln!("--sessions, --accesses, and --iters must be positive");
        usage()
    }
    args
}

fn parse_num<T: std::str::FromStr>(text: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("`{text}` is not a valid number");
        usage()
    })
}

/// The offline reference: the exact metrics JSONL `tracegen
/// stream-replay` would write for this trace and budget. Runs on a
/// fresh thread so replay ids start at `r0000`, same as a session.
fn offline_metrics(trace: &Path, budget_mib: usize, metrics_every: u64) -> Result<String, String> {
    let trace = trace.to_path_buf();
    std::thread::spawn(move || -> Result<String, String> {
        let (base_cfg, cnt_cfg) = stream_config_pair();
        let guard = cnt_obs::install_local(metrics_every, None);
        let plan = SessionPlan {
            input: &trace,
            opts: ReadOptions {
                budget_bytes: budget_mib * MIB,
                corruption: CorruptionPolicy::FailFast,
            },
            base_cfg: &base_cfg,
            cnt_cfg: &cnt_cfg,
            metrics_every: Some(metrics_every),
            checkpoint: None,
            cancel: None,
        };
        run_two_pass(plan, None).map_err(|e| e.to_string())?;
        cnt_obs::to_jsonl(&guard.finish()).map_err(|e| e.to_string())
    })
    .join()
    .map_err(|_| "offline replay thread panicked".to_string())?
}

fn main() -> ExitCode {
    match run(parse_args()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(what) => {
            eprintln!("bench_serve: {what}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> Result<(), String> {
    pool::set_jobs(args.jobs);
    let cores = pool::default_jobs();

    let scratch = std::env::temp_dir().join(format!("bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).map_err(|e| e.to_string())?;
    let result = run_in(&args, cores, &scratch);
    std::fs::remove_dir_all(&scratch).ok();
    result
}

fn run_in(args: &Args, cores: usize, scratch: &Path) -> Result<(), String> {
    // One trace shared by every session.
    let trace_path = scratch.join("bench.ctr");
    let spec = SyntheticSpec {
        accesses: args.accesses,
        ..Default::default()
    };
    let file = std::fs::File::create(&trace_path).map_err(|e| e.to_string())?;
    let summary = cnt_trace::pack_accesses(
        spec.stream(),
        std::io::BufWriter::new(file),
        cnt_trace::DEFAULT_CHUNK_ACCESSES,
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "bench_serve: trace ready ({} accesses, {} chunks)",
        summary.accesses, summary.chunks
    );

    let reference = offline_metrics(&trace_path, args.budget_mib, args.metrics_every)?;

    // Budget sized so every session fits at once: concurrency is what
    // is being measured, not the admission queue.
    let cfg = ServerConfig {
        state_dir: scratch.join("state"),
        global_budget_mib: args.budget_mib * args.sessions + 1,
        checkpoint_every: None,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?.to_string();
    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    let server_thread = std::thread::spawn(move || server.run(&SHUTDOWN, None));

    let one_session = |label: &str| -> Result<(u64, String), String> {
        let outcome = replay_file(
            &addr,
            &trace_path,
            args.budget_mib,
            args.metrics_every,
            |_| {},
        )
        .map_err(|e| format!("{label}: {e}"))?;
        Ok((outcome.done.accesses, outcome.metrics_jsonl))
    };

    // Correctness audit before any timing: streamed == offline, bytes.
    let (accesses_per_session, streamed) = one_session("audit session")?;
    if streamed != reference {
        return Err(format!(
            "streamed metrics diverge from the offline replay ({} vs {} bytes) — \
             the service broke its byte-identity guarantee",
            streamed.len(),
            reference.len()
        ));
    }
    eprintln!(
        "bench_serve: byte-identity audit passed ({} metric bytes)",
        streamed.len()
    );

    // Serial: sessions one at a time.
    let serial_start = Instant::now();
    for iter in 0..args.iters {
        for session in 0..args.sessions {
            one_session(&format!("serial iter {iter} session {session}"))?;
        }
    }
    let serial_wall = serial_start.elapsed().as_secs_f64() / f64::from(args.iters);

    // Concurrent: all sessions in flight at once.
    let concurrent_start = Instant::now();
    for iter in 0..args.iters {
        let outcomes = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.sessions)
                .map(|session| {
                    let one_session = &one_session;
                    scope.spawn(move || {
                        one_session(&format!("concurrent iter {iter} session {session}"))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| "session thread panicked".to_string())?
                })
                .collect::<Result<Vec<_>, String>>()
        })?;
        // Isolation spot-check rides along: every concurrent session
        // must still match the offline bytes exactly.
        for (session, (_, jsonl)) in outcomes.iter().enumerate() {
            if *jsonl != reference {
                return Err(format!(
                    "concurrent session {session} diverged from the offline metrics"
                ));
            }
        }
    }
    let concurrent_wall = concurrent_start.elapsed().as_secs_f64() / f64::from(args.iters);

    SHUTDOWN.store(true, Ordering::SeqCst);
    // Nudge the accept loop awake so it notices the flag promptly.
    std::net::TcpStream::connect(&addr).ok();
    server_thread
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| e.to_string())?;

    let total_accesses = accesses_per_session * args.sessions as u64;
    let pass = |wall: f64| PassRecord {
        jobs: args.jobs,
        wall_seconds: wall,
        accesses_per_second: total_accesses as f64 / wall,
        iters: args.iters,
        warmup: 1, // the audit session warmed every path once
    };
    let record = ServeBenchRecord {
        cores,
        jobs: args.jobs,
        sessions: args.sessions,
        accesses_per_session,
        serial: pass(serial_wall),
        concurrent: pass(concurrent_wall),
        skip_note: (cores < 4).then(|| {
            format!(
                "concurrent-session scaling skipped: {cores} core(s) at measurement time, \
                 a >=4-core box is required for a meaningful speedup claim"
            )
        }),
    };
    let json = serde_json::to_string_pretty(&record).map_err(|e| e.to_string())?;
    std::fs::write(&args.out, json + "\n").map_err(|e| e.to_string())?;
    eprintln!(
        "bench_serve: serial {:.3}s, concurrent {:.3}s ({:.2}x) -> {}",
        record.serial.wall_seconds,
        record.concurrent.wall_seconds,
        record.speedup(),
        args.out.display()
    );
    Ok(())
}

//! The `cnt_serve` binary: bind, resume anything a previous instance
//! left in flight, then serve replay sessions until stopped.
//!
//! ```text
//! cnt_serve --listen 127.0.0.1:7171 --state-dir serve_state \
//!           --global-budget-mib 64 --checkpoint-every 8 \
//!           --checkpoint-keep 2 [--jobs N] [--once N] [--resume-only]
//!           [--trace-dir DIR]
//! ```
//!
//! `--trace-dir DIR` adds the directory's `.ctr` captures to the
//! server's workload registry (as `import/<stem>` ids) so clients can
//! open registry-named sessions (`cnt_client --workload ID`).
//!
//! `--once N` exits after handling `N` connections (CI and tests);
//! `--resume-only` completes pending sessions from a killed instance
//! and exits without listening.

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

use cnt_serve::{Server, ServerConfig};

struct Args {
    listen: String,
    cfg: ServerConfig,
    jobs: Option<usize>,
    once: Option<u64>,
    resume_only: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cnt_serve [--listen ADDR] [--state-dir DIR] [--global-budget-mib N]\n\
         \u{20}                [--checkpoint-every CHUNKS] [--checkpoint-keep K]\n\
         \u{20}                [--jobs N] [--once N] [--resume-only] [--trace-dir DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:7171".to_string(),
        cfg: ServerConfig::default(),
        jobs: None,
        once: None,
        resume_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen"),
            "--state-dir" => args.cfg.state_dir = value("--state-dir").into(),
            "--trace-dir" => args.cfg.trace_dir = Some(value("--trace-dir").into()),
            "--global-budget-mib" => {
                args.cfg.global_budget_mib = parse_num(&value("--global-budget-mib"))
            }
            "--checkpoint-every" => {
                args.cfg.checkpoint_every = Some(parse_num(&value("--checkpoint-every")))
            }
            "--checkpoint-keep" => {
                args.cfg.checkpoint_keep = parse_num(&value("--checkpoint-keep"))
            }
            "--jobs" => args.jobs = Some(parse_num(&value("--jobs"))),
            "--once" => args.once = Some(parse_num(&value("--once"))),
            "--resume-only" => args.resume_only = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    if args.cfg.checkpoint_keep == 0 {
        eprintln!("--checkpoint-keep must be positive");
        usage()
    }
    args
}

fn parse_num<T: std::str::FromStr>(text: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("`{text}` is not a valid number");
        usage()
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(jobs) = args.jobs {
        cnt_bench::pool::set_jobs(jobs);
    }
    let server = match Server::bind(&args.listen, args.cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cnt_serve: bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };

    let resumed = server.resume_pending();
    let failures = resumed.iter().filter(|(_, r)| r.is_err()).count();
    if !resumed.is_empty() {
        eprintln!(
            "cnt_serve: resumed {} pending session(s), {failures} failure(s)",
            resumed.len()
        );
    }
    if args.resume_only {
        return if failures == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    match server.local_addr() {
        Ok(addr) => eprintln!("cnt_serve: listening on {addr}"),
        Err(e) => eprintln!("cnt_serve: listening (local_addr: {e})"),
    }
    static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    match server.run(&SHUTDOWN, args.once) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cnt_serve: listener failure: {e}");
            ExitCode::FAILURE
        }
    }
}

//! The `cnt-serve` wire protocol (see `DESIGN.md` §15 for the spec).
//!
//! A connection opens with a symmetric 16-byte hello exchange (magic,
//! protocol version, feature bits), then carries length-prefixed,
//! CRC-32-protected frames in both directions — the same framing
//! discipline as the `.ctr` chunk grammar, lifted onto the socket:
//!
//! ```text
//! hello := magic[8] version:u16 reserved:u16 features:u32   (16 bytes)
//! frame := kind:u8 flags:u8 reserved:u16
//!          payload_len:u32 crc32:u32 payload                (12-byte header)
//! ```
//!
//! All integers are little-endian; `crc32` covers the payload bytes.
//! Every way a frame can be unacceptable — bad magic, version skew, an
//! unknown kind byte, an oversized length prefix, a CRC mismatch, a
//! payload that does not decode — is a distinct [`ProtoError`] variant,
//! never a panic: both ends treat the peer as untrusted input.
//!
//! Feature bits degrade gracefully: each side advertises what it can do
//! and the session runs on the intersection, so an old client that
//! cannot consume a streamed observability feed still gets its replay
//! (and the final [`Done`] summary) from a newer server.

use std::io::{Read, Write};

use cnt_trace::crc32::crc32;
use serde::{Deserialize, Serialize};

/// The eight magic bytes opening every hello.
pub const MAGIC: [u8; 8] = *b"CNTSERVE";

/// The protocol version this crate speaks.
pub const VERSION: u16 = 1;

/// Feature bit: the peer can stream/consume per-epoch observability
/// frames ([`Kind::Obs`]) while the replay runs.
pub const FEATURE_OBS_STREAM: u32 = 1;

/// Feature bit: the server checkpoints in-flight sessions periodically
/// and resumes them after a crash.
pub const FEATURE_CHECKPOINT: u32 = 2;

/// Size of the hello exchange message in bytes.
pub const HELLO_BYTES: usize = 16;

/// Size of each frame header (before its payload) in bytes.
pub const FRAME_HEADER_BYTES: usize = 12;

/// Hard ceiling on one frame's payload. Larger length prefixes are
/// rejected before any allocation — a corrupt or hostile length field
/// must not be able to balloon server memory.
pub const MAX_FRAME_PAYLOAD: u32 = 16 * 1024 * 1024;

/// One side's hello: who it is and what it can do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the sender speaks.
    pub version: u16,
    /// Feature bits the sender supports (`FEATURE_*`).
    pub features: u32,
}

impl Hello {
    /// The hello this build sends, with the given feature bits.
    #[must_use]
    pub fn ours(features: u32) -> Self {
        Hello {
            version: VERSION,
            features,
        }
    }

    /// Renders the 16-byte hello.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; HELLO_BYTES] {
        let mut out = [0u8; HELLO_BYTES];
        out[..8].copy_from_slice(&MAGIC);
        out[8..10].copy_from_slice(&self.version.to_le_bytes());
        // bytes 10..12 reserved, zero.
        out[12..16].copy_from_slice(&self.features.to_le_bytes());
        out
    }

    /// Parses and validates a 16-byte hello.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadMagic`] when the peer is not speaking this
    /// protocol at all; [`ProtoError::UnsupportedVersion`] on version
    /// skew (the caller may still read `features` off the wire bytes to
    /// report what the peer wanted).
    pub fn from_bytes(bytes: &[u8; HELLO_BYTES]) -> Result<Self, ProtoError> {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        if found != MAGIC {
            return Err(ProtoError::BadMagic { found });
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != VERSION {
            return Err(ProtoError::UnsupportedVersion { version });
        }
        Ok(Hello {
            version,
            features: u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]),
        })
    }
}

/// Frame kinds. Client-originated kinds live below `0x80`,
/// server-originated kinds at `0x80` and above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// Client → server: open a replay session. Payload: [`OpenSession`]
    /// as JSON.
    OpenSession = 0x01,
    /// Client → server: the 16-byte `.ctr` file header of the trace
    /// about to be streamed.
    TraceHeader = 0x02,
    /// Client → server: one `.ctr` chunk, verbatim — the 12-byte chunk
    /// frame followed by its payload.
    Chunk = 0x03,
    /// Client → server: the trace is complete; replay it.
    Finish = 0x04,
    /// Client → server: abandon the session (any phase). The server
    /// tears the session down completely and frees its budget.
    Cancel = 0x05,
    /// Client → server: report session status. Payload empty.
    Status = 0x06,
    /// Server → client: session admitted. Payload: [`Accepted`] JSON.
    Accepted = 0x81,
    /// Server → client: session is waiting for replay budget. Payload:
    /// [`Queued`] JSON. Followed by [`Kind::Accepted`] (or an error)
    /// once budget frees up.
    Queued = 0x82,
    /// Server → client: one observability snapshot, as the exact JSONL
    /// line (trailing newline included) the offline replay would have
    /// written.
    Obs = 0x83,
    /// Server → client: the replay finished. Payload: [`Done`] JSON.
    Done = 0x84,
    /// Server → client: something went wrong. Payload: [`ErrorMsg`]
    /// JSON; `fatal` means the connection closes after this frame.
    Error = 0x85,
    /// Server → client: status report. Payload: [`StatusReport`] JSON.
    StatusReport = 0x86,
}

impl Kind {
    /// Decodes a kind byte.
    ///
    /// # Errors
    ///
    /// [`ProtoError::UnknownKind`] for anything this build does not
    /// recognise.
    pub fn from_u8(byte: u8) -> Result<Self, ProtoError> {
        Ok(match byte {
            0x01 => Kind::OpenSession,
            0x02 => Kind::TraceHeader,
            0x03 => Kind::Chunk,
            0x04 => Kind::Finish,
            0x05 => Kind::Cancel,
            0x06 => Kind::Status,
            0x81 => Kind::Accepted,
            0x82 => Kind::Queued,
            0x83 => Kind::Obs,
            0x84 => Kind::Done,
            0x85 => Kind::Error,
            0x86 => Kind::StatusReport,
            other => return Err(ProtoError::UnknownKind { byte: other }),
        })
    }
}

/// Everything that can go wrong on the wire. Every variant is a typed,
/// reportable condition — malformed input from the peer must never
/// panic or wedge the process.
#[derive(Debug)]
pub enum ProtoError {
    /// Socket/transport failure (including read timeouts — see
    /// [`ProtoError::is_timeout`]).
    Io(std::io::Error),
    /// The peer's hello did not open with the protocol magic.
    BadMagic {
        /// The eight bytes found instead.
        found: [u8; 8],
    },
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion {
        /// The version the peer announced.
        version: u16,
    },
    /// A frame header carried a kind byte this build does not know.
    UnknownKind {
        /// The offending byte.
        byte: u8,
    },
    /// A frame announced a payload larger than [`MAX_FRAME_PAYLOAD`].
    Oversized {
        /// The announced payload length.
        len: u32,
    },
    /// A frame payload failed its CRC-32 check.
    Crc {
        /// CRC announced by the frame header.
        expected: u32,
        /// CRC computed over the received payload.
        found: u32,
    },
    /// A frame payload did not decode as the kind's message type.
    BadPayload {
        /// The frame kind being decoded.
        kind: &'static str,
        /// What was wrong.
        what: String,
    },
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// A frame arrived that the protocol state machine does not allow
    /// here (e.g. a chunk before the session was opened).
    Unexpected {
        /// What the receiver was prepared to handle.
        expected: &'static str,
        /// The kind that arrived.
        found: Kind,
    },
}

impl ProtoError {
    /// `true` when this is a read timeout — the pump-loop "nothing
    /// arrived yet, try again" case, as opposed to a real failure.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ProtoError::Io(e) if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
        )
    }

    /// Short stable identifier for [`ErrorMsg::code`].
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::Io(_) => "io",
            ProtoError::BadMagic { .. } => "bad-magic",
            ProtoError::UnsupportedVersion { .. } => "version-skew",
            ProtoError::UnknownKind { .. } => "unknown-kind",
            ProtoError::Oversized { .. } => "oversized-frame",
            ProtoError::Crc { .. } => "crc-mismatch",
            ProtoError::BadPayload { .. } => "bad-payload",
            ProtoError::Closed => "closed",
            ProtoError::Unexpected { .. } => "unexpected-frame",
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport failure: {e}"),
            ProtoError::BadMagic { found } => {
                write!(f, "bad protocol magic {found:02X?}")
            }
            ProtoError::UnsupportedVersion { version } => {
                write!(
                    f,
                    "unsupported protocol version {version} (this build speaks {VERSION})"
                )
            }
            ProtoError::UnknownKind { byte } => write!(f, "unknown frame kind 0x{byte:02X}"),
            ProtoError::Oversized { len } => write!(
                f,
                "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte ceiling"
            ),
            ProtoError::Crc { expected, found } => write!(
                f,
                "frame CRC mismatch: header says {expected:#010X}, payload hashes to {found:#010X}"
            ),
            ProtoError::BadPayload { kind, what } => {
                write!(f, "{kind} payload does not decode: {what}")
            }
            ProtoError::Closed => write!(f, "peer closed the connection"),
            ProtoError::Unexpected { expected, found } => {
                write!(f, "unexpected {found:?} frame (expected {expected})")
            }
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Writes one side's hello.
///
/// # Errors
///
/// [`ProtoError::Io`] on transport failure.
pub fn write_hello<W: Write>(w: &mut W, hello: &Hello) -> Result<(), ProtoError> {
    w.write_all(&hello.to_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads and validates the peer's hello.
///
/// # Errors
///
/// [`ProtoError::Closed`] if the peer hung up before sending one;
/// otherwise as [`Hello::from_bytes`].
pub fn read_hello<R: Read>(r: &mut R) -> Result<Hello, ProtoError> {
    let mut bytes = [0u8; HELLO_BYTES];
    read_exact_or_closed(r, &mut bytes)?;
    Hello::from_bytes(&bytes)
}

/// Writes one frame: header (with CRC over `payload`) then payload.
///
/// # Errors
///
/// [`ProtoError::Oversized`] if `payload` exceeds
/// [`MAX_FRAME_PAYLOAD`]; otherwise [`ProtoError::Io`].
pub fn write_frame<W: Write>(w: &mut W, kind: Kind, payload: &[u8]) -> Result<(), ProtoError> {
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    if len > MAX_FRAME_PAYLOAD {
        return Err(ProtoError::Oversized { len });
    }
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[0] = kind as u8;
    // header[1] flags and header[2..4] reserved stay zero.
    header[4..8].copy_from_slice(&len.to_le_bytes());
    header[8..12].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one complete frame: header, payload, CRC check.
///
/// # Errors
///
/// [`ProtoError::Closed`] on a clean hang-up at a frame boundary;
/// [`ProtoError::Io`] mid-frame (a timeout mid-header surfaces here —
/// check [`ProtoError::is_timeout`]); [`ProtoError::UnknownKind`],
/// [`ProtoError::Oversized`], or [`ProtoError::Crc`] for frames that
/// are structurally unacceptable.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(Kind, Vec<u8>), ProtoError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    read_exact_or_closed(r, &mut header)?;
    let kind = Kind::from_u8(header[0])?;
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let expected = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_FRAME_PAYLOAD {
        return Err(ProtoError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let found = crc32(&payload);
    if found != expected {
        return Err(ProtoError::Crc { expected, found });
    }
    Ok((kind, payload))
}

/// Like `read_exact`, but distinguishes "peer closed before the first
/// byte" ([`ProtoError::Closed`]) from a mid-message truncation.
fn read_exact_or_closed<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Err(ProtoError::Closed),
            Ok(0) => {
                return Err(ProtoError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-message",
                )))
            }
            Ok(n) => filled += n,
            // A timeout with bytes already consumed must not retry from
            // the top — surface it and let the caller treat it as fatal
            // (only a timeout before the first byte is a clean "nothing
            // arrived yet").
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(())
}

/// Serialises a typed message as a frame payload.
///
/// # Errors
///
/// [`ProtoError::BadPayload`] if the value fails to serialise.
pub fn encode_msg<T: Serialize>(kind: &'static str, value: &T) -> Result<Vec<u8>, ProtoError> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        .map_err(|e| ProtoError::BadPayload {
            kind,
            what: e.to_string(),
        })
}

/// Decodes a frame payload as a typed message.
///
/// # Errors
///
/// [`ProtoError::BadPayload`] when the bytes are not UTF-8 JSON of the
/// expected shape.
pub fn decode_msg<T: Deserialize>(kind: &'static str, payload: &[u8]) -> Result<T, ProtoError> {
    let text = std::str::from_utf8(payload).map_err(|e| ProtoError::BadPayload {
        kind,
        what: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| ProtoError::BadPayload {
        kind,
        what: e.to_string(),
    })
}

/// Client → server: the session the client wants to run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenSession {
    /// The streaming-reader byte budget the replay runs under, in MiB.
    /// This is also the admission-control unit: the server grants the
    /// session a lease of this many bytes from its global budget (or
    /// queues/rejects the request).
    pub budget_mib: usize,
    /// Metrics epoch length in accesses; `0` runs the replay
    /// unobserved (no obs frames, no metrics file).
    pub metrics_every: u64,
    /// Total `.ctr` bytes the client is about to stream (header
    /// included). The server enforces this as a hard ceiling on the
    /// spool.
    pub trace_bytes: u64,
    /// Registry workload id (`synth/<kernel>` or `import/<stem>`) to
    /// replay instead of a client-streamed trace. When set, the server
    /// materializes the trace itself from its workload registry and
    /// `trace_bytes` must be `0` (there is nothing to spool). Absent
    /// (`None`) in requests from older clients, which always stream.
    #[serde(default)]
    pub workload: Option<String>,
}

/// Server → client: the session is admitted and may stream its trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accepted {
    /// The server-assigned session id (`s0000`, `s0001`, …).
    pub session: String,
}

/// Server → client: the session is admissible but must wait for
/// budget currently leased to other sessions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Queued {
    /// Bytes of global budget currently available (informational).
    pub available_bytes: u64,
}

/// Server → client: the replay completed. Mirrors the offline
/// `tracegen stream-replay` summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Done {
    /// The session this concludes.
    pub session: String,
    /// Accesses replayed (one pass; both passes replay the same
    /// stream).
    pub accesses: u64,
    /// Baseline (no encoding) total energy, femtojoules.
    pub baseline_fj: f64,
    /// Adaptive CNT total energy, femtojoules.
    pub cnt_fj: f64,
    /// Observability snapshots streamed/recorded for this session.
    pub snapshots: u64,
}

/// Server → client: a typed failure report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorMsg {
    /// Stable machine-readable code (see [`ProtoError::code`] plus
    /// server codes like `admission`, `cancelled`, `replay`).
    pub code: String,
    /// Whether the server closes the connection after this frame.
    pub fatal: bool,
    /// Human-readable description.
    pub message: String,
}

/// Server → client: answer to a [`Kind::Status`] request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusReport {
    /// The session being reported (empty before admission).
    pub session: String,
    /// Phase: `spooling`, `replaying`, or `done`.
    pub phase: String,
    /// Chunks spooled so far (spool phase) or obs epochs streamed so
    /// far (replay phase).
    pub progress: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips_and_rejects_skew() {
        let hello = Hello::ours(FEATURE_OBS_STREAM | FEATURE_CHECKPOINT);
        let back = Hello::from_bytes(&hello.to_bytes()).expect("valid");
        assert_eq!(back, hello);

        let mut bad = hello.to_bytes();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Hello::from_bytes(&bad),
            Err(ProtoError::BadMagic { .. })
        ));

        let mut skewed = hello.to_bytes();
        skewed[8] = 0x2A;
        skewed[9] = 0;
        assert!(matches!(
            Hello::from_bytes(&skewed),
            Err(ProtoError::UnsupportedVersion { version: 0x2A })
        ));
    }

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Kind::Chunk, b"payload bytes").expect("writes");
        write_frame(&mut wire, Kind::Finish, b"").expect("writes");
        let mut r = wire.as_slice();
        let (kind, payload) = read_frame(&mut r).expect("reads");
        assert_eq!(kind, Kind::Chunk);
        assert_eq!(payload, b"payload bytes");
        let (kind, payload) = read_frame(&mut r).expect("reads");
        assert_eq!(kind, Kind::Finish);
        assert!(payload.is_empty());
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Closed)));
    }

    #[test]
    fn corrupt_frames_yield_typed_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Kind::Obs, b"{\"x\":1}\n").expect("writes");

        // Flip a payload byte: CRC mismatch.
        let mut crc_bad = wire.clone();
        *crc_bad.last_mut().expect("non-empty") ^= 0x01;
        assert!(matches!(
            read_frame(&mut crc_bad.as_slice()),
            Err(ProtoError::Crc { .. })
        ));

        // Unknown kind byte.
        let mut kind_bad = wire.clone();
        kind_bad[0] = 0x7E;
        assert!(matches!(
            read_frame(&mut kind_bad.as_slice()),
            Err(ProtoError::UnknownKind { byte: 0x7E })
        ));

        // Oversized length prefix: rejected before allocation.
        let mut oversized = wire.clone();
        oversized[4..8].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut oversized.as_slice()),
            Err(ProtoError::Oversized { .. })
        ));

        // Truncated mid-payload: an I/O error, not a hang or panic.
        let truncated = &wire[..wire.len() - 3];
        assert!(matches!(
            read_frame(&mut &truncated[..]),
            Err(ProtoError::Io(_))
        ));
    }

    #[test]
    fn typed_messages_round_trip() {
        let open = OpenSession {
            budget_mib: 8,
            metrics_every: 5000,
            trace_bytes: 123_456,
            workload: None,
        };
        let bytes = encode_msg("OpenSession", &open).expect("encodes");
        let back: OpenSession = decode_msg("OpenSession", &bytes).expect("decodes");
        assert_eq!(back, open);

        let garbage = decode_msg::<OpenSession>("OpenSession", b"not json");
        assert!(matches!(garbage, Err(ProtoError::BadPayload { .. })));
    }
}

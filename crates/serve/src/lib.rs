//! `cnt-serve`: a multi-tenant trace-replay service.
//!
//! Turns the offline `tracegen stream-replay` pipeline into a
//! long-running server: clients stream `.ctr` traces over a small
//! framed TCP protocol ([`proto`]), the server replays each through the
//! shared two-pass driver under a leased slice of a global byte budget
//! ([`budget`]), and per-epoch observability snapshots stream back to
//! the client live. Sessions are isolated (own directory, own
//! thread-local metrics sink, own checkpoint family) and crash-safe
//! (periodic `.ctrs` checkpoints; a restarted server resumes every
//! in-flight session byte-identically).
//!
//! Built entirely on `std` networking — no external dependencies.
//!
//! * [`proto`] — wire protocol: hello exchange, CRC-framed messages.
//! * [`budget`] — the global admission-control ledger.
//! * [`server`] — the accept loop, session lifecycle, crash resume.
//! * [`client`] — the client state machine and one-call replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod client;
pub mod proto;
pub mod server;

pub use budget::{Admission, BudgetLease, BudgetLedger};
pub use client::{replay_file, replay_workload, Client, ClientError, Event, ReplayOutcome};
pub use proto::{Hello, Kind, ProtoError};
pub use server::{Server, ServerConfig};

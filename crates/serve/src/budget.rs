//! The global replay-budget ledger — admission control for sessions.
//!
//! Every session replays under a bounded [`cnt_trace::ReadOptions`]
//! byte budget; the server's ledger is the sum it is willing to have
//! outstanding at once. A session acquires a [`BudgetLease`] for its
//! requested budget before it may stream a single trace byte:
//!
//! * a request larger than the whole ledger is **rejected** outright —
//!   it could never run;
//! * a request that fits the ledger but not the current remainder is
//!   **queued**: the caller blocks on the ledger's condvar until enough
//!   leases are released;
//! * otherwise the lease is granted immediately.
//!
//! Leases are RAII: dropping one (session done, cancelled, client
//! vanished, handler panicked) returns the bytes and wakes every
//! queued waiter. The server can therefore never over-commit replay
//! memory — the OOM-free guarantee reduces to this ledger plus the
//! streaming reader's own budget enforcement.

use std::sync::{Arc, Condvar, Mutex};

/// The shared ledger. Cheap to clone via [`Arc`].
#[derive(Debug)]
pub struct BudgetLedger {
    total: u64,
    state: Mutex<u64>,
    freed: Condvar,
}

/// Why a lease could not be granted immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request can never fit the ledger, even completely idle.
    TooLarge {
        /// The ledger's total capacity in bytes.
        total: u64,
    },
    /// The request fits the ledger but not its current remainder; the
    /// caller may wait.
    MustQueue {
        /// Bytes currently unleased.
        available: u64,
    },
}

impl BudgetLedger {
    /// A ledger holding `total` bytes of replay budget.
    #[must_use]
    pub fn new(total: u64) -> Arc<Self> {
        Arc::new(BudgetLedger {
            total,
            state: Mutex::new(total),
            freed: Condvar::new(),
        })
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes currently unleased. Advisory — another session may lease
    /// them between this read and your acquire.
    #[must_use]
    pub fn available(&self) -> u64 {
        *self.state.lock().expect("ledger lock")
    }

    /// Tries to lease `bytes` without blocking.
    ///
    /// # Errors
    ///
    /// [`Admission::TooLarge`] or [`Admission::MustQueue`]; the ledger
    /// is unchanged either way.
    pub fn try_acquire(self: &Arc<Self>, bytes: u64) -> Result<BudgetLease, Admission> {
        if bytes > self.total {
            return Err(Admission::TooLarge { total: self.total });
        }
        let mut available = self.state.lock().expect("ledger lock");
        if bytes > *available {
            return Err(Admission::MustQueue {
                available: *available,
            });
        }
        *available -= bytes;
        Ok(BudgetLease {
            ledger: Arc::clone(self),
            bytes,
        })
    }

    /// Leases `bytes`, blocking until enough budget frees up.
    ///
    /// # Errors
    ///
    /// [`Admission::TooLarge`] if the request could never fit — this
    /// never blocks forever on an impossible request.
    pub fn acquire(self: &Arc<Self>, bytes: u64) -> Result<BudgetLease, Admission> {
        if bytes > self.total {
            return Err(Admission::TooLarge { total: self.total });
        }
        let mut available = self.state.lock().expect("ledger lock");
        while bytes > *available {
            available = self.freed.wait(available).expect("ledger lock");
        }
        *available -= bytes;
        Ok(BudgetLease {
            ledger: Arc::clone(self),
            bytes,
        })
    }
}

/// A granted slice of the global budget; returning it is automatic.
#[derive(Debug)]
pub struct BudgetLease {
    ledger: Arc<BudgetLedger>,
    bytes: u64,
}

impl BudgetLease {
    /// How many bytes this lease holds.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        let mut available = self.ledger.state.lock().expect("ledger lock");
        *available += self.bytes;
        self.ledger.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_granted_queued_rejected_and_returned() {
        let ledger = BudgetLedger::new(100);
        assert!(matches!(
            ledger.try_acquire(101),
            Err(Admission::TooLarge { total: 100 })
        ));
        let a = ledger.try_acquire(60).expect("fits");
        assert_eq!(ledger.available(), 40);
        assert!(matches!(
            ledger.try_acquire(50),
            Err(Admission::MustQueue { available: 40 })
        ));
        drop(a);
        assert_eq!(ledger.available(), 100);
        let _b = ledger.try_acquire(50).expect("fits after release");
    }

    #[test]
    fn blocked_acquire_wakes_on_release() {
        let ledger = BudgetLedger::new(10);
        let held = ledger.try_acquire(10).expect("fits");
        let waiter = {
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || {
                let lease = ledger.acquire(5).expect("eventually granted");
                lease.bytes()
            })
        };
        // Give the waiter time to block, then release.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(held);
        assert_eq!(waiter.join().expect("no panic"), 5);
        assert!(matches!(
            ledger.acquire(11),
            Err(Admission::TooLarge { total: 10 })
        ));
    }
}

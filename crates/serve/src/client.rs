//! Client side of the replay service: connect, open a session, stream
//! a `.ctr` trace, and consume the replies.
//!
//! [`Client`] is a thin, explicit state machine over one TCP
//! connection; [`replay_file`] is the one-call convenience wrapper the
//! `cnt_client` binary (and the end-to-end tests) build on.

use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

use cnt_trace::{Header, FRAME_BYTES, HEADER_BYTES};

use crate::proto::{
    self, read_frame, read_hello, write_frame, write_hello, Hello, Kind, ProtoError,
    FEATURE_CHECKPOINT, FEATURE_OBS_STREAM,
};

/// Everything that can go wrong on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// A wire-protocol failure (transport, framing, decoding).
    Proto(ProtoError),
    /// The server refused or aborted the session with a typed error.
    Rejected(proto::ErrorMsg),
    /// The local trace file is unreadable or structurally invalid.
    Trace(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol failure: {e}"),
            ClientError::Rejected(e) => {
                write!(f, "server rejected the session ({}): {}", e.code, e.message)
            }
            ClientError::Trace(what) => write!(f, "trace file: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// An event the server pushed at us after the trace was finished.
#[derive(Debug)]
pub enum Event {
    /// One observability JSONL line (trailing newline included),
    /// byte-identical to what the offline replay would have written.
    Obs(String),
    /// The replay completed; this is the final event.
    Done(proto::Done),
    /// A status report (answer to [`Client::status`]).
    Status(proto::StatusReport),
    /// A non-fatal error report; the session continues.
    Warning(proto::ErrorMsg),
}

/// One client connection, hello through teardown.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Feature bits both sides support.
    features: u32,
}

impl Client {
    /// Connects and performs the hello exchange.
    ///
    /// # Errors
    ///
    /// Transport failures, bad magic, or version skew.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr).map_err(ProtoError::Io)?;
        stream.set_nodelay(true).ok();
        let ours = Hello::ours(FEATURE_OBS_STREAM | FEATURE_CHECKPOINT);
        write_hello(&mut stream, &ours)?;
        let theirs = read_hello(&mut stream)?;
        Ok(Client {
            stream,
            features: ours.features & theirs.features,
        })
    }

    /// Feature bits negotiated with the server.
    #[must_use]
    pub fn features(&self) -> u32 {
        self.features
    }

    /// `true` when the server will stream per-epoch obs frames.
    #[must_use]
    pub fn obs_streaming(&self) -> bool {
        self.features & FEATURE_OBS_STREAM != 0
    }

    /// Sets the socket read timeout (e.g. while waiting in the
    /// admission queue). `None` blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Socket configuration failure.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ClientError::Proto(ProtoError::Io(e)))
    }

    /// Opens a session, blocking in the admission queue if the server
    /// answers [`proto::Queued`]. `on_queued` fires (at most once) with
    /// the bytes currently available when the session queues.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] when the server refuses admission;
    /// protocol failures otherwise.
    pub fn open(
        &mut self,
        open: &proto::OpenSession,
        mut on_queued: impl FnMut(u64),
    ) -> Result<proto::Accepted, ClientError> {
        let payload = proto::encode_msg("OpenSession", open)?;
        write_frame(&mut self.stream, Kind::OpenSession, &payload)?;
        loop {
            match read_frame(&mut self.stream)? {
                (Kind::Accepted, payload) => return Ok(proto::decode_msg("Accepted", &payload)?),
                (Kind::Queued, payload) => {
                    let queued: proto::Queued = proto::decode_msg("Queued", &payload)?;
                    on_queued(queued.available_bytes);
                }
                (Kind::Error, payload) => {
                    let e: proto::ErrorMsg = proto::decode_msg("ErrorMsg", &payload)?;
                    return Err(ClientError::Rejected(e));
                }
                (kind, _) => {
                    return Err(ClientError::Proto(ProtoError::Unexpected {
                        expected: "Accepted, Queued, or Error",
                        found: kind,
                    }))
                }
            }
        }
    }

    /// Streams a `.ctr` file: one [`Kind::TraceHeader`] frame, then one
    /// [`Kind::Chunk`] frame per chunk. Returns the chunk count.
    ///
    /// # Errors
    ///
    /// [`ClientError::Trace`] if the file is unreadable or not a
    /// well-formed `.ctr`; protocol failures otherwise.
    pub fn send_trace_file(&mut self, path: &Path) -> Result<u64, ClientError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ClientError::Trace(format!("`{}`: {e}", path.display())))?;
        let (header, chunks) = split_trace(&bytes)
            .map_err(|what| ClientError::Trace(format!("`{}`: {what}", path.display())))?;
        write_frame(&mut self.stream, Kind::TraceHeader, header)?;
        let mut sent = 0;
        for chunk in chunks {
            write_frame(&mut self.stream, Kind::Chunk, chunk)?;
            sent += 1;
        }
        Ok(sent)
    }

    /// Declares the trace complete; the server starts the replay.
    ///
    /// # Errors
    ///
    /// Transport failure.
    pub fn finish(&mut self) -> Result<(), ClientError> {
        Ok(write_frame(&mut self.stream, Kind::Finish, b"")?)
    }

    /// Abandons the session from any phase.
    ///
    /// # Errors
    ///
    /// Transport failure.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        Ok(write_frame(&mut self.stream, Kind::Cancel, b"")?)
    }

    /// Asks the server for a status report; the answer arrives as an
    /// [`Event::Status`] through [`Client::recv_event`].
    ///
    /// # Errors
    ///
    /// Transport failure.
    pub fn status(&mut self) -> Result<(), ClientError> {
        Ok(write_frame(&mut self.stream, Kind::Status, b"")?)
    }

    /// Receives the next server event during/after the replay.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] carries a fatal server error; protocol
    /// failures (including [`ProtoError::Closed`]) otherwise.
    pub fn recv_event(&mut self) -> Result<Event, ClientError> {
        loop {
            match read_frame(&mut self.stream)? {
                (Kind::Obs, payload) => {
                    let line = String::from_utf8(payload).map_err(|e| {
                        ClientError::Proto(ProtoError::BadPayload {
                            kind: "Obs",
                            what: format!("not UTF-8: {e}"),
                        })
                    })?;
                    return Ok(Event::Obs(line));
                }
                (Kind::Done, payload) => {
                    return Ok(Event::Done(proto::decode_msg("Done", &payload)?))
                }
                (Kind::StatusReport, payload) => {
                    return Ok(Event::Status(proto::decode_msg("StatusReport", &payload)?))
                }
                (Kind::Error, payload) => {
                    let e: proto::ErrorMsg = proto::decode_msg("ErrorMsg", &payload)?;
                    if e.fatal {
                        return Err(ClientError::Rejected(e));
                    }
                    return Ok(Event::Warning(e));
                }
                (Kind::Queued, payload) => {
                    let _: proto::Queued = proto::decode_msg("Queued", &payload)?;
                }
                (kind, _) => {
                    return Err(ClientError::Proto(ProtoError::Unexpected {
                        expected: "Obs, Done, StatusReport, or Error",
                        found: kind,
                    }))
                }
            }
        }
    }
}

/// The outcome of a full [`replay_file`] round trip.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The server's final summary.
    pub done: proto::Done,
    /// Every streamed obs line, concatenated — byte-identical to the
    /// offline replay's metrics JSONL (empty when `metrics_every` was
    /// `0` or the server does not stream obs).
    pub metrics_jsonl: String,
}

/// Connects, opens a session, streams `path`, and collects the replay:
/// the one-call client. `on_event` observes every event as it arrives
/// (obs lines are also accumulated into the returned outcome).
///
/// # Errors
///
/// As the underlying [`Client`] calls.
pub fn replay_file(
    addr: &str,
    path: &Path,
    budget_mib: usize,
    metrics_every: u64,
    mut on_event: impl FnMut(&Event),
) -> Result<ReplayOutcome, ClientError> {
    let trace_bytes = std::fs::metadata(path)
        .map_err(|e| ClientError::Trace(format!("`{}`: {e}", path.display())))?
        .len();
    let mut client = Client::connect(addr)?;
    client.open(
        &proto::OpenSession {
            budget_mib,
            metrics_every,
            trace_bytes,
            workload: None,
        },
        |available| eprintln!("client: queued for budget ({available} bytes available)"),
    )?;
    client.send_trace_file(path)?;
    client.finish()?;
    collect_replay(&mut client, &mut on_event)
}

/// Connects and opens a registry-named session: the server materializes
/// the workload itself, so nothing is streamed — the client goes
/// straight to consuming events. `workload` is a registry id like
/// `synth/matmul` or `import/mcf_like`.
///
/// # Errors
///
/// As the underlying [`Client`] calls; [`ClientError::Rejected`] with
/// code `workload` when the server does not know the id.
pub fn replay_workload(
    addr: &str,
    workload: &str,
    budget_mib: usize,
    metrics_every: u64,
    mut on_event: impl FnMut(&Event),
) -> Result<ReplayOutcome, ClientError> {
    let mut client = Client::connect(addr)?;
    client.open(
        &proto::OpenSession {
            budget_mib,
            metrics_every,
            trace_bytes: 0,
            workload: Some(workload.to_string()),
        },
        |available| eprintln!("client: queued for budget ({available} bytes available)"),
    )?;
    collect_replay(&mut client, &mut on_event)
}

/// Drains events until [`Event::Done`], accumulating obs lines.
fn collect_replay(
    client: &mut Client,
    on_event: &mut impl FnMut(&Event),
) -> Result<ReplayOutcome, ClientError> {
    let mut metrics_jsonl = String::new();
    loop {
        let event = client.recv_event()?;
        on_event(&event);
        match event {
            Event::Obs(line) => metrics_jsonl.push_str(&line),
            Event::Done(done) => {
                return Ok(ReplayOutcome {
                    done,
                    metrics_jsonl,
                })
            }
            Event::Status(_) | Event::Warning(_) => {}
        }
    }
}

/// Splits raw `.ctr` bytes into the 16-byte header and one slice per
/// chunk (chunk frame + payload, verbatim).
fn split_trace(bytes: &[u8]) -> Result<(&[u8], Vec<&[u8]>), String> {
    if bytes.len() < HEADER_BYTES {
        return Err("shorter than a .ctr header".to_string());
    }
    let header = &bytes[..HEADER_BYTES];
    let sized: &[u8; HEADER_BYTES] = header.try_into().expect("sized above");
    Header::from_bytes(sized).map_err(|e| e.to_string())?;
    let mut chunks = Vec::new();
    let mut at = HEADER_BYTES;
    while at < bytes.len() {
        if bytes.len() - at < FRAME_BYTES {
            return Err(format!(
                "trailing {} bytes are not a chunk frame",
                bytes.len() - at
            ));
        }
        let frame_bytes: &[u8; FRAME_BYTES] =
            bytes[at..at + FRAME_BYTES].try_into().expect("sized above");
        let frame = cnt_trace::format::Frame::from_bytes(frame_bytes);
        let end = at + FRAME_BYTES + frame.payload_len as usize;
        if end > bytes.len() {
            return Err(format!(
                "chunk at byte {at} announces {} payload bytes but the file ends first",
                frame.payload_len
            ));
        }
        chunks.push(&bytes[at..end]);
        at = end;
    }
    Ok((header, chunks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_trace_walks_chunks_and_rejects_damage() {
        let spec = cnt_workloads::synthetic::SyntheticSpec {
            accesses: 64,
            footprint_lines: 8,
            ..Default::default()
        };
        let mut bytes = Vec::new();
        let summary = cnt_trace::pack_accesses(spec.stream(), &mut bytes, 16).expect("packs");
        let (header, chunks) = split_trace(&bytes).expect("splits");
        assert_eq!(header.len(), HEADER_BYTES);
        assert_eq!(chunks.len() as u64, summary.chunks);
        let rejoined: usize = HEADER_BYTES + chunks.iter().map(|c| c.len()).sum::<usize>();
        assert_eq!(rejoined, bytes.len(), "chunks tile the file exactly");

        assert!(split_trace(&bytes[..HEADER_BYTES - 2]).is_err());
        assert!(split_trace(&bytes[..bytes.len() - 1]).is_err());
    }
}

//! The multi-tenant trace-replay server.
//!
//! One listening socket, one connection-handler thread per client, one
//! **session thread** per admitted replay. The split matters for
//! determinism: `cnt-obs` replay ids and session sinks are thread-local
//! (see `cnt_obs::local`), so running each session's two-pass replay on
//! a fresh thread gives it the exact same id sequence (`r0000`,
//! `r0001`) and metrics stream as an offline `tracegen stream-replay`
//! of the same trace — byte-identical, which is the audit bar this
//! server is built around.
//!
//! A session moves through three phases:
//!
//! 1. **Admission** — the client's [`proto::OpenSession`] asks for a
//!    replay byte budget; the [`BudgetLedger`] grants, queues, or
//!    rejects it (never over-committing memory).
//! 2. **Spool** — `.ctr` chunks arrive as CRC-checked frames and are
//!    appended verbatim to `<state>/<sid>/trace.ctr`; `trace.ok` marks
//!    a complete spool.
//! 3. **Replay** — the session thread drives the shared
//!    [`cnt_bench::driver::run_two_pass`] with a thread-local metrics
//!    sink; every epoch snapshot streams back to the client as an
//!    [`proto::Kind::Obs`] frame (bounded channel — a slow client
//!    back-pressures the replay, it cannot balloon server memory),
//!    while the connection thread polls the socket for `Cancel`.
//!    Periodic checkpoints go to a rotated `.ctrs` family in the
//!    session directory, so a killed server resumes every in-flight
//!    session on restart ([`Server::resume_pending`]).
//!
//! On completion the session directory holds `metrics.jsonl` (the
//! session's own stream) plus a `done` marker, and the session's
//! snapshots are appended — experiment ids prefixed `sNNNN/` — to the
//! shared `serve_metrics.jsonl` multiplex log.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cnt_bench::ckpt;
use cnt_bench::driver::{
    restore_resume_obs, run_two_pass, CheckpointPlan, CheckpointStore, ResumeState, SessionPlan,
    TwoPassOutcome,
};
use cnt_bench::stream::CancelToken;
use cnt_trace::crc32::crc32;
use cnt_trace::{
    rotate, CheckpointError, CheckpointFile, CheckpointRotator, CorruptionPolicy, Header,
    ReadOptions, FRAME_BYTES, HEADER_BYTES,
};
use serde::{Deserialize, Serialize};

use crate::budget::{Admission, BudgetLease, BudgetLedger};
use crate::proto::{
    self, read_frame, read_hello, write_frame, write_hello, Hello, Kind, ProtoError,
    FEATURE_CHECKPOINT, FEATURE_OBS_STREAM,
};

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where session state (traces, checkpoints, metrics) lives.
    pub state_dir: PathBuf,
    /// Total replay byte budget leasable across concurrent sessions,
    /// in MiB.
    pub global_budget_mib: usize,
    /// Checkpoint in-flight replays every this many chunks (`None`
    /// disables checkpointing — and crash resume with it).
    pub checkpoint_every: Option<u64>,
    /// Checkpoint generations kept per session (rotation + GC).
    pub checkpoint_keep: usize,
    /// Read/write timeout while handshaking and spooling: a stalled or
    /// vanished client cannot pin a session (or its budget lease)
    /// forever.
    pub spool_timeout: Duration,
    /// Socket poll interval during replay — the cadence at which
    /// streamed obs frames drain and `Cancel` is noticed.
    pub pump_interval: Duration,
    /// Directory of imported `.ctr` captures added to the server's
    /// workload registry (as `import/<stem>` ids) for registry-named
    /// sessions. `None` serves only the built-in `synth/*` kernels.
    pub trace_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            state_dir: PathBuf::from("serve_state"),
            global_budget_mib: 64,
            checkpoint_every: None,
            checkpoint_keep: 2,
            spool_timeout: Duration::from_secs(10),
            pump_interval: Duration::from_millis(25),
            trace_dir: None,
        }
    }
}

/// Per-session metadata persisted next to the spooled trace, so a
/// restarted server can resume the session without its client.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SessionMeta {
    session: String,
    budget_mib: usize,
    metrics_every: u64,
    trace_bytes: u64,
    /// Registry workload id the server materialized the trace from,
    /// `None` for client-streamed sessions (and in meta files written
    /// before the field existed).
    #[serde(default)]
    workload: Option<String>,
}

/// Shared across the accept loop and every handler thread.
struct Shared {
    cfg: ServerConfig,
    ledger: Arc<BudgetLedger>,
    next_session: Mutex<u64>,
    /// Serialises appends to the `serve_metrics.jsonl` multiplex log.
    mux: Mutex<()>,
}

/// A bound replay server. Drive it with [`Server::run`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// How a session ended, for the handler's bookkeeping.
enum SessionEnd {
    /// Replay completed; summary for the `Done` frame.
    Done(proto::Done),
    /// Cancelled through the token (client `Cancel` or disconnect).
    Cancelled,
    /// Replay failed.
    Failed(String),
}

const MIB: u64 = 1024 * 1024;

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:0`) and prepares the state
    /// directory.
    ///
    /// # Errors
    ///
    /// Socket or state-directory I/O failures.
    pub fn bind(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let listener = TcpListener::bind(addr)?;
        let next = next_free_session_index(&cfg.state_dir)?;
        let ledger = BudgetLedger::new(cfg.global_budget_mib as u64 * MIB);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                ledger,
                next_session: Mutex::new(next),
                mux: Mutex::new(()),
            }),
        })
    }

    /// The address the server actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket's address lookup failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Completes every interrupted session found in the state
    /// directory: sessions with a complete spool (`trace.ok`) but no
    /// `done` marker are replayed to completion — resuming from their
    /// newest checkpoint generation when one exists — exactly as if
    /// their server had never been killed. Sessions killed mid-spool
    /// are unrecoverable (their client is gone) and are removed.
    ///
    /// Returns `(session id, result)` per pending session. Call before
    /// [`Server::run`]; the replays happen inline, one session at a
    /// time, each on a fresh thread (determinism requires it).
    pub fn resume_pending(&self) -> Vec<(String, Result<(), String>)> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.shared.cfg.state_dir) else {
            return out;
        };
        let mut pending: Vec<(String, PathBuf)> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                parse_session_index(&name)?;
                Some((name, e.path()))
            })
            .collect();
        pending.sort();
        for (sid, dir) in pending {
            if dir.join("done").is_file() {
                continue;
            }
            if !dir.join("trace.ok").is_file() {
                eprintln!("serve: session {sid} was killed mid-spool; removing");
                std::fs::remove_dir_all(&dir).ok();
                continue;
            }
            let meta = match read_meta(&dir) {
                Ok(meta) => meta,
                Err(e) => {
                    out.push((sid.clone(), Err(format!("unreadable meta.json: {e}"))));
                    continue;
                }
            };
            eprintln!("serve: resuming session {sid}");
            // A fresh thread per session, same as live sessions get:
            // replay ids and the metrics sink are thread-local, and
            // byte-identical resume depends on starting both clean.
            let shared = Arc::clone(&self.shared);
            let result = std::thread::scope(|scope| {
                scope
                    .spawn(|| run_session_thread(&shared, &dir, &meta, None, None, None))
                    .join()
            })
            .unwrap_or_else(|_| Err(SessionEnd::Failed("session thread panicked".into())))
            .map(|_| ())
            .map_err(|end| match end {
                SessionEnd::Failed(what) => what,
                _ => "resume interrupted".to_string(),
            });
            match &result {
                Ok(()) => eprintln!("serve: session {sid} resumed to completion"),
                Err(what) => eprintln!("serve: session {sid} resume failed: {what}"),
            }
            out.push((sid, result));
        }
        out
    }

    /// Accepts and serves connections until `shutdown` becomes `true`
    /// (checked between accepts) or `max_sessions` connections have
    /// been fully handled (`None` = unbounded).
    ///
    /// # Errors
    ///
    /// Fatal listener failures only; per-connection errors are
    /// reported to their client and logged.
    pub fn run(&self, shutdown: &AtomicBool, max_sessions: Option<u64>) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut handled: u64 = 0;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            if let Some(max) = max_sessions {
                let done = handled - handlers.len() as u64
                    + handlers.iter().filter(|h| h.is_finished()).count() as u64;
                if done >= max {
                    break;
                }
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    handled += 1;
                    if let Some(max) = max_sessions {
                        if handled > max {
                            // Late connection beyond the cap: refuse.
                            drop(stream);
                            handled -= 1;
                            continue;
                        }
                    }
                    eprintln!("serve: connection from {peer}");
                    let shared = Arc::clone(&self.shared);
                    handlers.push(std::thread::spawn(move || handle_conn(&shared, stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    handlers.retain(|h| !h.is_finished());
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        for handle in handlers {
            handle.join().ok();
        }
        Ok(())
    }
}

/// Scans existing `sNNNN` directories so a restarted server continues
/// numbering after them.
fn next_free_session_index(state_dir: &Path) -> std::io::Result<u64> {
    let mut next = 0;
    for entry in std::fs::read_dir(state_dir)? {
        let entry = entry?;
        if let Some(index) = entry
            .file_name()
            .into_string()
            .ok()
            .as_deref()
            .and_then(parse_session_index)
        {
            next = next.max(index + 1);
        }
    }
    Ok(next)
}

/// `s0042` → `Some(42)`; anything else → `None`.
fn parse_session_index(name: &str) -> Option<u64> {
    let digits = name.strip_prefix('s')?;
    if digits.len() < 4 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn read_meta(dir: &Path) -> Result<SessionMeta, String> {
    let text = std::fs::read_to_string(dir.join("meta.json")).map_err(|e| e.to_string())?;
    serde_json::from_str(&text).map_err(|e| e.to_string())
}

/// Best-effort typed error frame; transport failures here are moot.
fn send_error(stream: &mut TcpStream, code: &str, fatal: bool, message: String) {
    let msg = proto::ErrorMsg {
        code: code.to_string(),
        fatal,
        message,
    };
    if let Ok(payload) = proto::encode_msg("ErrorMsg", &msg) {
        write_frame(stream, Kind::Error, &payload).ok();
    }
}

fn send_msg<T: Serialize>(
    stream: &mut TcpStream,
    kind: Kind,
    name: &'static str,
    value: &T,
) -> Result<(), ProtoError> {
    let payload = proto::encode_msg(name, value)?;
    write_frame(stream, kind, &payload)
}

/// One client connection, handshake to teardown.
fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(shared.cfg.spool_timeout)).ok();
    stream
        .set_write_timeout(Some(shared.cfg.spool_timeout))
        .ok();

    let our_features = FEATURE_OBS_STREAM
        | if shared.cfg.checkpoint_every.is_some() {
            FEATURE_CHECKPOINT
        } else {
            0
        };
    let ours = Hello::ours(our_features);

    // Handshake: read the client's hello first, then answer with ours —
    // even on magic/version failure, so a skewed client can read what
    // the server speaks and report it, instead of a silent hang-up.
    let client_hello = match read_hello(&mut stream) {
        Ok(hello) => hello,
        Err(e) => {
            write_hello(&mut stream, &ours).ok();
            send_error(&mut stream, e.code(), true, e.to_string());
            eprintln!("serve: handshake rejected: {e}");
            return;
        }
    };
    if write_hello(&mut stream, &ours).is_err() {
        return;
    }
    let features = client_hello.features & our_features;

    // Admission: the first real frame must open a session.
    let open: proto::OpenSession = loop {
        match read_frame(&mut stream) {
            Ok((Kind::OpenSession, payload)) => match proto::decode_msg("OpenSession", &payload) {
                Ok(open) => break open,
                Err(e) => {
                    send_error(&mut stream, e.code(), true, e.to_string());
                    return;
                }
            },
            Ok((Kind::Status, _)) => {
                let report = proto::StatusReport {
                    session: String::new(),
                    phase: "awaiting-open".to_string(),
                    progress: 0,
                };
                if send_msg(&mut stream, Kind::StatusReport, "StatusReport", &report).is_err() {
                    return;
                }
            }
            Ok((Kind::Cancel, _)) => return,
            Ok((kind, _)) => {
                let e = ProtoError::Unexpected {
                    expected: "OpenSession",
                    found: kind,
                };
                send_error(&mut stream, e.code(), true, e.to_string());
                return;
            }
            Err(e) => {
                send_error(&mut stream, e.code(), true, e.to_string());
                eprintln!("serve: pre-admission failure: {e}");
                return;
            }
        }
    };
    if let Some(id) = &open.workload {
        // Registry-named sessions carry no client trace: the server
        // materializes the workload itself, so a nonzero trace_bytes is
        // a confused client, not a small one.
        if open.budget_mib == 0 || open.trace_bytes != 0 {
            send_error(
                &mut stream,
                "admission",
                true,
                format!(
                    "workload session `{id}` needs a positive budget_mib and trace_bytes of 0 \
                     (the server generates the trace)"
                ),
            );
            return;
        }
    } else if open.budget_mib == 0 || open.trace_bytes < HEADER_BYTES as u64 {
        send_error(
            &mut stream,
            "admission",
            true,
            "budget_mib must be positive and trace_bytes at least one header".to_string(),
        );
        return;
    }

    let want = open.budget_mib as u64 * MIB;
    let _lease: BudgetLease = match shared.ledger.try_acquire(want) {
        Ok(lease) => lease,
        Err(Admission::TooLarge { total }) => {
            send_error(
                &mut stream,
                "admission",
                true,
                format!("requested budget of {want} bytes exceeds the server's total of {total}"),
            );
            return;
        }
        Err(Admission::MustQueue { available }) => {
            let queued = proto::Queued {
                available_bytes: available,
            };
            if send_msg(&mut stream, Kind::Queued, "Queued", &queued).is_err() {
                return;
            }
            match shared.ledger.acquire(want) {
                Ok(lease) => lease,
                Err(_) => {
                    send_error(&mut stream, "admission", true, "budget unavailable".into());
                    return;
                }
            }
        }
    };

    // The session exists from here on; everything below must either
    // finish it or clean it up.
    let sid = {
        let mut next = shared.next_session.lock().expect("session counter");
        let sid = format!("s{:04}", *next);
        *next += 1;
        sid
    };
    let dir = shared.cfg.state_dir.join(&sid);
    let mut meta = SessionMeta {
        session: sid.clone(),
        budget_mib: open.budget_mib,
        metrics_every: open.metrics_every,
        trace_bytes: open.trace_bytes,
        workload: open.workload.clone(),
    };
    if let Some(id) = &open.workload {
        // Registry-named session: materialize the trace server-side
        // before admission completes, so a bad id is rejected while the
        // client is still waiting on OpenSession.
        if let Err(e) = std::fs::create_dir_all(&dir) {
            send_error(&mut stream, "io", true, e.to_string());
            return;
        }
        match materialize_workload(id, shared.cfg.trace_dir.as_deref(), &dir.join("trace.ctr")) {
            Ok(bytes) => meta.trace_bytes = bytes,
            Err(what) => {
                send_error(&mut stream, "workload", true, what);
                std::fs::remove_dir_all(&dir).ok();
                return;
            }
        }
    }
    if let Err(e) = prepare_session_dir(&dir, &meta) {
        send_error(&mut stream, "io", true, e);
        return;
    }
    let accepted = proto::Accepted {
        session: sid.clone(),
    };
    if send_msg(&mut stream, Kind::Accepted, "Accepted", &accepted).is_err() {
        std::fs::remove_dir_all(&dir).ok();
        return;
    }
    eprintln!(
        "serve: session {sid} accepted (budget {} MiB, metrics every {})",
        open.budget_mib, open.metrics_every
    );

    // Phase 2: spool the trace — unless the server already materialized
    // it from the registry, in which case the replay starts immediately
    // and the client goes straight to consuming events.
    if let Some(id) = &meta.workload {
        eprintln!(
            "serve: session {sid} replaying workload `{id}` ({} bytes, server-generated)",
            meta.trace_bytes
        );
    } else {
        match spool_trace(&mut stream, &dir, &sid, &open) {
            Ok(chunks) => {
                eprintln!("serve: session {sid} spooled {chunks} chunks");
            }
            Err(end) => {
                match end {
                    SpoolEnd::Cancelled => {
                        eprintln!("serve: session {sid} cancelled during spool");
                        send_error(&mut stream, "cancelled", true, "session cancelled".into());
                    }
                    SpoolEnd::Proto(e) => {
                        eprintln!("serve: session {sid} spool failed: {e}");
                        send_error(&mut stream, e.code(), true, e.to_string());
                    }
                    SpoolEnd::Io(what) => {
                        eprintln!("serve: session {sid} spool failed: {what}");
                        send_error(&mut stream, "io", true, what);
                    }
                }
                std::fs::remove_dir_all(&dir).ok();
                return;
            }
        }
    }

    // Phase 3: replay, streaming observability back.
    let cancel = CancelToken::new();
    let progress = Arc::new(AtomicU64::new(0));
    let (sender, receiver) = mpsc::sync_channel::<String>(256);
    let obs_stream = features & FEATURE_OBS_STREAM != 0 && open.metrics_every > 0;

    let end = {
        let shared: &Shared = shared;
        std::thread::scope(|scope| {
            let session = scope.spawn(|| {
                run_session_thread(
                    shared,
                    &dir,
                    &meta,
                    Some(&cancel),
                    Some(sender),
                    Some(Arc::clone(&progress)),
                )
            });
            pump_connection(
                &mut stream,
                &sid,
                &cancel,
                &progress,
                receiver,
                obs_stream,
                shared.cfg.pump_interval,
            );
            match session.join() {
                Ok(Ok(done)) => SessionEnd::Done(done),
                Ok(Err(end)) => end,
                Err(_) => SessionEnd::Failed("session thread panicked".to_string()),
            }
        })
    };

    match end {
        SessionEnd::Done(done) => {
            eprintln!(
                "serve: session {sid} done ({} accesses, {} snapshots)",
                done.accesses, done.snapshots
            );
            send_msg(&mut stream, Kind::Done, "Done", &done).ok();
        }
        SessionEnd::Cancelled => {
            eprintln!("serve: session {sid} cancelled; cleaning up");
            send_error(&mut stream, "cancelled", true, "session cancelled".into());
            std::fs::remove_dir_all(&dir).ok();
        }
        SessionEnd::Failed(what) => {
            eprintln!("serve: session {sid} failed: {what}");
            send_error(&mut stream, "replay", true, what);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Materializes a registry workload into `<dir>/trace.ctr`: built-in
/// `synth/*` kernels plus any `import/*` captures from the server's
/// configured trace directory. Returns the packed byte length. The id
/// must match exactly one entry — globs are a client-side convenience,
/// a session replays one workload.
fn materialize_workload(id: &str, trace_dir: Option<&Path>, path: &Path) -> Result<u64, String> {
    let mut registry = cnt_workloads::WorkloadRegistry::builtin();
    if let Some(dir) = trace_dir {
        registry
            .add_trace_dir(dir)
            .map_err(|e| format!("trace dir `{}`: {e}", dir.display()))?;
    }
    let selected = registry.select(id).map_err(|e| e.to_string())?;
    let [entry] = selected.as_slice() else {
        return Err(format!(
            "workload id `{id}` matches {} entries; a session replays exactly one",
            selected.len()
        ));
    };
    let workload = entry.load().map_err(|e| e.to_string())?;
    let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
    let mut out = std::io::BufWriter::new(file);
    cnt_trace::pack_trace(&workload.trace, &mut out, cnt_trace::DEFAULT_CHUNK_ACCESSES)
        .map_err(|e| e.to_string())?;
    use std::io::Write;
    out.flush().map_err(|e| e.to_string())?;
    std::fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| e.to_string())
}

fn prepare_session_dir(dir: &Path, meta: &SessionMeta) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let text = serde_json::to_string(meta).map_err(|e| e.to_string())?;
    std::fs::write(dir.join("meta.json"), text).map_err(|e| e.to_string())
}

enum SpoolEnd {
    Cancelled,
    Proto(ProtoError),
    Io(String),
}

/// Receives the trace header and chunks, appending them verbatim to
/// `<dir>/trace.ctr`. Every chunk is validated twice: the outer frame
/// CRC (transport) and the inner `.ctr` chunk CRC (payload integrity),
/// so the spooled file is structurally sound before replay starts.
fn spool_trace(
    stream: &mut TcpStream,
    dir: &Path,
    sid: &str,
    open: &proto::OpenSession,
) -> Result<u64, SpoolEnd> {
    let path = dir.join("trace.ctr");
    let file = std::fs::File::create(&path).map_err(|e| SpoolEnd::Io(e.to_string()))?;
    let mut out = std::io::BufWriter::new(file);
    let mut spooled: u64 = 0;
    let mut chunks: u64 = 0;
    let mut have_header = false;

    loop {
        let (kind, payload) = read_frame(stream).map_err(SpoolEnd::Proto)?;
        match kind {
            Kind::TraceHeader => {
                if have_header {
                    return Err(SpoolEnd::Proto(ProtoError::Unexpected {
                        expected: "Chunk or Finish",
                        found: Kind::TraceHeader,
                    }));
                }
                let bytes: &[u8; HEADER_BYTES] = payload.as_slice().try_into().map_err(|_| {
                    SpoolEnd::Proto(ProtoError::BadPayload {
                        kind: "TraceHeader",
                        what: format!("expected {HEADER_BYTES} bytes, got {}", payload.len()),
                    })
                })?;
                Header::from_bytes(bytes).map_err(|e| {
                    SpoolEnd::Proto(ProtoError::BadPayload {
                        kind: "TraceHeader",
                        what: e.to_string(),
                    })
                })?;
                out.write_all(&payload)
                    .map_err(|e| SpoolEnd::Io(e.to_string()))?;
                spooled += payload.len() as u64;
                have_header = true;
            }
            Kind::Chunk => {
                if !have_header {
                    return Err(SpoolEnd::Proto(ProtoError::Unexpected {
                        expected: "TraceHeader",
                        found: Kind::Chunk,
                    }));
                }
                validate_chunk(&payload, chunks).map_err(SpoolEnd::Proto)?;
                spooled += payload.len() as u64;
                if spooled > open.trace_bytes {
                    return Err(SpoolEnd::Proto(ProtoError::BadPayload {
                        kind: "Chunk",
                        what: format!("trace overran its declared {} bytes", open.trace_bytes),
                    }));
                }
                out.write_all(&payload)
                    .map_err(|e| SpoolEnd::Io(e.to_string()))?;
                chunks += 1;
            }
            Kind::Finish => {
                if !have_header {
                    return Err(SpoolEnd::Proto(ProtoError::Unexpected {
                        expected: "TraceHeader",
                        found: Kind::Finish,
                    }));
                }
                break;
            }
            Kind::Cancel => return Err(SpoolEnd::Cancelled),
            Kind::Status => {
                let report = proto::StatusReport {
                    session: sid.to_string(),
                    phase: "spooling".to_string(),
                    progress: chunks,
                };
                send_msg(stream, Kind::StatusReport, "StatusReport", &report)
                    .map_err(SpoolEnd::Proto)?;
            }
            other => {
                return Err(SpoolEnd::Proto(ProtoError::Unexpected {
                    expected: "TraceHeader, Chunk, Finish, Cancel, or Status",
                    found: other,
                }))
            }
        }
    }

    out.flush().map_err(|e| SpoolEnd::Io(e.to_string()))?;
    out.into_inner()
        .map_err(|e| SpoolEnd::Io(e.to_string()))?
        .sync_all()
        .map_err(|e| SpoolEnd::Io(e.to_string()))?;
    std::fs::write(dir.join("trace.ok"), b"ok\n").map_err(|e| SpoolEnd::Io(e.to_string()))?;
    Ok(chunks)
}

/// Checks one `Chunk` frame payload is a well-formed `.ctr` chunk: a
/// 12-byte chunk frame whose length matches the remaining bytes and
/// whose CRC matches the chunk payload.
fn validate_chunk(payload: &[u8], chunk: u64) -> Result<(), ProtoError> {
    if payload.len() < FRAME_BYTES {
        return Err(ProtoError::BadPayload {
            kind: "Chunk",
            what: format!("chunk {chunk}: shorter than a chunk frame"),
        });
    }
    let frame_bytes: &[u8; FRAME_BYTES] = payload[..FRAME_BYTES].try_into().expect("sized above");
    let frame = cnt_trace::format::Frame::from_bytes(frame_bytes);
    let body = &payload[FRAME_BYTES..];
    if body.len() != frame.payload_len as usize {
        return Err(ProtoError::BadPayload {
            kind: "Chunk",
            what: format!(
                "chunk {chunk}: frame announces {} payload bytes, {} arrived",
                frame.payload_len,
                body.len()
            ),
        });
    }
    let found = crc32(body);
    if found != frame.crc32 {
        return Err(ProtoError::BadPayload {
            kind: "Chunk",
            what: format!(
                "chunk {chunk}: .ctr payload CRC mismatch ({found:#010X} vs {:#010X})",
                frame.crc32
            ),
        });
    }
    Ok(())
}

/// The connection thread's replay-phase loop: drain streamed obs lines
/// to the socket, poll for `Cancel`/disconnect, answer `Status`.
/// Returns when the session thread hangs up its channel.
fn pump_connection(
    stream: &mut TcpStream,
    sid: &str,
    cancel: &CancelToken,
    progress: &AtomicU64,
    receiver: mpsc::Receiver<String>,
    obs_stream: bool,
    pump_interval: Duration,
) {
    stream.set_read_timeout(Some(pump_interval)).ok();
    let mut socket_live = true;
    loop {
        // Drain everything the session thread has streamed so far.
        loop {
            match receiver.try_recv() {
                Ok(line) => {
                    if obs_stream
                        && socket_live
                        && write_frame(stream, Kind::Obs, line.as_bytes()).is_err()
                    {
                        // Client gone: stop writing, tear the session
                        // down at its next cancellation point.
                        socket_live = false;
                        cancel.cancel();
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => return,
            }
        }
        if !socket_live {
            // No socket to poll; wait on the channel alone.
            match receiver.recv_timeout(pump_interval) {
                Ok(line) => drop(line),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
            continue;
        }
        // Poll the socket; the read timeout is the loop's tick.
        match read_frame(stream) {
            Ok((Kind::Cancel, _)) => {
                eprintln!("serve: session {sid} received cancel");
                cancel.cancel();
            }
            Ok((Kind::Status, _)) => {
                let report = proto::StatusReport {
                    session: sid.to_string(),
                    phase: "replaying".to_string(),
                    progress: progress.load(Ordering::SeqCst),
                };
                if send_msg(stream, Kind::StatusReport, "StatusReport", &report).is_err() {
                    socket_live = false;
                    cancel.cancel();
                }
            }
            Ok((kind, _)) => {
                send_error(
                    stream,
                    "unexpected-frame",
                    false,
                    format!("{kind:?} is not valid during replay"),
                );
            }
            Err(e) if e.is_timeout() => {}
            Err(_) => {
                socket_live = false;
                cancel.cancel();
            }
        }
    }
}

/// A checkpoint store that logs every generation it writes — the line
/// the serve-smoke CI job greps for before killing the server.
struct LoggedRotator {
    inner: CheckpointRotator,
    sid: String,
}

impl CheckpointStore for LoggedRotator {
    fn store(&mut self, file: &CheckpointFile) -> Result<(), CheckpointError> {
        let generation = self.inner.next_generation();
        let path = self.inner.write(file)?;
        eprintln!(
            "serve: session {} checkpoint g{generation:04} -> {}",
            self.sid,
            path.display()
        );
        Ok(())
    }
}

/// Runs one session's two-pass replay **on the calling thread**, which
/// must be fresh (no prior replays, no local sink) — both the
/// connection handler and [`Server::resume_pending`] guarantee this by
/// spawning a thread per session. Streams snapshots through `out` (if
/// given), checkpoints to the session's rotation family, resumes from
/// the newest generation when one exists, and on success writes
/// `metrics.jsonl`, the `done` marker, and the multiplex log entry.
fn run_session_thread(
    shared: &Shared,
    dir: &Path,
    meta: &SessionMeta,
    cancel: Option<&CancelToken>,
    out: Option<mpsc::SyncSender<String>>,
    progress: Option<Arc<AtomicU64>>,
) -> Result<proto::Done, SessionEnd> {
    let fail = |what: String| SessionEnd::Failed(what);
    let trace = dir.join("trace.ctr");
    let opts = ReadOptions {
        budget_bytes: meta.budget_mib * MIB as usize,
        corruption: CorruptionPolicy::FailFast,
    };
    let (base_cfg, cnt_cfg) = cnt_bench::driver::stream_config_pair();

    // The session's metrics sink: thread-local, optionally streaming.
    let guard = (meta.metrics_every > 0).then(|| {
        let observer = out.map(|sender| -> cnt_obs::OnRecord {
            let progress = progress.clone();
            Box::new(move |snapshot: &cnt_obs::Snapshot| {
                if let Ok(line) = serde_json::to_string(snapshot) {
                    // A full channel blocks here: a slow consumer
                    // back-pressures the replay instead of ballooning
                    // buffered snapshots.
                    sender.send(line + "\n").ok();
                    if let Some(progress) = &progress {
                        progress.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        });
        cnt_obs::install_local(meta.metrics_every, observer)
    });

    // Resume from the newest checkpoint generation, if the session was
    // interrupted mid-replay.
    let ckpt_base = dir.join("ckpt.ctrs");
    let resume = match rotate::resolve_resume(&ckpt_base) {
        Ok(Some(path)) => {
            let expected = ckpt::pair_fingerprint(base_cfg.fingerprint(), cnt_cfg.fingerprint());
            match ckpt::load(&path, expected) {
                Ok((file, driver, obs)) => {
                    if driver.metrics_every
                        != (meta.metrics_every > 0).then_some(meta.metrics_every)
                    {
                        return Err(fail(format!(
                            "checkpoint metrics epoch {:?} disagrees with session meta",
                            driver.metrics_every
                        )));
                    }
                    eprintln!(
                        "serve: session {} resuming pass {} at chunk {}",
                        meta.session, driver.pass, driver.cursor.chunk
                    );
                    restore_resume_obs(&driver, obs);
                    Some(ResumeState { file, driver })
                }
                Err(e) => return Err(fail(format!("checkpoint `{}`: {e}", path.display()))),
            }
        }
        Ok(None) => None,
        Err(e) => return Err(fail(format!("checkpoint family scan: {e}"))),
    };

    let mut store = match shared.cfg.checkpoint_every {
        Some(_) => match CheckpointRotator::new(&ckpt_base, shared.cfg.checkpoint_keep) {
            Ok(rotator) => Some(LoggedRotator {
                inner: rotator,
                sid: meta.session.clone(),
            }),
            Err(e) => return Err(fail(format!("checkpoint rotator: {e}"))),
        },
        None => None,
    };
    let plan = SessionPlan {
        input: &trace,
        opts,
        base_cfg: &base_cfg,
        cnt_cfg: &cnt_cfg,
        metrics_every: (meta.metrics_every > 0).then_some(meta.metrics_every),
        checkpoint: shared.cfg.checkpoint_every.map(|every| CheckpointPlan {
            every,
            store: store.as_mut().expect("store exists when checkpointing"),
        }),
        cancel,
    };

    let outcome = match run_two_pass(plan, resume.as_ref()) {
        Ok(outcome) => outcome,
        Err(e) => {
            return Err(if e.as_cancelled().is_some() {
                SessionEnd::Cancelled
            } else {
                fail(e.to_string())
            })
        }
    };

    // Completion: metrics file, multiplex log, done marker.
    let snapshots = guard
        .map(cnt_obs::LocalSinkGuard::finish)
        .unwrap_or_default();
    let count = snapshots.len() as u64;
    if count > 0 {
        let jsonl = cnt_obs::to_jsonl(&snapshots)
            .map_err(|e| fail(format!("metrics serialisation: {e}")))?;
        std::fs::write(dir.join("metrics.jsonl"), jsonl)
            .map_err(|e| fail(format!("metrics.jsonl: {e}")))?;
        append_mux(shared, &meta.session, snapshots)
            .map_err(|e| fail(format!("serve_metrics.jsonl: {e}")))?;
    }
    std::fs::write(dir.join("done"), b"done\n").map_err(|e| fail(format!("done marker: {e}")))?;

    let TwoPassOutcome { base, cnt } = outcome;
    Ok(proto::Done {
        session: meta.session.clone(),
        accesses: cnt.accesses,
        baseline_fj: base.report.total().femtojoules(),
        cnt_fj: cnt.report.total().femtojoules(),
        snapshots: count,
    })
}

/// Appends one finished session's snapshots to the shared multiplex
/// log, experiment ids prefixed with the session id (`s0000/r0001`) so
/// downstream lint can tell tenants apart.
fn append_mux(
    shared: &Shared,
    sid: &str,
    mut snapshots: Vec<cnt_obs::Snapshot>,
) -> Result<(), String> {
    for snapshot in &mut snapshots {
        snapshot.experiment = format!("{sid}/{}", snapshot.experiment);
    }
    let jsonl = cnt_obs::to_jsonl(&snapshots).map_err(|e| e.to_string())?;
    let _guard = shared.mux.lock().expect("mux lock");
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(shared.cfg.state_dir.join("serve_metrics.jsonl"))
        .map_err(|e| e.to_string())?;
    file.write_all(jsonl.as_bytes()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_index_parsing_is_strict() {
        assert_eq!(parse_session_index("s0000"), Some(0));
        assert_eq!(parse_session_index("s0042"), Some(42));
        assert_eq!(parse_session_index("s10000"), Some(10_000));
        assert_eq!(parse_session_index("s42"), None, "too few digits");
        assert_eq!(parse_session_index("x0042"), None);
        assert_eq!(parse_session_index("s004x"), None);
        assert_eq!(parse_session_index("serve_metrics.jsonl"), None);
    }

    #[test]
    fn chunk_validation_rejects_damage() {
        let payload = {
            let body = b"0123456789".to_vec();
            let frame = cnt_trace::format::Frame {
                payload_len: body.len() as u32,
                access_count: 1,
                crc32: crc32(&body),
            };
            let mut out = frame.to_bytes().to_vec();
            out.extend_from_slice(&body);
            out
        };
        validate_chunk(&payload, 0).expect("well-formed chunk passes");

        let mut short = payload.clone();
        short.truncate(FRAME_BYTES - 1);
        assert!(validate_chunk(&short, 0).is_err());

        let mut wrong_len = payload.clone();
        wrong_len.pop();
        assert!(validate_chunk(&wrong_len, 0).is_err());

        let mut corrupt = payload;
        *corrupt.last_mut().expect("non-empty") ^= 0x40;
        assert!(matches!(
            validate_chunk(&corrupt, 3),
            Err(ProtoError::BadPayload { kind: "Chunk", .. })
        ));
    }
}

//! A fully-metered multi-level CNT-Cache hierarchy.
//!
//! Split L1I/L1D over an optional unified L2, where **every level** is a
//! [`CntCache`] with its own encoding policy and energy meter. This is
//! the substrate for the "where should the encoding go?" study
//! (experiment `fig15`): the paper applies adaptive encoding to the
//! D-Cache; here any subset of levels can be encoded and compared.

use cnt_sim::trace::{AccessKind, MemoryAccess};
use cnt_sim::{AccessError, Address, Backing, MainMemory, MemorySnapshot};
use cnt_trace::{CheckpointError, Checkpointable};
use serde::{Deserialize, Serialize};

use crate::cnt::{bad_state, CacheCheckpoint, CntCache};
use crate::config::{CntCacheConfig, ConfigError};
use crate::report::EnergyReport;

/// Configuration of a [`CntHierarchy`]: one [`CntCacheConfig`] per level.
#[derive(Debug, Clone, PartialEq)]
pub struct CntHierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CntCacheConfig,
    /// L1 data cache.
    pub l1d: CntCacheConfig,
    /// Optional unified L2.
    pub l2: Option<CntCacheConfig>,
}

impl CntHierarchyConfig {
    /// A typical shape — 16 KiB 4-way L1I, 32 KiB 8-way L1D, 256 KiB
    /// 8-way L2 — with the given per-level encoding policies.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in geometries; the `Result` mirrors the
    /// builder API.
    pub fn typical(
        l1i_policy: crate::EncodingPolicy,
        l1d_policy: crate::EncodingPolicy,
        l2_policy: crate::EncodingPolicy,
    ) -> Result<Self, ConfigError> {
        Ok(CntHierarchyConfig {
            l1i: CntCacheConfig::builder()
                .name("L1I")
                .size_bytes(16 * 1024)
                .associativity(4)
                .policy(l1i_policy)
                .build()?,
            l1d: CntCacheConfig::builder()
                .name("L1D")
                .size_bytes(32 * 1024)
                .associativity(8)
                .policy(l1d_policy)
                .build()?,
            l2: Some(
                CntCacheConfig::builder()
                    .name("L2")
                    .size_bytes(256 * 1024)
                    .associativity(8)
                    .policy(l2_policy)
                    .build()?,
            ),
        })
    }
}

/// Adapts an encoded [`CntCache`] plus its backing into a [`Backing`] for
/// an upper level, so line transfers between levels are metered and
/// encoded at the lower level too.
struct CntLevel<'a> {
    cache: &'a mut CntCache,
    lower: &'a mut dyn Backing,
}

impl Backing for CntLevel<'_> {
    fn load_line(&mut self, base: Address, buf: &mut [u64]) {
        self.cache.load_line_through(base, buf, self.lower);
    }

    fn store_line(&mut self, base: Address, data: &[u64]) {
        self.cache.store_line_through(base, data, self.lower);
    }

    fn store_word(&mut self, addr: Address, value: u64) {
        self.cache
            .access_through(&MemoryAccess::write(addr, 8, value), self.lower)
            .expect("aligned word store through a CNT level cannot fail");
    }
}

/// Split L1I/L1D over an optional unified L2, all CNT-Caches.
///
/// # Example
///
/// ```
/// use cnt_cache::{CntHierarchy, CntHierarchyConfig, EncodingPolicy};
/// use cnt_sim::trace::MemoryAccess;
/// use cnt_sim::Address;
///
/// let config = CntHierarchyConfig::typical(
///     EncodingPolicy::None,
///     EncodingPolicy::adaptive_default(),
///     EncodingPolicy::None,
/// )?;
/// let mut h = CntHierarchy::new(config)?;
/// h.access(&MemoryAccess::write(Address::new(0x1000), 8, 5))?;
/// assert_eq!(h.access(&MemoryAccess::read(Address::new(0x1000), 8))?, 5);
/// assert!(h.total_energy().femtojoules() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CntHierarchy {
    l1i: CntCache,
    l1d: CntCache,
    l2: Option<CntCache>,
    memory: MainMemory,
}

impl CntHierarchy {
    /// Builds the hierarchy over fresh zero-filled memory.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any level's configuration is invalid.
    pub fn new(config: CntHierarchyConfig) -> Result<Self, ConfigError> {
        Ok(CntHierarchy {
            l1i: CntCache::new(config.l1i)?,
            l1d: CntCache::new(config.l1d)?,
            l2: config.l2.map(CntCache::new).transpose()?,
            memory: MainMemory::new(),
        })
    }

    /// Performs one demand access, returning the loaded value (stores
    /// return the stored value).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for malformed accesses.
    pub fn access(&mut self, access: &MemoryAccess) -> Result<u64, AccessError> {
        let l1 = match access.kind {
            AccessKind::InstrFetch => &mut self.l1i,
            AccessKind::Read | AccessKind::Write => &mut self.l1d,
        };
        let outcome = match &mut self.l2 {
            Some(l2) => {
                let mut backing = CntLevel {
                    cache: l2,
                    lower: &mut self.memory,
                };
                l1.access_through(access, &mut backing)?
            }
            None => l1.access_through(access, &mut self.memory)?,
        };
        Ok(outcome.value)
    }

    /// Runs a whole trace, returning the number of accesses performed.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first [`AccessError`].
    pub fn run<'a, I>(&mut self, trace: I) -> Result<usize, AccessError>
    where
        I: IntoIterator<Item = &'a MemoryAccess>,
    {
        let mut n = 0;
        for access in trace {
            self.access(access)?;
            n += 1;
        }
        Ok(n)
    }

    /// Runs a whole trace like [`run`](Self::run), invoking
    /// `epoch_hook(&self, epoch, accesses_so_far)` after every `every`
    /// accesses, with a final call for a trailing partial epoch (or an
    /// empty trace) — the hierarchy counterpart of
    /// [`CntCache::run_observed`].
    ///
    /// # Errors
    ///
    /// Stops at and returns the first [`AccessError`].
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_observed<'a, I, F>(
        &mut self,
        trace: I,
        every: u64,
        mut epoch_hook: F,
    ) -> Result<usize, AccessError>
    where
        I: IntoIterator<Item = &'a MemoryAccess>,
        F: FnMut(&Self, u64, u64),
    {
        assert!(every > 0, "epoch length must be positive");
        let mut n: u64 = 0;
        let mut epoch: u64 = 0;
        for access in trace {
            self.access(access)?;
            n += 1;
            if n.is_multiple_of(every) {
                epoch_hook(self, epoch, n);
                epoch += 1;
            }
        }
        if !n.is_multiple_of(every) || n == 0 {
            epoch_hook(self, epoch, n);
        }
        Ok(n as usize)
    }

    /// Flushes every level (L1s through the L2, then the L2 to memory).
    pub fn flush_all(&mut self) {
        match &mut self.l2 {
            Some(l2) => {
                {
                    let mut backing = CntLevel {
                        cache: &mut *l2,
                        lower: &mut self.memory,
                    };
                    self.l1d.flush_through(&mut backing);
                    self.l1i.flush_through(&mut backing);
                }
                l2.flush_through(&mut self.memory);
            }
            None => {
                self.l1d.flush_through(&mut self.memory);
                self.l1i.flush_through(&mut self.memory);
            }
        }
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &CntCache {
        &self.l1i
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &CntCache {
        &self.l1d
    }

    /// The unified L2, if configured.
    pub fn l2(&self) -> Option<&CntCache> {
        self.l2.as_ref()
    }

    /// Per-level reports, in `[L1I, L1D, L2?]` order.
    pub fn reports(&self) -> Vec<EnergyReport> {
        let mut reports = vec![self.l1i.report(), self.l1d.report()];
        if let Some(l2) = &self.l2 {
            reports.push(l2.report());
        }
        reports
    }

    /// Total dynamic energy across all levels.
    pub fn total_energy(&self) -> cnt_energy::Energy {
        let mut total = self.l1i.total_energy() + self.l1d.total_energy();
        if let Some(l2) = &self.l2 {
            total += l2.total_energy();
        }
        total
    }

    /// The backing memory (e.g. to verify results after
    /// [`flush_all`](Self::flush_all)).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }
}

/// The complete resumable state of a [`CntHierarchy`]: one
/// [`CacheCheckpoint`] per level plus the shared backing memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HierarchyCheckpoint {
    l1i: CacheCheckpoint,
    l1d: CacheCheckpoint,
    l2: Option<CacheCheckpoint>,
    memory: MemorySnapshot,
}

impl Checkpointable for CntHierarchy {
    fn section_name(&self) -> &'static str {
        "hierarchy"
    }

    fn encode_state(&self) -> Result<Vec<u8>, CheckpointError> {
        let ckpt = HierarchyCheckpoint {
            l1i: self.l1i.checkpoint_data(),
            l1d: self.l1d.checkpoint_data(),
            l2: self.l2.as_ref().map(CntCache::checkpoint_data),
            memory: self.memory.snapshot(),
        };
        serde_json::to_string(&ckpt)
            .map(String::into_bytes)
            .map_err(|e| bad_state("hierarchy", format!("serialize: {e}")))
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| bad_state("hierarchy", "payload is not UTF-8"))?;
        let ckpt: HierarchyCheckpoint = serde_json::from_str(text)
            .map_err(|e| bad_state("hierarchy", format!("decode: {e}")))?;
        if ckpt.l2.is_some() != self.l2.is_some() {
            return Err(bad_state(
                "hierarchy",
                "checkpoint and configuration disagree on the presence of an L2",
            ));
        }
        // Restore into fresh levels on the side so a failure at any point
        // leaves the live hierarchy exactly as it was.
        let restore_level = |live: &CntCache, data| -> Result<CntCache, CheckpointError> {
            let mut level = CntCache::new(live.config().clone())
                .map_err(|e| bad_state("hierarchy", format!("rebuild level: {e}")))?;
            level
                .restore_from(data)
                .map_err(|what| bad_state("hierarchy", what))?;
            Ok(level)
        };
        let l1i = restore_level(&self.l1i, ckpt.l1i)?;
        let l1d = restore_level(&self.l1d, ckpt.l1d)?;
        let l2 = match (&self.l2, ckpt.l2) {
            (Some(live), Some(data)) => Some(restore_level(live, data)?),
            _ => None,
        };
        let memory =
            MainMemory::from_snapshot(ckpt.memory).map_err(|what| bad_state("hierarchy", what))?;
        self.l1i = l1i;
        self.l1d = l1d;
        self.l2 = l2;
        self.memory = memory;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncodingPolicy;

    fn small_config(l1d_policy: EncodingPolicy, l2_policy: EncodingPolicy) -> CntHierarchyConfig {
        CntHierarchyConfig {
            l1i: CntCacheConfig::builder()
                .name("L1I")
                .size_bytes(1024)
                .associativity(2)
                .build()
                .expect("valid"),
            l1d: CntCacheConfig::builder()
                .name("L1D")
                .size_bytes(2048)
                .associativity(2)
                .policy(l1d_policy)
                .build()
                .expect("valid"),
            l2: Some(
                CntCacheConfig::builder()
                    .name("L2")
                    .size_bytes(8192)
                    .associativity(4)
                    .policy(l2_policy)
                    .build()
                    .expect("valid"),
            ),
        }
    }

    #[test]
    fn data_round_trips_through_encoded_levels() {
        let mut h = CntHierarchy::new(small_config(
            EncodingPolicy::adaptive_default(),
            EncodingPolicy::adaptive_default(),
        ))
        .expect("valid");
        for i in 0..256u64 {
            h.access(&MemoryAccess::write(Address::new(i * 8), 8, i * 3))
                .expect("write");
        }
        for i in 0..256u64 {
            let v = h
                .access(&MemoryAccess::read(Address::new(i * 8), 8))
                .expect("read");
            assert_eq!(v, i * 3);
        }
        h.flush_all();
        for i in 0..256u64 {
            assert_eq!(h.memory_mut().load(Address::new(i * 8), 8), i * 3);
        }
    }

    #[test]
    fn every_level_meters_energy() {
        let mut h = CntHierarchy::new(small_config(
            EncodingPolicy::adaptive_default(),
            EncodingPolicy::None,
        ))
        .expect("valid");
        // Enough footprint to spill from the 2 KiB L1D into the L2.
        for i in 0..512u64 {
            h.access(&MemoryAccess::write(Address::new(i * 64), 8, i))
                .expect("write");
        }
        for i in 0..512u64 {
            h.access(&MemoryAccess::ifetch(Address::new(
                0x10_0000 + (i % 64) * 64,
            )))
            .expect("ifetch");
        }
        let reports = h.reports();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(
                r.total().femtojoules() > 0.0,
                "{} metered no energy",
                r.name
            );
        }
        let sum: f64 = reports.iter().map(|r| r.total().femtojoules()).sum();
        assert!((h.total_energy().femtojoules() - sum).abs() < 1e-6);
    }

    #[test]
    fn l2_encoding_adapts_on_l1_miss_traffic() {
        // Zero-data lines cycled through a tiny L1 hammer the L2 with
        // line reads; an adaptive L2 should eventually invert them.
        let mut h = CntHierarchy::new(small_config(
            EncodingPolicy::None,
            EncodingPolicy::adaptive_default(),
        ))
        .expect("valid");
        // 64 lines >> L1D capacity (32 lines), read repeatedly.
        for round in 0..32 {
            for line in 0..64u64 {
                let _ = round;
                h.access(&MemoryAccess::read(Address::new(line * 64), 8))
                    .expect("read");
            }
        }
        let l2 = h.l2().expect("configured").report();
        assert!(l2.encoding.windows > 0, "L2 completed no windows");
        assert!(
            l2.encoding.switches_applied > 0,
            "L2 never adapted: {:?}",
            l2.encoding
        );
    }

    fn mixed(h: &mut CntHierarchy, range: std::ops::Range<u64>) {
        for i in range {
            let addr = Address::new((i.wrapping_mul(0x61C8_8647) % 0x4000) & !7);
            match i % 3 {
                0 => h.access(&MemoryAccess::write(addr, 8, i)).expect("write"),
                1 => h.access(&MemoryAccess::read(addr, 8)).expect("read"),
                _ => h
                    .access(&MemoryAccess::ifetch(Address::new(
                        0x10_0000 + (i % 64) * 64,
                    )))
                    .expect("ifetch"),
            };
        }
    }

    fn reports_json(h: &CntHierarchy) -> String {
        serde_json::to_string(&h.reports()).expect("reports serialize")
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let config = small_config(
            EncodingPolicy::adaptive_default(),
            EncodingPolicy::adaptive_default(),
        );
        let mut control = CntHierarchy::new(config.clone()).expect("valid");
        mixed(&mut control, 0..400);

        let mut original = CntHierarchy::new(config.clone()).expect("valid");
        mixed(&mut original, 0..200);
        let bytes = original.encode_state().expect("encodes");

        let mut resumed = CntHierarchy::new(config).expect("valid");
        resumed.restore_state(&bytes).expect("restores");
        mixed(&mut resumed, 200..400);
        mixed(&mut original, 200..400);

        let expected = reports_json(&control);
        assert_eq!(reports_json(&original), expected);
        assert_eq!(reports_json(&resumed), expected, "resume diverged");
    }

    #[test]
    fn restore_rejects_l2_mismatch() {
        let with_l2 = small_config(EncodingPolicy::None, EncodingPolicy::None);
        let mut no_l2 = with_l2.clone();
        no_l2.l2 = None;

        let donor = CntHierarchy::new(with_l2).expect("valid");
        let bytes = donor.encode_state().expect("encodes");
        let mut target = CntHierarchy::new(no_l2).expect("valid");
        assert!(
            target.restore_state(&bytes).is_err(),
            "a checkpoint with an L2 must not restore into a 2-level hierarchy"
        );
    }

    #[test]
    fn works_without_l2() {
        let mut config = small_config(EncodingPolicy::adaptive_default(), EncodingPolicy::None);
        config.l2 = None;
        let mut h = CntHierarchy::new(config).expect("valid");
        h.access(&MemoryAccess::write(Address::new(0x40), 8, 9))
            .expect("write");
        assert_eq!(
            h.access(&MemoryAccess::read(Address::new(0x40), 8))
                .expect("read"),
            9
        );
        h.flush_all();
        assert_eq!(h.memory_mut().load(Address::new(0x40), 8), 9);
        assert_eq!(h.reports().len(), 2);
    }

    #[test]
    fn audits_pass_at_every_level() {
        let mut h = CntHierarchy::new(small_config(
            EncodingPolicy::adaptive_default(),
            EncodingPolicy::adaptive_default(),
        ))
        .expect("valid");
        for i in 0..1024u64 {
            h.access(&MemoryAccess::write(Address::new((i % 128) * 32), 4, i))
                .expect("write");
            h.access(&MemoryAccess::read(Address::new((i % 256) * 16), 8))
                .expect("read");
        }
        assert!(h.l1d().audit().is_ok());
        assert!(h.l1i().audit().is_ok());
        assert!(h.l2().expect("configured").audit().is_ok());
    }
}

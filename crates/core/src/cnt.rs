//! [`CntCache`]: the adaptive-encoding CNFET cache with bit-exact dynamic
//! energy accounting.
//!
//! The type composes the three substrates:
//!
//! * a data-carrying [`Cache`](cnt_sim::Cache) over a [`MainMemory`],
//! * the [`cnt_encoding`] predictor/codec/FIFO stack,
//! * a [`cnt_energy::EnergyMeter`] that prices every bit the SRAM array
//!   moves.
//!
//! The *stored* array content is the logical content XOR the per-partition
//! direction bits; correctness is structural (the XOR is an involution) and
//! energy is always computed on the stored view.

use cnt_encoding::{
    AccessHistory, BitPreference, DirectionBits, DirectionPredictor, FifoSnapshot, FifoStats,
    LineCodec, OverflowPolicy, PartitionLayout, PredictorConfig, ProtectedDirectionBits,
    ProtectedHistory, ProtectionMode, ProtectionVerdict, UpdateFifo,
};
use cnt_energy::{ChargeKind, EnergyBreakdown, EnergyMeter};
use cnt_sim::trace::{AccessBatch, AccessKind, MemoryAccess};
use cnt_sim::{
    AccessError, AccessOutcome, Address, ArrayObserver, Backing, Cache, CacheLevel, CacheLine,
    CacheSnapshot, CacheStats, LineLocation, MainMemory, MemorySnapshot,
};
use cnt_trace::{CheckpointError, Checkpointable};
use serde::{Deserialize, Serialize};

use crate::config::{CntCacheConfig, ConfigError};
use crate::policy::{EncodingPolicy, MetadataFaultPolicy};
use crate::report::{EncodingCounters, EnergyReport, ReliabilityCounters};

/// Per-line encoding state: direction bits, window counters, and the
/// sticky-classifier streak.
#[derive(Debug, Clone, Copy)]
struct LineState {
    dirs: ProtectedDirectionBits,
    /// Window counters in a protected register: the H field is guarded
    /// by the same code family as the D bits (DESIGN.md §10), so an
    /// upset cannot silently skew the predictor.
    history: ProtectedHistory,
    /// Last window's pattern classification (sticky classifier only).
    last_pattern: Option<cnt_encoding::AccessPattern>,
    /// Consecutive windows with the same classification.
    streak: u32,
    /// Pinned to baseline encoding by `MetadataFaultPolicy::FallbackBaseline`
    /// until the line is replaced.
    pinned: bool,
}

impl LineState {
    fn fresh(dirs: ProtectedDirectionBits, history: ProtectedHistory) -> Self {
        LineState {
            dirs,
            history,
            last_pattern: None,
            streak: 0,
            pinned: false,
        }
    }
}

/// One line's encoding state as it travels through a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct LineStateSnapshot {
    dirs: ProtectedDirectionBits,
    history: ProtectedHistory,
    last_pattern: Option<cnt_encoding::AccessPattern>,
    streak: u32,
    pinned: bool,
}

/// Everything a [`CntCache`] needs to resume exactly where it stopped:
/// the data-carrying cache, the backing memory, per-line encoding state,
/// the deferred-update FIFO, every counter, and the accumulated energy
/// breakdown. Serialized (as JSON) into one checkpoint section.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CacheCheckpoint {
    cache: CacheSnapshot,
    memory: MemorySnapshot,
    states: Vec<LineStateSnapshot>,
    fifo_queue: Vec<PendingUpdate>,
    fifo_stats: FifoStats,
    counters: EncodingCounters,
    reliability: ReliabilityCounters,
    degraded_lines: Vec<Address>,
    breakdown: EnergyBreakdown,
}

/// A queued re-encoding: which line, and which partitions flip.
///
/// This is the joint content of the paper's index FIFO (the location) and
/// data FIFO (the flip set; the data itself is re-read at apply time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PendingUpdate {
    /// Where the line lives.
    pub set: u64,
    /// Which way.
    pub way: u32,
    /// Bitmask of partitions to flip.
    pub flips: u64,
    /// The decision's projected net saving (fJ), carried so the realized
    /// total can be attributed when (and only when) the update applies.
    pub saving_fj: f64,
}

impl PendingUpdate {
    fn location(&self) -> LineLocation {
        LineLocation {
            set: self.set,
            way: self.way,
        }
    }
}

/// The outcome of one background scrub sweep over the direction
/// metadata (see [`CntCache::scrub_metadata`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Valid lines whose metadata was verified.
    pub lines_checked: u64,
    /// Upsets repaired in place during this sweep.
    pub corrected: u64,
    /// Uncorrectable faults found (the fault policy fired).
    pub uncorrectable: u64,
}

/// The CNT-Cache: a CNFET data cache with (optional) adaptive encoding and
/// full dynamic-energy accounting.
///
/// # Example
///
/// ```
/// use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
/// use cnt_sim::Address;
///
/// let config = CntCacheConfig::builder()
///     .policy(EncodingPolicy::adaptive_default())
///     .build()?;
/// let mut cache = CntCache::new(config)?;
///
/// cache.write(Address::new(0x100), 8, 0xFF)?;
/// assert_eq!(cache.read(Address::new(0x100), 8)?, 0xFF);
/// assert!(cache.total_energy().femtojoules() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CntCache {
    config: CntCacheConfig,
    cache: Cache,
    memory: MainMemory,
    meter: EnergyMeter,
    codec: LineCodec,
    predictor: Option<DirectionPredictor>,
    states: Vec<LineState>,
    fifo: UpdateFifo<PendingUpdate>,
    counters: EncodingCounters,
    drain_per_access: usize,
    fill_preference: Option<BitPreference>,
    inline_updates: bool,
    confirm_windows: u32,
    zero_flag: bool,
    /// Effective protection mode: the configured one, or forced `None`
    /// for policies without direction bits.
    protection: ProtectionMode,
    /// Template for a freshly-filled line's history register (window
    /// length and protection mode fixed by the configuration).
    fresh_history: ProtectedHistory,
    fault_policy: MetadataFaultPolicy,
    reliability: ReliabilityCounters,
    /// Base addresses of lines degraded by the fault policy (invalidated
    /// or pinned), in occurrence order; a base repeats if hit again.
    degraded_lines: Vec<Address>,
}

impl CntCache {
    /// Builds the cache over fresh memory with the configured cold-fill
    /// pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the encoding policy is incompatible with
    /// the geometry (e.g. partitions that do not divide the line).
    pub fn new(config: CntCacheConfig) -> Result<Self, ConfigError> {
        let memory = MainMemory::with_fill(config.fill_pattern);
        CntCache::with_memory(config, memory)
    }

    /// Builds the cache over pre-populated memory.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the encoding policy is incompatible with
    /// the geometry.
    pub fn with_memory(config: CntCacheConfig, memory: MainMemory) -> Result<Self, ConfigError> {
        let line_bits = config.geometry.line_bits();
        let partitions = config.policy.partitions();
        let (codec, predictor, adaptive) = match config.policy {
            EncodingPolicy::None | EncodingPolicy::ZeroFlag => (
                LineCodec::new(PartitionLayout::full_line(line_bits)?),
                None,
                None,
            ),
            EncodingPolicy::StaticInvert { preference, .. } => {
                let mut params = crate::policy::AdaptiveParams::paper_default();
                params.fill_preference = Some(preference);
                params.drain_per_access = 0;
                (
                    LineCodec::new(PartitionLayout::new(line_bits, partitions)?),
                    None,
                    Some(params),
                )
            }
            EncodingPolicy::Adaptive(params) => {
                let predictor = DirectionPredictor::new(
                    config.energy.bits(),
                    PredictorConfig {
                        window: params.window,
                        line_bits,
                        partitions: params.partitions,
                        delta_t: params.delta_t,
                    },
                )?;
                let codec = *predictor.codec();
                (codec, Some(predictor), Some(params))
            }
        };
        let fifo_capacity = adaptive.map_or(1, |p| p.fifo_capacity.max(1));
        let overflow = adaptive.map_or(OverflowPolicy::DropNewest, |p| p.overflow);
        let drain = if predictor.is_some() {
            adaptive.map_or(0, |p| p.drain_per_access)
        } else {
            0
        };
        let fill_preference = adaptive.and_then(|p| p.fill_preference);
        let inline_updates = adaptive.is_some_and(|p| p.inline_updates);
        let confirm_windows = adaptive.map_or(1, |p| p.confirm_windows.max(1));
        let zero_flag = config.policy == EncodingPolicy::ZeroFlag;
        // Policies without direction bits have nothing to protect; forcing
        // `None` keeps their hot path byte-identical to the unprotected
        // build.
        let protection = match config.policy {
            EncodingPolicy::None | EncodingPolicy::ZeroFlag => ProtectionMode::None,
            EncodingPolicy::StaticInvert { .. } | EncodingPolicy::Adaptive(_) => config.protection,
        };

        let cache = Cache::new(config.name.clone(), config.geometry, config.replacement)
            .with_write_mode(config.write_mode)
            .with_prefetch(config.prefetch);
        let lines = config.geometry.num_lines() as usize;
        // The H counters live in the same protected metadata word as the
        // D bits; policies without a predictor carry a degenerate
        // single-access window that is never recorded into.
        let fresh_history = ProtectedHistory::new(
            predictor.as_ref().map_or(1, |p| p.config().window),
            protection,
        );
        let states = vec![
            LineState::fresh(
                ProtectedDirectionBits::all_normal(codec.layout().partitions(), protection),
                fresh_history,
            );
            lines
        ];
        Ok(CntCache {
            meter: EnergyMeter::new(config.energy),
            cache,
            memory,
            codec,
            predictor,
            states,
            fifo: UpdateFifo::new(fifo_capacity, overflow),
            counters: EncodingCounters::default(),
            drain_per_access: drain,
            fill_preference,
            inline_updates,
            confirm_windows,
            zero_flag,
            protection,
            fresh_history,
            fault_policy: config.fault_policy,
            reliability: ReliabilityCounters::default(),
            degraded_lines: Vec::new(),
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &CntCacheConfig {
        &self.config
    }

    /// Hit/miss statistics of the underlying cache.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Total dynamic energy accumulated so far.
    pub fn total_energy(&self) -> cnt_energy::Energy {
        self.meter.total()
    }

    /// The energy meter (for breakdown inspection).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Encoding activity counters.
    pub fn encoding_counters(&self) -> &EncodingCounters {
        &self.counters
    }

    /// Metadata-protection and fault-handling counters.
    pub fn reliability_counters(&self) -> &ReliabilityCounters {
        &self.reliability
    }

    /// The *effective* protection mode: the configured one, or `None`
    /// when the encoding policy carries no direction bits.
    pub fn protection(&self) -> ProtectionMode {
        self.protection
    }

    /// Base addresses of lines degraded by the fault policy (invalidated
    /// or pinned after an uncorrectable metadata fault), in occurrence
    /// order. Campaigns use this to attribute end-of-run corruption as
    /// *detected* (the line is in this log) versus *silent*.
    pub fn degraded_line_bases(&self) -> &[Address] {
        &self.degraded_lines
    }

    /// Encoding partitions per line in the active codec layout.
    pub fn partitions(&self) -> u32 {
        self.codec.layout().partitions()
    }

    /// Number of currently valid (resident) lines.
    pub fn valid_line_count(&self) -> usize {
        self.cache.valid_lines().count()
    }

    /// The location of the `n`-th valid line in set/way iteration order,
    /// without allocating. `None` when fewer than `n + 1` lines are
    /// resident.
    pub fn nth_valid_line(&self, n: usize) -> Option<LineLocation> {
        self.cache.valid_lines().nth(n).map(|(loc, _)| loc)
    }

    /// Base address of the line at `loc` (valid for resident lines;
    /// reconstructed from the stored tag otherwise).
    pub fn line_base(&self, loc: LineLocation) -> Address {
        self.cache.line_base_at(loc)
    }

    /// Pending-update FIFO statistics.
    pub fn fifo_stats(&self) -> &cnt_encoding::FifoStats {
        self.fifo.stats()
    }

    /// Updates currently queued in the deferred-update FIFO.
    pub fn fifo_len(&self) -> usize {
        self.fifo.len()
    }

    /// Capacity of the deferred-update FIFO.
    pub fn fifo_capacity(&self) -> usize {
        self.fifo.capacity()
    }

    /// The cache's display name (e.g. `L1D`).
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The backing memory.
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }

    /// Performs one demand access from a trace record.
    ///
    /// Instruction fetches are treated as reads.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for malformed accesses.
    pub fn access(&mut self, access: &MemoryAccess) -> Result<AccessOutcome, AccessError> {
        match access.kind {
            AccessKind::Write => self.demand(access.addr, access.width, Some(access.value)),
            AccessKind::Read | AccessKind::InstrFetch => {
                self.demand(access.addr, access.width, None)
            }
        }
    }

    /// Reads `width` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for malformed accesses.
    pub fn read(&mut self, addr: Address, width: u8) -> Result<u64, AccessError> {
        self.demand(addr, width, None).map(|o| o.value)
    }

    /// Writes the low `width * 8` bits of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for malformed accesses.
    pub fn write(&mut self, addr: Address, width: u8, value: u64) -> Result<(), AccessError> {
        self.demand(addr, width, Some(value)).map(|_| ())
    }

    /// Runs every access of a trace, returning how many were performed.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first [`AccessError`].
    pub fn run<'a, I>(&mut self, trace: I) -> Result<usize, AccessError>
    where
        I: IntoIterator<Item = &'a MemoryAccess>,
    {
        let mut n = 0;
        for access in trace {
            self.access(access)?;
            n += 1;
        }
        Ok(n)
    }

    /// Runs every access of a trace like [`run`](Self::run), invoking
    /// `epoch_hook(&self, epoch, accesses_so_far)` after every `every`
    /// accesses (an *epoch boundary*). A final call is made at the end of
    /// the trace when a partial epoch remains — or when the trace was
    /// empty — so every replay yields at least one observation.
    ///
    /// The hook borrows the cache immutably, so it can capture statistics,
    /// the energy breakdown, encoding counters, and FIFO occupancy
    /// mid-replay without disturbing the simulation.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first [`AccessError`].
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_observed<'a, I, F>(
        &mut self,
        trace: I,
        every: u64,
        mut epoch_hook: F,
    ) -> Result<usize, AccessError>
    where
        I: IntoIterator<Item = &'a MemoryAccess>,
        F: FnMut(&Self, u64, u64),
    {
        assert!(every > 0, "epoch length must be positive");
        let mut n: u64 = 0;
        let mut epoch: u64 = 0;
        for access in trace {
            self.access(access)?;
            n += 1;
            if n.is_multiple_of(every) {
                epoch_hook(self, epoch, n);
                epoch += 1;
            }
        }
        if !n.is_multiple_of(every) || n == 0 {
            // Trailing partial epoch (or an empty replay): emit the final
            // state so the last accesses are never silently discarded.
            epoch_hook(self, epoch, n);
        }
        Ok(n as usize)
    }

    /// Runs every access of a struct-of-arrays batch, returning how many
    /// were performed. Semantically identical to [`run`](Self::run) over
    /// the same records, but the loop streams through the batch's columns
    /// — no per-record struct decode, kind match, or pointer chase.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first [`AccessError`].
    pub fn run_batch(&mut self, batch: &AccessBatch) -> Result<usize, AccessError> {
        for i in 0..batch.len() {
            self.demand(batch.addr(i), batch.width(i), batch.write_value(i))?;
        }
        Ok(batch.len())
    }

    /// [`run_batch`](Self::run_batch) with the epoch hook of
    /// [`run_observed`](Self::run_observed): `epoch_hook(&self, epoch,
    /// accesses_so_far)` fires every `every` accesses plus once for a
    /// trailing partial (or empty) epoch, so observed batched replays
    /// emit exactly the snapshots of their record-at-a-time equivalent.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first [`AccessError`].
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_batch_observed<F>(
        &mut self,
        batch: &AccessBatch,
        every: u64,
        mut epoch_hook: F,
    ) -> Result<usize, AccessError>
    where
        F: FnMut(&Self, u64, u64),
    {
        assert!(every > 0, "epoch length must be positive");
        let mut n: u64 = 0;
        let mut epoch: u64 = 0;
        for i in 0..batch.len() {
            self.demand(batch.addr(i), batch.width(i), batch.write_value(i))?;
            n += 1;
            if n.is_multiple_of(every) {
                epoch_hook(self, epoch, n);
                epoch += 1;
            }
        }
        if !n.is_multiple_of(every) || n == 0 {
            epoch_hook(self, epoch, n);
        }
        Ok(n as usize)
    }

    fn demand(
        &mut self,
        addr: Address,
        width: u8,
        write: Option<u64>,
    ) -> Result<AccessOutcome, AccessError> {
        let mut memory = std::mem::take(&mut self.memory);
        let result = self.demand_through(addr, width, write, &mut memory);
        self.memory = memory;
        result
    }

    fn demand_through(
        &mut self,
        addr: Address,
        width: u8,
        write: Option<u64>,
        lower: &mut dyn Backing,
    ) -> Result<AccessOutcome, AccessError> {
        // Decode-path check: the addressed line's metadata is verified
        // *before* the direction bits are trusted. An uncorrectable fault
        // may invalidate the line here, turning the access into a clean
        // refetch miss.
        if self.protection != ProtectionMode::None {
            if let Some(loc) = self.cache.find(addr) {
                self.verify_line_metadata(loc);
            }
        }
        let ways = self.config.geometry.associativity();
        let outcome = {
            let mut observer = MeterObserver {
                meter: &mut self.meter,
                states: &mut self.states,
                codec: &self.codec,
                fifo: &mut self.fifo,
                ways,
                fill_preference: self.fill_preference,
                zero_flag: self.zero_flag,
                protection: self.protection,
                fresh_history: self.fresh_history,
                metadata_scale: if self.config.meter_metadata {
                    self.config.metadata_energy_scale
                } else {
                    0.0
                },
            };
            match write {
                Some(value) => {
                    self.cache
                        .write_outcome(addr, width, value, lower, &mut observer)?
                }
                None => self.cache.read_outcome(addr, width, lower, &mut observer)?,
            }
        };
        self.after_demand(&outcome, write.is_some());
        Ok(outcome)
    }

    /// Performs one demand access against an *external* backing (a lower
    /// cache level or memory) instead of this cache's owned memory. Used
    /// by [`CntHierarchy`](crate::CntHierarchy) to stack encoded levels.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for malformed accesses.
    pub fn access_through(
        &mut self,
        access: &MemoryAccess,
        lower: &mut dyn Backing,
    ) -> Result<AccessOutcome, AccessError> {
        match access.kind {
            AccessKind::Write => {
                self.demand_through(access.addr, access.width, Some(access.value), lower)
            }
            AccessKind::Read | AccessKind::InstrFetch => {
                self.demand_through(access.addr, access.width, None, lower)
            }
        }
    }

    /// Serves a whole-line read for an upper cache level, with full
    /// energy metering and encoding bookkeeping at this level.
    pub fn load_line_through(&mut self, base: Address, buf: &mut [u64], lower: &mut dyn Backing) {
        if self.protection != ProtectionMode::None {
            if let Some(loc) = self.cache.find(base) {
                self.verify_line_metadata(loc);
            }
        }
        let ways = self.config.geometry.associativity();
        {
            let mut observer = MeterObserver {
                meter: &mut self.meter,
                states: &mut self.states,
                codec: &self.codec,
                fifo: &mut self.fifo,
                ways,
                fill_preference: self.fill_preference,
                zero_flag: self.zero_flag,
                protection: self.protection,
                fresh_history: self.fresh_history,
                metadata_scale: if self.config.meter_metadata {
                    self.config.metadata_energy_scale
                } else {
                    0.0
                },
            };
            let mut level = CacheLevel {
                cache: &mut self.cache,
                lower,
                observer: &mut observer,
            };
            level.load_line(base, buf);
        }
        self.after_line_transfer(base, false);
    }

    /// Accepts a whole-line spill from an upper cache level, with full
    /// energy metering and encoding bookkeeping at this level.
    pub fn store_line_through(&mut self, base: Address, data: &[u64], lower: &mut dyn Backing) {
        if self.protection != ProtectionMode::None {
            if let Some(loc) = self.cache.find(base) {
                self.verify_line_metadata(loc);
            }
        }
        let ways = self.config.geometry.associativity();
        {
            let mut observer = MeterObserver {
                meter: &mut self.meter,
                states: &mut self.states,
                codec: &self.codec,
                fifo: &mut self.fifo,
                ways,
                fill_preference: self.fill_preference,
                zero_flag: self.zero_flag,
                protection: self.protection,
                fresh_history: self.fresh_history,
                metadata_scale: if self.config.meter_metadata {
                    self.config.metadata_energy_scale
                } else {
                    0.0
                },
            };
            let mut level = CacheLevel {
                cache: &mut self.cache,
                lower,
                observer: &mut observer,
            };
            level.store_line(base, data);
        }
        self.after_line_transfer(base, true);
    }

    /// Line-transfer bookkeeping: the touched line gets one history event
    /// (reads/writes at line granularity) and idle-slot draining runs.
    fn after_line_transfer(&mut self, base: Address, is_write: bool) {
        let Some(location) = self.cache.find(base) else {
            return;
        };
        let outcome = AccessOutcome {
            value: 0,
            hit: true,
            location: Some(location),
            evicted: None,
        };
        self.after_demand(&outcome, is_write);
    }

    /// Post-access bookkeeping: metadata energy, window prediction, and
    /// idle-slot draining.
    fn after_demand(&mut self, outcome: &AccessOutcome, is_write: bool) {
        // Write-around stores never touch the array: nothing to account.
        let Some(location) = outcome.location else {
            return;
        };
        let idx = self.line_index(location);

        // Every access under an encoding policy reads the line's H&D field.
        let metadata_bits = self
            .config
            .policy
            .metadata_bits_per_line(self.config.geometry.line_bits());
        // Zero-flag charges its flag bits precisely in the observer, so the
        // generic whole-field metadata charge below must not double-count.
        if self.config.meter_metadata && metadata_bits > 0 && !self.zero_flag {
            let state = &self.states[idx];
            let ones = state.dirs.inverted_count()
                + state.history.accesses().count_ones()
                + state.history.writes().count_ones();
            self.meter.charge_read_bits_scaled(
                ones.min(metadata_bits),
                metadata_bits,
                ChargeKind::MetadataRead,
                self.config.metadata_energy_scale,
            );
        }

        let Some(predictor) = &self.predictor else {
            return;
        };

        if self.states[idx].pinned {
            // FallbackBaseline: the line sits out the predictor entirely
            // until it is replaced.
            return;
        }

        let summary = predictor.observe_protected(&mut self.states[idx].history, is_write);

        if self.config.meter_metadata {
            // The history counters are re-written on every access.
            let hist_bits = AccessHistory::storage_bits(predictor.config().window);
            let state = &self.states[idx];
            let ones = (state.history.accesses().count_ones()
                + state.history.writes().count_ones())
            .min(hist_bits);
            self.meter.charge_write_bits_scaled(
                ones,
                hist_bits,
                ChargeKind::MetadataWrite,
                self.config.metadata_energy_scale,
            );
        }

        if let Some(summary) = summary {
            self.counters.windows += 1;

            // Sticky classifier: require `confirm_windows` consecutive
            // windows with the same pattern before allowing a switch.
            let confirmed = if self.confirm_windows <= 1 {
                true
            } else {
                let pattern = predictor.table().pattern(summary.wr_num);
                let state = &mut self.states[idx];
                if state.last_pattern == Some(pattern) {
                    state.streak = state.streak.saturating_add(1);
                } else {
                    state.streak = 1;
                }
                state.last_pattern = Some(pattern);
                state.streak >= self.confirm_windows
            };

            if confirmed {
                let line = self.cache.line_at(location);
                let decision = predictor.decide(summary, line.as_words(), &self.states[idx].dirs);
                if decision.switches() {
                    self.counters.switch_decisions += 1;
                    self.counters.projected_saving_fj += decision.projected_saving_fj;
                    if self.inline_updates {
                        // No FIFO: the re-encode stalls the demand path.
                        let flips = decision.flips;
                        self.apply_update(location, flips, decision.projected_saving_fj, true);
                    } else {
                        self.fifo.push(PendingUpdate {
                            set: location.set,
                            way: location.way,
                            flips: decision.flips,
                            saving_fj: decision.projected_saving_fj,
                        });
                    }
                }
            } else {
                self.counters.suppressed_by_confirmation += 1;
            }
        }

        // A hit leaves fill bandwidth idle: drain deferred updates.
        if outcome.hit {
            for _ in 0..self.drain_per_access {
                if !self.apply_one_pending() {
                    break;
                }
            }
        }
    }

    /// Verifies the protected direction metadata of the line at `loc`,
    /// repairing correctable upsets in place (metadata register *and*
    /// decoded data view) and invoking the fault policy on uncorrectable
    /// ones. No-op for invalid lines or when protection is off.
    fn verify_line_metadata(&mut self, loc: LineLocation) -> ProtectionVerdict {
        if self.protection == ProtectionMode::None || !self.cache.line_at(loc).is_valid() {
            return ProtectionVerdict::Clean;
        }
        let idx = self.line_index(loc);
        if self.config.meter_metadata {
            // The check bits are read out alongside the D field.
            let dirs = &self.states[idx].dirs;
            self.meter.charge_read_bits_scaled(
                dirs.check_ones(),
                dirs.check_storage_bits(),
                ChargeKind::ProtectionCheck,
                self.config.metadata_energy_scale,
            );
        }
        // The H counters ride in the same protected metadata word as the
        // D bits: verify and repair them first. A history fault never
        // endangers stored data — the worst case is a skewed prediction —
        // so an uncorrectable one resets the window (a lost window, never
        // a silent skew) instead of firing the line fault policy. The
        // check is deliberately unmetered; DESIGN.md §14 explains why.
        let history_verdict = self.states[idx].history.verify_and_repair();
        match history_verdict {
            ProtectionVerdict::Clean => {}
            ProtectionVerdict::CorrectedData(_) | ProtectionVerdict::CorrectedCheck => {
                self.reliability.faults_detected += 1;
                self.reliability.faults_corrected += 1;
            }
            ProtectionVerdict::Uncorrectable => {
                self.reliability.faults_detected += 1;
                self.reliability.faults_uncorrected += 1;
                self.states[idx].history.reset();
            }
        }
        let verdict = self.states[idx].dirs.verify_and_repair();
        match verdict {
            ProtectionVerdict::Clean => {}
            ProtectionVerdict::CorrectedData(p) => {
                self.reliability.faults_detected += 1;
                self.reliability.faults_corrected += 1;
                // The metadata register was repaired; now restore the
                // decoded view. The stored array bits were never wrong —
                // only the direction lying about them — so re-deriving
                // the logical partition is an exact inverse of the upset.
                let (start, len) = self.codec.layout().range(p);
                let line = self.cache.line_at_mut(loc);
                cnt_encoding::popcount::invert_range(line.as_words_mut(), start, len);
                self.charge_protection_repair(idx);
            }
            ProtectionVerdict::CorrectedCheck => {
                self.reliability.faults_detected += 1;
                self.reliability.faults_corrected += 1;
                self.charge_protection_repair(idx);
            }
            ProtectionVerdict::Uncorrectable => {
                self.reliability.faults_detected += 1;
                self.reliability.faults_uncorrected += 1;
                self.handle_uncorrectable(loc, idx);
            }
        }
        worse_verdict(verdict, history_verdict)
    }

    /// Charges the re-write of the protected D register after a repair.
    fn charge_protection_repair(&mut self, idx: usize) {
        if self.config.meter_metadata {
            let dirs = &self.states[idx].dirs;
            self.meter.charge_write_bits_scaled(
                dirs.bits().inverted_count() + dirs.check_ones(),
                dirs.storage_bits(),
                ChargeKind::ProtectionUpdate,
                self.config.metadata_energy_scale,
            );
        }
    }

    /// Executes the configured [`MetadataFaultPolicy`] on the line at
    /// `loc`, whose direction vector can no longer be trusted.
    fn handle_uncorrectable(&mut self, loc: LineLocation, idx: usize) {
        let base = self.cache.line_base_at(loc);
        match self.fault_policy {
            MetadataFaultPolicy::Panic => panic!(
                "uncorrectable direction-metadata fault at {base} (set {}, way {})",
                loc.set, loc.way
            ),
            MetadataFaultPolicy::InvalidateLine => {
                self.degraded_lines.push(base);
                self.fifo.cancel_where(|u| u.location() == loc);
                let was_dirty = self.cache.line_at_mut(loc).invalidate();
                if was_dirty {
                    // Unwritten stores are lost — detected data loss,
                    // never silent: the base is in the degraded log.
                    self.reliability.dirty_lines_invalidated += 1;
                }
                self.reliability.lines_invalidated += 1;
                self.states[idx] = LineState::fresh(
                    ProtectedDirectionBits::all_normal(
                        self.codec.layout().partitions(),
                        self.protection,
                    ),
                    self.fresh_history,
                );
            }
            MetadataFaultPolicy::FallbackBaseline => {
                self.degraded_lines.push(base);
                self.fifo.cancel_where(|u| u.location() == loc);
                // The array's physical content becomes the logical
                // truth: re-derive the logical view under the untrusted
                // direction belief, then declare every partition normal
                // and pin the line so the predictor leaves it alone.
                let dirs_mask = self.states[idx].dirs.mask();
                for p in 0..self.codec.layout().partitions() {
                    if dirs_mask >> p & 1 == 1 {
                        let (start, len) = self.codec.layout().range(p);
                        let line = self.cache.line_at_mut(loc);
                        cnt_encoding::popcount::invert_range(line.as_words_mut(), start, len);
                    }
                }
                self.states[idx].dirs.normalize();
                self.states[idx].pinned = true;
                self.reliability.lines_pinned += 1;
                self.charge_protection_repair(idx);
            }
        }
    }

    /// Verifies every valid line's metadata (used by flush and scrub).
    fn sweep_metadata(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        if self.protection == ProtectionMode::None {
            return report;
        }
        for set in 0..self.config.geometry.num_sets() {
            for way in 0..self.config.geometry.associativity() {
                let loc = LineLocation { set, way };
                if !self.cache.line_at(loc).is_valid() {
                    continue;
                }
                report.lines_checked += 1;
                match self.verify_line_metadata(loc) {
                    ProtectionVerdict::Clean => {}
                    ProtectionVerdict::CorrectedData(_) | ProtectionVerdict::CorrectedCheck => {
                        report.corrected += 1;
                    }
                    ProtectionVerdict::Uncorrectable => report.uncorrectable += 1,
                }
            }
        }
        report
    }

    /// One background scrub pass: verifies (and repairs where possible)
    /// the direction metadata of every valid line. Replay loops call this
    /// every N accesses so upsets on idle lines are caught before a
    /// second one lands and defeats SECDED.
    pub fn scrub_metadata(&mut self) -> ScrubReport {
        let report = self.sweep_metadata();
        self.reliability.scrub_passes += 1;
        self.reliability.scrub_lines_checked += report.lines_checked;
        report
    }

    /// Applies the oldest pending re-encoding, charging the switch write.
    /// Returns `false` when the FIFO is empty.
    fn apply_one_pending(&mut self) -> bool {
        let Some(update) = self.fifo.pop() else {
            return false;
        };
        self.apply_update(update.location(), update.flips, update.saving_fj, false);
        true
    }

    /// Re-encodes the line at `loc` by flipping `flips`, charging the
    /// switch writes. `inline` marks the flips as demand-path stalls.
    fn apply_update(&mut self, loc: LineLocation, flips: u64, saving_fj: f64, inline: bool) {
        // The queued decision was made against metadata that may have
        // upset since: verify (and possibly degrade) before re-encoding.
        if self.protection != ProtectionMode::None {
            self.verify_line_metadata(loc);
        }
        let idx = self.line_index(loc);
        let line = self.cache.line_at(loc);
        if !line.is_valid() {
            // Fills cancel their location's pending updates, so this is
            // reached only after a whole-cache reset or a fault-policy
            // invalidation that raced the drain; drop silently.
            return;
        }
        if self.states[idx].pinned {
            // FallbackBaseline pinned the line to normal encoding.
            return;
        }
        let state = &mut self.states[idx];
        state.dirs.apply_flips(flips);
        state.history.reset();
        let layout = *self.codec.layout();
        let partition_bits = layout.partition_bits();
        // Raw (pre-direction) popcounts of the flipped partitions, on the
        // stack so this path stays free of per-update heap allocation.
        // A multi-flip update re-counts the whole line in one unrolled
        // u64×4 pass; a single flip counts just its own range.
        let mut raw_counts = [0u32; cnt_encoding::MAX_PARTITIONS];
        let partitions = layout.partitions();
        if flips.count_ones() > 1 && partition_bits.is_multiple_of(64) {
            cnt_encoding::popcount::popcount_word_partitions(
                line.as_words(),
                (partition_bits / 64) as usize,
                &mut raw_counts[..partitions as usize],
            );
        } else {
            for p in 0..partitions {
                if flips >> p & 1 == 1 {
                    let (start, len) = layout.range(p);
                    raw_counts[p as usize] =
                        cnt_encoding::popcount::popcount_range(line.as_words(), start, len);
                }
            }
        }
        // Only flipped partitions are charged.
        for p in 0..partitions {
            if flips >> p & 1 == 1 {
                let raw = raw_counts[p as usize];
                let ones = if state.dirs.is_inverted(p) {
                    partition_bits - raw
                } else {
                    raw
                };
                self.meter
                    .charge_write_bits_kind(ones, partition_bits, ChargeKind::EncodeSwitch);
                self.counters.partition_flips += 1;
                if inline {
                    self.counters.inline_partition_flips += 1;
                }
            }
        }
        if self.config.meter_metadata {
            // The direction bits themselves are re-written.
            let state = &self.states[idx];
            self.meter.charge_write_bits_scaled(
                state.dirs.bits().inverted_count(),
                state.dirs.bits().storage_bits(),
                ChargeKind::MetadataWrite,
                self.config.metadata_energy_scale,
            );
            if self.protection != ProtectionMode::None {
                // ... and so are their protection check bits.
                self.meter.charge_write_bits_scaled(
                    state.dirs.check_ones(),
                    state.dirs.check_storage_bits(),
                    ChargeKind::ProtectionUpdate,
                    self.config.metadata_energy_scale,
                );
            }
        }
        self.counters.switches_applied += 1;
        // Projected savings realize only when the switch actually lands:
        // decisions dropped on FIFO overflow or cancelled by an eviction
        // never add here, which is exactly the projected/realized gap the
        // observability snapshots expose.
        self.counters.realized_saving_fj += saving_fj;
    }

    /// Applies every queued re-encoding immediately (e.g. before a
    /// simulation-ending flush), returning how many were applied.
    pub fn drain_pending(&mut self) -> usize {
        let mut n = 0;
        while self.apply_one_pending() {
            n += 1;
        }
        n
    }

    /// Drains pending updates, then writes all dirty lines back to memory
    /// (charging write-back reads), returning the number written back.
    pub fn flush(&mut self) -> usize {
        let mut memory = std::mem::take(&mut self.memory);
        let written = self.flush_through(&mut memory);
        self.memory = memory;
        written
    }

    /// [`flush`](Self::flush) against an external backing (for stacked
    /// levels).
    pub fn flush_through(&mut self, lower: &mut dyn Backing) -> usize {
        // Every line's directions are about to be trusted for the final
        // write-back: verify them all first (not counted as a scrub pass).
        self.sweep_metadata();
        self.drain_pending();
        let ways = self.config.geometry.associativity();
        let mut observer = MeterObserver {
            meter: &mut self.meter,
            states: &mut self.states,
            codec: &self.codec,
            fifo: &mut self.fifo,
            ways,
            fill_preference: self.fill_preference,
            zero_flag: self.zero_flag,
            protection: self.protection,
            fresh_history: self.fresh_history,
            metadata_scale: if self.config.meter_metadata {
                self.config.metadata_energy_scale
            } else {
                0.0
            },
        };
        self.cache.flush(lower, &mut observer)
    }

    /// H&D metadata bits per line, including protection check bits.
    fn total_metadata_bits_per_line(&self) -> u32 {
        self.config
            .policy
            .metadata_bits_per_line(self.config.geometry.line_bits())
            + self.protection.check_bits(self.codec.layout().partitions())
    }

    /// Produces the full energy/activity report.
    pub fn report(&self) -> EnergyReport {
        EnergyReport {
            name: self.config.name.clone(),
            policy: self.config.policy.to_string(),
            technology: self.config.energy.technology(),
            breakdown: self.meter.breakdown().clone(),
            stats: self.cache.stats().clone(),
            encoding: self.counters,
            fifo: *self.fifo.stats(),
            metadata_bits_per_line: self.total_metadata_bits_per_line(),
            reliability: self.reliability,
        }
    }

    /// [`report`](Self::report), but consuming the cache: the accumulated
    /// breakdown, statistics, and name move into the report instead of
    /// being cloned. Use at end of run when the cache is done.
    pub fn into_report(mut self) -> EnergyReport {
        let metadata_bits_per_line = self.total_metadata_bits_per_line();
        EnergyReport {
            name: std::mem::take(&mut self.config.name),
            policy: self.config.policy.to_string(),
            technology: self.config.energy.technology(),
            breakdown: self.meter.take_breakdown(),
            stats: self.cache.into_stats(),
            encoding: self.counters,
            fifo: *self.fifo.stats(),
            metadata_bits_per_line,
            reliability: self.reliability,
        }
    }

    /// The direction bits of the (valid) line at `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    pub fn direction_bits(&self, loc: LineLocation) -> &DirectionBits {
        self.states[self.line_index(loc)].dirs.bits()
    }

    /// The protected direction metadata (vector + check bits) of the
    /// line at `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    pub fn protected_direction_bits(&self, loc: LineLocation) -> &ProtectedDirectionBits {
        &self.states[self.line_index(loc)].dirs
    }

    /// Materializes the *stored* (encoded) form of the line at `loc`, as
    /// the SRAM array would hold it. Returns `None` for invalid lines.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    pub fn stored_line(&self, loc: LineLocation) -> Option<Vec<u64>> {
        let line: &CacheLine = self.cache.line_at(loc);
        if !line.is_valid() {
            return None;
        }
        let dirs = self.states[self.line_index(loc)].dirs.bits();
        Some(self.codec.apply(line.as_words(), dirs))
    }

    /// Iterates over all valid lines as `(location, logical line,
    /// direction bits)`.
    pub fn valid_lines(&self) -> impl Iterator<Item = (LineLocation, &CacheLine, &DirectionBits)> {
        self.cache
            .valid_lines()
            .map(move |(loc, line)| (loc, line, self.states[self.line_index(loc)].dirs.bits()))
    }

    fn line_index(&self, loc: LineLocation) -> usize {
        (loc.set * u64::from(self.config.geometry.associativity()) + u64::from(loc.way)) as usize
    }

    /// Fault injection for reliability studies: flips the stored direction
    /// bit of `partition` on the line at `loc` *without* re-encoding the
    /// data — simulating a soft-error upset in the H&D metadata array.
    /// From this point the affected partition decodes inverted: **silent
    /// data corruption**, the hazard the `fig13` experiment quantifies.
    ///
    /// Returns `false` (and injects nothing) if the line is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `loc` or `partition` is out of range.
    pub fn inject_direction_fault(&mut self, loc: LineLocation, partition: u32) -> bool {
        if !self.cache.line_at(loc).is_valid() {
            return false;
        }
        let idx = self.line_index(loc);
        // `upset_direction` (not a legal update) leaves the protection
        // check bits stale — exactly what a particle strike does, and what
        // the next verification must catch.
        self.states[idx].dirs.upset_direction(partition);
        self.reliability.faults_injected += 1;
        // The simulator stores *logical* data and derives the physical
        // stored bits as `logical ^ direction`. A metadata upset leaves
        // the physical bits untouched while the direction lies about
        // them, so the logical view inverts: toggle the direction AND
        // invert the partition's logical words — the stored form
        // `logical' ^ direction' = logical ^ direction` stays fixed, and
        // every subsequent read returns corrupted data, exactly as in
        // hardware. The dirty flag is preserved (an upset is not a write).
        let (start, len) = self.codec.layout().range(partition);
        let line = self.cache.line_at_mut(loc);
        // Mutating through `as_words_mut` leaves the dirty flag alone,
        // which is exactly right: an upset is not a write.
        cnt_encoding::popcount::invert_range(line.as_words_mut(), start, len);
        true
    }

    /// Fault injection into the protection *check* bits themselves: flips
    /// stored check bit `bit` of the line at `loc` without touching the
    /// direction vector or the data. SECDED corrects these; parity
    /// detects its own bit's upset.
    ///
    /// Returns `false` (and injects nothing) if the line is invalid or
    /// the active protection mode stores fewer than `bit + 1` check bits.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    pub fn inject_check_fault(&mut self, loc: LineLocation, bit: u32) -> bool {
        if !self.cache.line_at(loc).is_valid() {
            return false;
        }
        let idx = self.line_index(loc);
        if bit >= self.states[idx].dirs.check_storage_bits() {
            return false;
        }
        self.states[idx].dirs.upset_check(bit);
        self.reliability.faults_injected += 1;
        true
    }

    /// Fault injection into the history (H) counters: flips stored bit
    /// `bit` of the packed `A_num`/`Wr_num` register of the line at `loc`
    /// without updating the protection check bits — a soft-error upset in
    /// the H metadata array. Unprotected, the corrupted counters silently
    /// skew the next window's prediction (fired early or late, with a
    /// wrong `Wr_num`); protected, the next verification repairs them.
    ///
    /// Returns `false` (and injects nothing) if the line is invalid or
    /// the register stores fewer than `bit + 1` counter bits.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    pub fn inject_history_fault(&mut self, loc: LineLocation, bit: u32) -> bool {
        if !self.cache.line_at(loc).is_valid() {
            return false;
        }
        let idx = self.line_index(loc);
        if bit >= self.states[idx].history.data_bits() {
            return false;
        }
        self.states[idx].history.upset_bit(bit);
        self.reliability.faults_injected += 1;
        true
    }

    /// Stored data bits of each line's history (H) register — the valid
    /// `bit` range for [`inject_history_fault`](Self::inject_history_fault).
    pub fn history_data_bits(&self) -> u32 {
        self.fresh_history.data_bits()
    }

    /// Fault injection into the history register's protection *check*
    /// bits (the counterpart of [`inject_check_fault`](Self::inject_check_fault)
    /// for the H field).
    ///
    /// Returns `false` (and injects nothing) if the line is invalid or
    /// the active mode stores fewer than `bit + 1` check bits over the
    /// history register.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    pub fn inject_history_check_fault(&mut self, loc: LineLocation, bit: u32) -> bool {
        if !self.cache.line_at(loc).is_valid() {
            return false;
        }
        let idx = self.line_index(loc);
        if bit >= self.states[idx].history.check_storage_bits() {
            return false;
        }
        self.states[idx].history.upset_check(bit);
        self.reliability.faults_injected += 1;
        true
    }

    /// Audits the cache's internal invariants: per-line metadata shape,
    /// history-counter bounds, and FIFO referential integrity. Intended
    /// for tests and debugging; a healthy cache always passes.
    ///
    /// # Errors
    ///
    /// Returns an [`AuditError`] describing the first violated invariant.
    pub fn audit(&self) -> Result<(), AuditError> {
        let geometry = &self.config.geometry;
        let expected_states = geometry.num_lines() as usize;
        if self.states.len() != expected_states {
            return Err(AuditError::new(format!(
                "state table holds {} entries, geometry has {expected_states} lines",
                self.states.len()
            )));
        }
        let partitions = self.codec.layout().partitions();
        let window = self.predictor.as_ref().map(|p| p.config().window);
        for (i, state) in self.states.iter().enumerate() {
            if state.dirs.partitions() != partitions {
                return Err(AuditError::new(format!(
                    "line {i}: direction bits track {} partitions, codec has {partitions}",
                    state.dirs.partitions()
                )));
            }
            if state.history.window() != self.fresh_history.window() {
                return Err(AuditError::new(format!(
                    "line {i}: history register window {} does not match the cache's {}",
                    state.history.window(),
                    self.fresh_history.window()
                )));
            }
            // Counter-bound invariants hold on fault-free runs; injected
            // history upsets legitimately push the counters out of range
            // until the next verification repairs or resets them.
            if self.reliability.faults_injected == 0 {
                if state.history.writes() > state.history.accesses() {
                    return Err(AuditError::new(format!(
                        "line {i}: write counter {} exceeds access counter {}",
                        state.history.writes(),
                        state.history.accesses()
                    )));
                }
                if let Some(w) = window {
                    if state.history.accesses() >= w {
                        return Err(AuditError::new(format!(
                            "line {i}: history counter {} reached the window {w} without reset",
                            state.history.accesses()
                        )));
                    }
                }
            }
            // On a fault-free run the protection code must be clean for
            // every line; only injected upsets may break it (until the
            // next verification repairs or degrades the line).
            if self.reliability.faults_injected == 0
                && state.dirs.verdict() != ProtectionVerdict::Clean
            {
                return Err(AuditError::new(format!(
                    "line {i}: protection check bits inconsistent with the direction \
                     vector on a fault-free run"
                )));
            }
        }
        let partition_mask = if partitions == 64 {
            u64::MAX
        } else {
            (1u64 << partitions) - 1
        };
        for update in self.fifo.iter() {
            if update.set >= geometry.num_sets()
                || u64::from(update.way) >= u64::from(geometry.associativity())
            {
                return Err(AuditError::new(format!(
                    "fifo references out-of-range location set {} way {}",
                    update.set, update.way
                )));
            }
            if update.flips & !partition_mask != 0 {
                return Err(AuditError::new(format!(
                    "fifo flip mask {:#x} has bits above the {partitions}-partition layout",
                    update.flips
                )));
            }
            if update.flips == 0 {
                return Err(AuditError::new("fifo holds a no-op update".to_string()));
            }
            if !update.saving_fj.is_finite() || update.saving_fj < 0.0 {
                return Err(AuditError::new(format!(
                    "fifo update carries a non-finite or negative projected saving {}",
                    update.saving_fj
                )));
            }
            if !self.cache.line_at(update.location()).is_valid() {
                return Err(AuditError::new(format!(
                    "fifo update targets invalid line at set {} way {}",
                    update.set, update.way
                )));
            }
        }
        Ok(())
    }

    /// Captures the complete resumable state: lines, memory, per-line
    /// encoding metadata, the deferred-update FIFO, all counters, and the
    /// accumulated energy breakdown. Everything derived purely from the
    /// configuration (codec, predictor, threshold table) is *not*
    /// captured — it is rebuilt identically on restore.
    pub(crate) fn checkpoint_data(&self) -> CacheCheckpoint {
        CacheCheckpoint {
            cache: self.cache.snapshot(),
            memory: self.memory.snapshot(),
            states: self
                .states
                .iter()
                .map(|s| LineStateSnapshot {
                    dirs: s.dirs,
                    history: s.history,
                    last_pattern: s.last_pattern,
                    streak: s.streak,
                    pinned: s.pinned,
                })
                .collect(),
            fifo_queue: self.fifo.iter().copied().collect(),
            fifo_stats: *self.fifo.stats(),
            counters: self.counters,
            reliability: self.reliability,
            degraded_lines: self.degraded_lines.clone(),
            breakdown: self.meter.breakdown().clone(),
        }
    }

    /// Replaces the cache's state with `ckpt`, validating every shape
    /// against the live configuration *before* mutating anything: on
    /// error the cache is exactly as it was (never a partial restore).
    pub(crate) fn restore_from(&mut self, ckpt: CacheCheckpoint) -> Result<(), String> {
        let expected = self.config.geometry.num_lines() as usize;
        if ckpt.states.len() != expected {
            return Err(format!(
                "checkpoint carries {} line states, geometry has {expected} lines",
                ckpt.states.len()
            ));
        }
        let partitions = self.codec.layout().partitions();
        for (i, s) in ckpt.states.iter().enumerate() {
            if s.dirs.partitions() != partitions {
                return Err(format!(
                    "line {i}: direction bits track {} partitions, codec has {partitions}",
                    s.dirs.partitions()
                ));
            }
            if s.dirs.mode() != self.protection {
                return Err(format!(
                    "line {i}: direction protection {:?} does not match the configured {:?}",
                    s.dirs.mode(),
                    self.protection
                ));
            }
            if s.history.window() != self.fresh_history.window() {
                return Err(format!(
                    "line {i}: history window {} does not match the configured {}",
                    s.history.window(),
                    self.fresh_history.window()
                ));
            }
            if s.history.mode() != self.protection {
                return Err(format!(
                    "line {i}: history protection {:?} does not match the configured {:?}",
                    s.history.mode(),
                    self.protection
                ));
            }
        }
        // Build every fallible piece on the side first ...
        let memory = MainMemory::from_snapshot(ckpt.memory)?;
        let mut fifo = self.fifo.clone();
        fifo.restore(FifoSnapshot {
            queue: ckpt.fifo_queue,
            stats: ckpt.fifo_stats,
        })?;
        // ... then perform the one in-place (but itself all-or-nothing)
        // restore, and only after it succeeds commit the rest.
        self.cache.restore(ckpt.cache)?;
        self.memory = memory;
        self.fifo = fifo;
        self.states = ckpt
            .states
            .into_iter()
            .map(|s| LineState {
                dirs: s.dirs,
                history: s.history,
                last_pattern: s.last_pattern,
                streak: s.streak,
                pinned: s.pinned,
            })
            .collect();
        self.counters = ckpt.counters;
        self.reliability = ckpt.reliability;
        self.degraded_lines = ckpt.degraded_lines;
        self.meter.restore_breakdown(ckpt.breakdown);
        Ok(())
    }
}

pub(crate) fn bad_state(section: &str, what: impl Into<String>) -> CheckpointError {
    CheckpointError::BadState {
        section: section.to_string(),
        what: what.into(),
    }
}

impl Checkpointable for CntCache {
    fn section_name(&self) -> &'static str {
        "cache"
    }

    fn encode_state(&self) -> Result<Vec<u8>, CheckpointError> {
        serde_json::to_string(&self.checkpoint_data())
            .map(String::into_bytes)
            .map_err(|e| bad_state("cache", format!("serialize: {e}")))
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let text =
            std::str::from_utf8(bytes).map_err(|_| bad_state("cache", "payload is not UTF-8"))?;
        let ckpt: CacheCheckpoint =
            serde_json::from_str(text).map_err(|e| bad_state("cache", format!("decode: {e}")))?;
        self.restore_from(ckpt)
            .map_err(|what| bad_state("cache", what))
    }
}

/// The more severe of two protection verdicts, for combined reporting of
/// the D-bit and H-counter checks on one line.
fn worse_verdict(a: ProtectionVerdict, b: ProtectionVerdict) -> ProtectionVerdict {
    fn rank(v: ProtectionVerdict) -> u8 {
        match v {
            ProtectionVerdict::Clean => 0,
            ProtectionVerdict::CorrectedCheck => 1,
            ProtectionVerdict::CorrectedData(_) => 2,
            ProtectionVerdict::Uncorrectable => 3,
        }
    }
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

/// An internal invariant violated, as reported by [`CntCache::audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    message: String,
}

impl AuditError {
    fn new(message: String) -> Self {
        AuditError { message }
    }
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cache invariant violated: {}", self.message)
    }
}

impl std::error::Error for AuditError {}

/// The observer translating raw array events into energy charges on the
/// *stored* bit view.
struct MeterObserver<'a> {
    meter: &'a mut EnergyMeter,
    states: &'a mut [LineState],
    codec: &'a LineCodec,
    fifo: &'a mut UpdateFifo<PendingUpdate>,
    ways: u32,
    fill_preference: Option<BitPreference>,
    /// Zero-flag compression: all-zero words skip the array, paying only
    /// their (sidecar) flag access.
    zero_flag: bool,
    /// Direction-metadata protection active on this cache (fresh fills
    /// compute and charge their check bits here).
    protection: ProtectionMode,
    /// Template history register for freshly-filled lines.
    fresh_history: ProtectedHistory,
    /// Sidecar-array energy scale for the zero flags.
    metadata_scale: f64,
}

impl MeterObserver<'_> {
    fn index(&self, loc: LineLocation) -> usize {
        (loc.set * u64::from(self.ways) + u64::from(loc.way)) as usize
    }
}

impl ArrayObserver for MeterObserver<'_> {
    fn word_read(&mut self, loc: LineLocation, word_index: usize, value: u64) {
        if self.zero_flag {
            // The flag is always read; a set flag short-circuits the word.
            self.meter.charge_read_bits_scaled(
                u32::from(value == 0),
                1,
                ChargeKind::MetadataRead,
                self.metadata_scale,
            );
            if value != 0 {
                self.meter
                    .charge_read_word_kind(value, 64, ChargeKind::DataRead);
            }
            return;
        }
        let dirs = &self.states[self.index(loc)].dirs;
        let stored = self.codec.stored_word(value, dirs, word_index);
        self.meter
            .charge_read_word_kind(stored, 64, ChargeKind::DataRead);
    }

    fn word_written(&mut self, loc: LineLocation, word_index: usize, _old: u64, new: u64) {
        if self.zero_flag {
            // The flag is re-written; a zero word writes nothing else.
            self.meter.charge_write_bits_scaled(
                u32::from(new == 0),
                1,
                ChargeKind::MetadataWrite,
                self.metadata_scale,
            );
            if new != 0 {
                self.meter
                    .charge_write_word_kind(new, 64, ChargeKind::DataWrite);
            }
            return;
        }
        let dirs = &self.states[self.index(loc)].dirs;
        let stored = self.codec.stored_word(new, dirs, word_index);
        self.meter
            .charge_write_word_kind(stored, 64, ChargeKind::DataWrite);
    }

    fn line_filled(&mut self, loc: LineLocation, _base: Address, data: &[u64]) {
        let idx = self.index(loc);
        // Any queued update belongs to the evicted occupant of this slot.
        self.fifo.cancel_where(|u| u.location() == loc);
        if self.zero_flag {
            self.states[idx] = LineState::fresh(
                ProtectedDirectionBits::all_normal(1, self.protection),
                self.fresh_history,
            );
            let nonzero = data.iter().filter(|&&w| w != 0).count() as u32;
            // One flag per word is written; only non-zero words hit the array.
            self.meter.charge_write_bits_scaled(
                nonzero,
                data.len() as u32,
                ChargeKind::MetadataWrite,
                self.metadata_scale,
            );
            for &w in data.iter().filter(|&&w| w != 0) {
                self.meter
                    .charge_write_word_kind(w, 64, ChargeKind::LineFill);
            }
            return;
        }
        let dirs = match self.fill_preference {
            Some(pref) => self.codec.choose_directions(data, pref),
            None => DirectionBits::all_normal(self.codec.layout().partitions()),
        };
        let dirs = ProtectedDirectionBits::new(dirs, self.protection);
        self.states[idx] = LineState::fresh(dirs, self.fresh_history);
        if self.protection != ProtectionMode::None {
            // A fresh line's check bits are computed and written with it.
            self.meter.charge_write_bits_scaled(
                dirs.check_ones(),
                dirs.check_storage_bits(),
                ChargeKind::ProtectionUpdate,
                self.metadata_scale,
            );
        }
        let ones = self.codec.stored_popcount(data, dirs.bits());
        self.meter.charge_write_bits_kind(
            ones,
            self.codec.layout().line_bits(),
            ChargeKind::LineFill,
        );
    }

    fn line_evicted(&mut self, loc: LineLocation, _base: Address, data: &[u64], dirty: bool) {
        if !dirty {
            return; // clean lines drop without an array read
        }
        if self.zero_flag {
            self.meter.charge_read_bits_scaled(
                data.iter().filter(|&&w| w == 0).count() as u32,
                data.len() as u32,
                ChargeKind::MetadataRead,
                self.metadata_scale,
            );
            for &w in data.iter().filter(|&&w| w != 0) {
                self.meter
                    .charge_read_word_kind(w, 64, ChargeKind::Writeback);
            }
            return;
        }
        let dirs = &self.states[self.index(loc)].dirs;
        let ones = self.codec.stored_popcount(data, dirs);
        self.meter.charge_read_bits_kind(
            ones,
            self.codec.layout().line_bits(),
            ChargeKind::Writeback,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AdaptiveParams;
    use cnt_energy::SramEnergyModel;

    fn config(policy: EncodingPolicy) -> CntCacheConfig {
        CntCacheConfig::builder()
            .size_bytes(4096)
            .line_bytes(64)
            .associativity(2)
            .policy(policy)
            .build()
            .expect("valid config")
    }

    fn adaptive(window: u32, partitions: u32) -> EncodingPolicy {
        EncodingPolicy::Adaptive(AdaptiveParams {
            window,
            partitions,
            ..AdaptiveParams::paper_default()
        })
    }

    #[test]
    fn correctness_is_policy_independent() {
        for policy in [
            EncodingPolicy::None,
            EncodingPolicy::StaticInvert {
                preference: BitPreference::MoreOnes,
                partitions: 8,
            },
            adaptive(4, 8),
        ] {
            let mut cache = CntCache::new(config(policy)).expect("valid cache");
            for i in 0..64u64 {
                cache
                    .write(Address::new(i * 8), 8, i * 0x0101)
                    .expect("write");
            }
            for i in 0..64u64 {
                let v = cache.read(Address::new(i * 8), 8).expect("read");
                assert_eq!(v, i * 0x0101, "policy {policy} corrupted data");
            }
            cache.flush();
            for i in 0..64u64 {
                assert_eq!(cache.memory_mut().load(Address::new(i * 8), 8), i * 0x0101);
            }
        }
    }

    #[test]
    fn baseline_charges_logical_bits() {
        let mut cache = CntCache::new(config(EncodingPolicy::None)).expect("valid");
        cache.write(Address::new(0), 8, u64::MAX).expect("write");
        let b = cache.meter().breakdown();
        // Fill wrote a zero line (64 B of zeros from cold memory), then the
        // demand write stored 64 one-bits.
        assert_eq!(b.bits_written_one, 64);
        assert_eq!(b.bits(ChargeKind::LineFill), 512);
        assert_eq!(b.bits(ChargeKind::DataWrite), 64);
    }

    #[test]
    fn static_invert_stores_preferred_bits() {
        // All-zero data with a MoreOnes static policy must be stored as
        // all ones.
        let mut cache = CntCache::new(config(EncodingPolicy::StaticInvert {
            preference: BitPreference::MoreOnes,
            partitions: 8,
        }))
        .expect("valid");
        cache.read(Address::new(0), 8).expect("read");
        assert!(cache.cache.peek(Address::new(0)).is_some(), "line resident");
        let (loc, line, dirs) = cache.valid_lines().next().expect("one line");
        assert_eq!(line.popcount(), 0, "logical content is zero");
        assert_eq!(dirs.inverted_count(), 8, "all partitions inverted");
        let stored = cache.stored_line(loc).expect("valid");
        assert!(stored.iter().all(|&w| w == u64::MAX));
        // The fill charged 512 one-bit writes.
        assert_eq!(cache.meter().breakdown().bits_written_one, 512);
    }

    #[test]
    fn adaptive_read_loop_flips_zero_line_to_ones() {
        let mut cache = CntCache::new(config(adaptive(4, 8))).expect("valid");
        // Read the same zero line many times: the predictor must decide to
        // invert (stored ones are cheaper to read) and the FIFO must drain.
        for _ in 0..16 {
            cache.read(Address::new(0), 8).expect("read");
        }
        let report = cache.report();
        assert!(
            report.encoding.windows >= 3,
            "windows: {}",
            report.encoding.windows
        );
        assert!(report.encoding.switches_applied >= 1, "no switch applied");
        let (loc, _, dirs) = cache.valid_lines().next().expect("resident line");
        assert_eq!(dirs.inverted_count(), 8);
        let stored = cache.stored_line(loc).expect("valid");
        assert!(stored.iter().all(|&w| w == u64::MAX));
    }

    #[test]
    fn adaptive_saves_energy_on_skewed_read_workload() {
        // The headline mechanism: reading mostly-zero data repeatedly is
        // cheaper with adaptive encoding than without.
        let run = |policy| {
            let mut cache = CntCache::new(config(policy)).expect("valid");
            for round in 0..64 {
                for line in 0..8u64 {
                    let _ = round;
                    cache.read(Address::new(line * 64), 8).expect("read");
                }
            }
            cache.total_energy()
        };
        let baseline = run(EncodingPolicy::None);
        let adaptive_e = run(adaptive(15, 8));
        assert!(
            adaptive_e < baseline,
            "adaptive {adaptive_e} must beat baseline {baseline}"
        );
    }

    #[test]
    fn eviction_cancels_pending_updates() {
        // Create a switch decision, then evict the line before any idle
        // slot drains it; the update must not be applied to the newcomer.
        // drain_per_access = 0 keeps the update queued until we say so.
        let policy = EncodingPolicy::Adaptive(AdaptiveParams {
            window: 4,
            partitions: 8,
            drain_per_access: 0,
            ..AdaptiveParams::paper_default()
        });
        let mut cache = CntCache::new(config(policy)).expect("valid");
        // 4 misses+reads on line 0 complete a window on the 4th access
        // (a miss is not a hit, so nothing drains).
        for _ in 0..4 {
            cache.read(Address::new(0x000), 8).expect("read");
        }
        // The decision (flip to ones) is queued. Now evict line 0 by
        // touching two conflicting lines (2-way set).
        cache.read(Address::new(0x1000), 8).expect("read");
        cache.read(Address::new(0x2000), 8).expect("read");
        cache.read(Address::new(0x3000), 8).expect("read");
        // The queued update was cancelled by the fill into its slot.
        assert_eq!(cache.fifo_stats().pushed, 1, "one decision was queued");
        assert_eq!(cache.encoding_counters().switches_applied, 0);
        assert_eq!(cache.drain_pending(), 0, "nothing left to apply");
        // And no state was corrupted: all resident lines decode correctly.
        for (loc, line, dirs) in cache.valid_lines().collect::<Vec<_>>() {
            let stored = cache.stored_line(loc).expect("valid");
            let decoded = cache.codec.decode(&stored, dirs);
            assert_eq!(decoded, line.as_words());
        }
    }

    #[test]
    fn flush_accounts_writebacks_on_stored_bits() {
        let mut cache = CntCache::new(config(EncodingPolicy::None)).expect("valid");
        cache.write(Address::new(0), 8, 0xF0F0).expect("write");
        let before = cache.meter().breakdown().bits(ChargeKind::Writeback);
        assert_eq!(before, 0);
        let flushed = cache.flush();
        assert_eq!(flushed, 1);
        assert_eq!(cache.meter().breakdown().bits(ChargeKind::Writeback), 512);
        assert_eq!(cache.memory_mut().load(Address::new(0), 8), 0xF0F0);
    }

    #[test]
    fn metadata_metering_can_be_disabled() {
        let mut with_md = CntCacheConfig::builder()
            .policy(EncodingPolicy::adaptive_default())
            .build()
            .expect("valid");
        with_md.meter_metadata = true;
        let mut without_md = with_md.clone();
        without_md.meter_metadata = false;

        let run = |cfg| {
            let mut cache = CntCache::new(cfg).expect("valid");
            for i in 0..32u64 {
                cache.read(Address::new(i * 8), 8).expect("read");
            }
            let b = cache.meter().breakdown().clone();
            b.energy(ChargeKind::MetadataRead) + b.energy(ChargeKind::MetadataWrite)
        };
        assert!(run(with_md).femtojoules() > 0.0);
        assert_eq!(run(without_md).femtojoules(), 0.0);
    }

    #[test]
    fn cmos_model_yields_higher_energy() {
        let mut cnfet_cfg = config(EncodingPolicy::None);
        cnfet_cfg.energy = SramEnergyModel::cnfet_default();
        let mut cmos_cfg = config(EncodingPolicy::None);
        cmos_cfg.energy = SramEnergyModel::cmos_default();

        let run = |cfg| {
            let mut cache = CntCache::new(cfg).expect("valid");
            for i in 0..64u64 {
                cache.write(Address::new(i * 8), 8, 0xABCD).expect("write");
                cache.read(Address::new(i * 8), 8).expect("read");
            }
            cache.total_energy()
        };
        assert!(run(cmos_cfg) > run(cnfet_cfg) * 1.5);
    }

    #[test]
    fn inline_updates_apply_immediately_and_count_stalls() {
        let policy = EncodingPolicy::Adaptive(AdaptiveParams {
            window: 4,
            partitions: 8,
            inline_updates: true,
            ..AdaptiveParams::paper_default()
        });
        let mut cache = CntCache::new(config(policy)).expect("valid");
        for _ in 0..4 {
            cache.read(Address::new(0), 8).expect("read");
        }
        let c = cache.encoding_counters();
        assert_eq!(c.switches_applied, 1, "inline decision applies at once");
        assert_eq!(c.inline_partition_flips, 8);
        assert_eq!(cache.fifo_stats().pushed, 0, "the FIFO is bypassed");
        // The FIFO design pays zero stall cycles on the same workload.
        let mut fifo_cache = CntCache::new(config(adaptive(4, 8))).expect("valid");
        for _ in 0..4 {
            fifo_cache.read(Address::new(0), 8).expect("read");
        }
        assert_eq!(fifo_cache.encoding_counters().inline_partition_flips, 0);
    }

    #[test]
    fn sticky_classifier_suppresses_alternating_patterns() {
        // Alternate read-only and write-only windows on one line: with
        // confirm_windows = 2 the pattern never stabilizes, so no switch
        // is ever issued, while the plain predictor churns.
        let run = |confirm_windows: u32| {
            let policy = EncodingPolicy::Adaptive(AdaptiveParams {
                window: 4,
                partitions: 1,
                delta_t: 0.0,
                confirm_windows,
                ..AdaptiveParams::paper_default()
            });
            let mut cache = CntCache::new(config(policy)).expect("valid");
            for window in 0..32 {
                for _ in 0..4 {
                    if window % 2 == 0 {
                        cache.read(Address::new(0), 8).expect("read");
                    } else {
                        cache.write(Address::new(0), 8, u64::MAX).expect("write");
                    }
                }
            }
            (
                cache.encoding_counters().switch_decisions,
                cache.encoding_counters().suppressed_by_confirmation,
            )
        };
        let (plain_switches, plain_suppressed) = run(1);
        let (sticky_switches, sticky_suppressed) = run(2);
        assert_eq!(plain_suppressed, 0);
        assert!(plain_switches > 0, "the plain predictor must churn here");
        assert!(
            sticky_switches < plain_switches,
            "sticky ({sticky_switches}) must cut churn vs plain ({plain_switches})"
        );
        assert!(sticky_suppressed > 0);
    }

    #[test]
    fn write_through_cache_meters_and_preserves_data() {
        let mut cfg = config(adaptive(4, 8));
        cfg.write_mode = cnt_sim::WriteMode::WriteThrough;
        let mut cache = CntCache::new(cfg).expect("valid");
        for i in 0..32u64 {
            cache.write(Address::new(i * 8), 8, i).expect("write");
        }
        for i in 0..32u64 {
            assert_eq!(cache.read(Address::new(i * 8), 8).expect("read"), i);
            // Already in memory without any flush.
            assert_eq!(cache.memory_mut().load(Address::new(i * 8), 8), i);
        }
        assert_eq!(cache.stats().writethroughs, 32);
        assert_eq!(cache.flush(), 0, "write-through lines are never dirty");
    }

    #[test]
    fn write_around_misses_skip_encoding_state() {
        let mut cfg = config(adaptive(4, 8));
        cfg.write_mode = cnt_sim::WriteMode::WriteThroughNoAllocate;
        let mut cache = CntCache::new(cfg).expect("valid");
        // Pure store misses: nothing allocates, no windows complete.
        for i in 0..64u64 {
            cache.write(Address::new(i * 64), 8, i).expect("write");
        }
        assert_eq!(cache.valid_lines().count(), 0);
        assert_eq!(cache.encoding_counters().windows, 0);
        // Data is still architecturally correct.
        for i in 0..64u64 {
            assert_eq!(cache.memory_mut().load(Address::new(i * 64), 8), i);
        }
    }

    #[test]
    fn timing_model_charges_only_inline_designs() {
        use crate::report::TimingModel;
        let run = |inline_updates: bool| {
            let policy = EncodingPolicy::Adaptive(AdaptiveParams {
                window: 4,
                partitions: 8,
                inline_updates,
                ..AdaptiveParams::paper_default()
            });
            let mut cache = CntCache::new(config(policy)).expect("valid");
            for _ in 0..64 {
                cache.read(Address::new(0), 8).expect("read");
            }
            cache.report()
        };
        let fifo = run(false);
        let inline = run(true);
        let timing = TimingModel::default();
        assert!(
            timing.total_cycles(&inline) > timing.total_cycles(&fifo),
            "inline re-encodes must cost cycles"
        );
        assert!(timing.overhead(&fifo, &inline) > 0.0);
    }

    #[test]
    fn zero_flag_skips_zero_words() {
        let mut cache = CntCache::new(config(EncodingPolicy::ZeroFlag)).expect("valid");
        // A zero line: the fill writes only flags, reads cost only flags.
        for _ in 0..8 {
            cache.read(Address::new(0), 8).expect("read");
        }
        let b = cache.meter().breakdown();
        assert_eq!(b.bits(ChargeKind::DataRead), 0, "zero words skip the array");
        assert_eq!(b.bits(ChargeKind::LineFill), 0, "zero fill skips the array");
        assert!(b.bits(ChargeKind::MetadataRead) > 0, "flags are read");

        // A dense word pays the full array cost plus its flag.
        cache.write(Address::new(0x40), 8, u64::MAX).expect("write");
        let b = cache.meter().breakdown();
        assert_eq!(b.bits(ChargeKind::DataWrite), 64);
        cache.read(Address::new(0x40), 8).expect("read");
        assert_eq!(cache.meter().breakdown().bits(ChargeKind::DataRead), 64);
    }

    #[test]
    fn zero_flag_preserves_semantics_and_audit() {
        let mut cache = CntCache::new(config(EncodingPolicy::ZeroFlag)).expect("valid");
        for i in 0..128u64 {
            cache.write(Address::new(i * 8), 8, i % 3).expect("write");
        }
        for i in 0..128u64 {
            assert_eq!(cache.read(Address::new(i * 8), 8).expect("read"), i % 3);
        }
        cache.flush();
        for i in 0..128u64 {
            assert_eq!(cache.memory_mut().load(Address::new(i * 8), 8), i % 3);
        }
        assert!(cache.audit().is_ok());
        assert_eq!(cache.encoding_counters().windows, 0, "no predictor runs");
    }

    #[test]
    fn zero_flag_beats_baseline_on_zero_data_only() {
        let run = |policy, value: u64| {
            let mut cache = CntCache::new(config(policy)).expect("valid");
            for round in 0..16 {
                for line in 0..8u64 {
                    let _ = round;
                    cache
                        .write(Address::new(line * 64), 8, value)
                        .expect("write");
                    cache.read(Address::new(line * 64), 8).expect("read");
                }
            }
            cache.total_energy()
        };
        // Mostly-zero traffic: zero-flag wins big.
        let ratio_zero = run(EncodingPolicy::ZeroFlag, 0).ratio(run(EncodingPolicy::None, 0));
        assert!(ratio_zero < 0.2, "zero data: ratio {ratio_zero}");
        // Dense written words pay the full array cost either way; only the
        // untouched zero words of each line (fills) are skipped, so the
        // advantage nearly vanishes.
        let ratio_dense =
            run(EncodingPolicy::ZeroFlag, u64::MAX).ratio(run(EncodingPolicy::None, u64::MAX));
        assert!(
            ratio_dense > 0.85 && ratio_dense < 1.05,
            "dense data: ratio {ratio_dense}"
        );
    }

    /// A deterministic mixed read/write stream with enough conflict
    /// misses and window completions to exercise every piece of state.
    fn churn(cache: &mut CntCache, range: std::ops::Range<u64>) {
        for i in range {
            let addr = Address::new((i.wrapping_mul(0x61C8_8647) % 0x2000) & !7);
            if i % 3 == 0 {
                cache.write(addr, 8, i.wrapping_mul(0x9E37)).expect("write");
            } else {
                cache.read(addr, 8).expect("read");
            }
        }
    }

    fn report_json(cache: &CntCache) -> String {
        serde_json::to_string(&cache.report()).expect("report serializes")
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let mut cfg = config(adaptive(4, 8));
        cfg.protection = ProtectionMode::Secded;
        // Uninterrupted control run.
        let mut control = CntCache::new(cfg.clone()).expect("valid");
        churn(&mut control, 0..300);

        // Checkpoint halfway, continue the original ...
        let mut original = CntCache::new(cfg.clone()).expect("valid");
        churn(&mut original, 0..150);
        let bytes = original.encode_state().expect("encodes");
        churn(&mut original, 150..300);

        // ... and resume a fresh cache from the checkpoint.
        let mut resumed = CntCache::new(cfg).expect("valid");
        resumed.restore_state(&bytes).expect("restores");
        assert!(resumed.audit().is_ok(), "restored cache must audit clean");
        churn(&mut resumed, 150..300);

        let expected = report_json(&control);
        assert_eq!(report_json(&original), expected);
        assert_eq!(report_json(&resumed), expected, "resume diverged");
        assert_eq!(
            resumed.fifo_stats(),
            control.fifo_stats(),
            "FIFO history diverged"
        );
        // The backing memories agree too.
        assert_eq!(
            serde_json::to_string(&resumed.memory_mut().snapshot()).expect("json"),
            serde_json::to_string(&control.memory_mut().snapshot()).expect("json"),
        );
    }

    #[test]
    fn restore_rejects_mismatched_state_untouched() {
        let mut donor = CntCache::new(config(adaptive(4, 8))).expect("valid");
        churn(&mut donor, 0..100);
        let bytes = donor.encode_state().expect("encodes");

        // Same geometry, different predictor window: history registers
        // do not fit.
        let mut other_window = CntCache::new(config(adaptive(15, 8))).expect("valid");
        churn(&mut other_window, 0..10);
        let before = report_json(&other_window);
        let err = other_window.restore_state(&bytes).expect_err("must refuse");
        assert!(
            matches!(err, CheckpointError::BadState { .. }),
            "unexpected error {err:?}"
        );
        assert_eq!(report_json(&other_window), before, "partial restore");

        // Different geometry: wrong number of line states.
        let big = CntCacheConfig::builder()
            .size_bytes(8192)
            .line_bytes(64)
            .associativity(2)
            .policy(adaptive(4, 8))
            .build()
            .expect("valid");
        let mut other_geometry = CntCache::new(big).expect("valid");
        assert!(matches!(
            other_geometry.restore_state(&bytes),
            Err(CheckpointError::BadState { .. })
        ));

        // Garbage payload.
        let mut target = CntCache::new(config(adaptive(4, 8))).expect("valid");
        assert!(matches!(
            target.restore_state(b"not json"),
            Err(CheckpointError::BadState { .. })
        ));
    }

    #[test]
    fn unprotected_history_fault_skews_predictions_silently() {
        let run = |inject: bool| {
            let mut cache = CntCache::new(config(adaptive(8, 8))).expect("valid");
            // Make line 0 resident and two accesses into its window.
            for _ in 0..3 {
                cache.read(Address::new(0), 8).expect("read");
            }
            if inject {
                // Flip A_num bit 2: counter 3 -> 7, one short of the
                // window — the next access fires the window early and
                // every later boundary lands 4 accesses sooner.
                assert!(cache.inject_history_fault(LineLocation { set: 0, way: 0 }, 2));
            }
            // 36 accesses total: the clean run completes windows at
            // accesses 8/16/24/32, the skewed run at 4/12/20/28/36.
            for _ in 0..33 {
                cache.read(Address::new(0), 8).expect("read");
            }
            cache
        };
        let clean = run(false);
        let skewed = run(true);
        assert_ne!(
            clean.encoding_counters().windows,
            skewed.encoding_counters().windows,
            "the upset must shift every subsequent window boundary"
        );
        // ... and nothing detected it: that is the silent skew.
        assert_eq!(skewed.reliability_counters().faults_detected, 0);
    }

    #[test]
    fn protected_history_fault_is_repaired_with_zero_skew() {
        let run = |inject: bool| {
            let mut cfg = config(adaptive(8, 8));
            cfg.protection = ProtectionMode::Secded;
            let mut cache = CntCache::new(cfg).expect("valid");
            for _ in 0..3 {
                cache.read(Address::new(0), 8).expect("read");
            }
            if inject {
                assert!(cache.inject_history_fault(LineLocation { set: 0, way: 0 }, 2));
            }
            for _ in 0..32 {
                cache.read(Address::new(0), 8).expect("read");
            }
            cache
        };
        let clean = run(false);
        let faulted = run(true);
        assert_eq!(
            clean.encoding_counters(),
            faulted.encoding_counters(),
            "SECDED must repair the H counters before they skew a window"
        );
        assert!(faulted.reliability_counters().faults_corrected >= 1);
        assert_eq!(faulted.reliability_counters().faults_uncorrected, 0);
    }

    #[test]
    fn history_check_faults_are_detected() {
        let mut cfg = config(adaptive(8, 8));
        cfg.protection = ProtectionMode::Secded;
        let mut cache = CntCache::new(cfg).expect("valid");
        cache.read(Address::new(0), 8).expect("read");
        assert!(cache.inject_history_check_fault(LineLocation { set: 0, way: 0 }, 0));
        cache.read(Address::new(0), 8).expect("read");
        assert!(cache.reliability_counters().faults_corrected >= 1);
    }

    #[test]
    fn report_captures_activity() {
        let mut cache = CntCache::new(config(adaptive(4, 8))).expect("valid");
        for _ in 0..8 {
            cache.read(Address::new(0), 8).expect("read");
        }
        let r = cache.report();
        assert_eq!(r.stats.accesses(), 8);
        assert!(r.total().femtojoules() > 0.0);
        assert_eq!(r.metadata_bits_per_line, 8 + 6); // W=4 -> 2x3 bits, 8 dirs
        assert!(r.policy.contains("adaptive"));
    }
}

//! # CNT-Cache
//!
//! A reproduction of *"CNT-Cache: an Energy-Efficient Carbon Nanotube Cache
//! with Adaptive Encoding"* (DATE 2020) as a production-quality Rust
//! library.
//!
//! CNFET SRAM cells have strongly asymmetric access energies — writing a
//! `1` costs ≈10× writing a `0`, and reading a `0` costs far more than
//! reading a `1`. CNT-Cache exploits this by storing each cache line (or
//! each *partition* of a line) either as-is or inverted, predicting the
//! best encoding from a window of the line's recent accesses and deferring
//! re-encoding writes through a FIFO so the demand path never stalls.
//!
//! The workspace layers:
//!
//! | crate | role |
//! |-------|------|
//! | [`cnt_energy`] | per-bit CNFET/CMOS energy models and accounting |
//! | [`cnt_sim`] | data-carrying set-associative cache simulator |
//! | [`cnt_encoding`] | codec, predictor, thresholds, FIFOs (the paper's Section III) |
//! | `cnt-cache` (this crate) | [`CntCache`]: the integrated, metered cache |
//! | `cnt-workloads` | benchmark kernels and synthetic trace generators |
//! | `cnt-bench` | the experiment harness regenerating every table/figure |
//!
//! # Quickstart
//!
//! ```
//! use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
//! use cnt_sim::Address;
//!
//! // The paper's D-Cache: 32 KiB, 64 B lines, 8-way — once as the plain
//! // CNFET baseline, once with adaptive encoding.
//! let baseline_cfg = CntCacheConfig::builder().name("baseline").build()?;
//! let cnt_cfg = CntCacheConfig::builder()
//!     .name("CNT-Cache")
//!     .policy(EncodingPolicy::adaptive_default())
//!     .build()?;
//!
//! let mut baseline = CntCache::new(baseline_cfg)?;
//! let mut cnt = CntCache::new(cnt_cfg)?;
//!
//! // A read-heavy loop over sparse (mostly-zero) data.
//! for round in 0..32 {
//!     for line in 0..16u64 {
//!         let addr = Address::new(line * 64);
//!         if round == 0 {
//!             baseline.write(addr, 8, 1)?;
//!             cnt.write(addr, 8, 1)?;
//!         } else {
//!             baseline.read(addr, 8)?;
//!             cnt.read(addr, 8)?;
//!         }
//!     }
//! }
//!
//! let saving = cnt.report().saving_vs(&baseline.report());
//! assert!(saving > 0.0, "CNT-Cache saves dynamic energy: {saving:.1}%");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnt;
mod config;
mod hierarchy;
mod policy;
mod report;

pub use cnt::{AuditError, CntCache, PendingUpdate, ScrubReport};
pub use config::{CntCacheConfig, CntCacheConfigBuilder, ConfigError};
pub use hierarchy::{CntHierarchy, CntHierarchyConfig};
pub use policy::{AdaptiveParams, EncodingPolicy, MetadataFaultPolicy};
pub use report::{ComparisonRow, EncodingCounters, EnergyReport, ReliabilityCounters, TimingModel};

/// Convenience re-exports of the most commonly used substrate types.
pub mod prelude {
    pub use crate::{
        AdaptiveParams, CntCache, CntCacheConfig, ComparisonRow, EncodingPolicy, EnergyReport,
        MetadataFaultPolicy,
    };
    pub use cnt_encoding::{BitPreference, OverflowPolicy, ProtectionMode};
    pub use cnt_energy::{ChargeKind, Energy, SramEnergyModel};
    pub use cnt_sim::trace::{AccessKind, MemoryAccess, Trace};
    pub use cnt_sim::{Address, CacheGeometry, FillPattern, ReplacementKind};
}

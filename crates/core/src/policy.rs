//! Encoding policies: what, if anything, the cache does about bit values.

use std::fmt;

use serde::{Deserialize, Serialize};

use cnt_encoding::{BitPreference, OverflowPolicy};

/// Parameters of the adaptive (predictor-driven) encoding policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveParams {
    /// Prediction window `W` in accesses per line (paper default: 15).
    pub window: u32,
    /// Encoding partitions per line (1 = the paper's baseline full-line
    /// encoding; 8 is the partitioned default).
    pub partitions: u32,
    /// Hysteresis margin `ΔT` in `[0, 1)`; 0 disables hysteresis.
    pub delta_t: f64,
    /// Capacity of the deferred-update FIFO.
    pub fifo_capacity: usize,
    /// What happens when the FIFO is full.
    pub overflow: OverflowPolicy,
    /// Re-encoding updates drained per idle slot (a demand hit is treated
    /// as an idle fill-bandwidth slot).
    pub drain_per_access: usize,
    /// If set, newly-filled lines are immediately encoded greedily with
    /// this preference instead of being stored as-is.
    pub fill_preference: Option<BitPreference>,
    /// Apply re-encodings *inline* at the window boundary instead of
    /// deferring them through the FIFO. This models a design without the
    /// paper's data/index FIFOs: the demand path stalls for the re-encode
    /// write (see the timing ablation, experiment `table5`).
    pub inline_updates: bool,
    /// Number of consecutive windows that must agree on the access-pattern
    /// classification before a switch is allowed. `1` is the paper's
    /// Algorithm 1; larger values add a *sticky classifier* that damps the
    /// flip-flop thrash on balanced read/write mixes (experiment `fig10`).
    pub confirm_windows: u32,
}

impl AdaptiveParams {
    /// The paper's configuration: `W = 15` (the draft's "checkpoint"), 8
    /// partitions, `ΔT = 0.1` hysteresis (the draft explores this margin;
    /// 0.1 suppresses the flip-flop churn on ≈50 %-dense data that would
    /// otherwise cost energy — see the `fig7` sweep), an 8-deep FIFO
    /// draining one update per idle slot, plain fills.
    pub fn paper_default() -> Self {
        AdaptiveParams {
            window: 15,
            partitions: 8,
            delta_t: 0.1,
            fifo_capacity: 8,
            overflow: OverflowPolicy::DropNewest,
            drain_per_access: 1,
            fill_preference: None,
            inline_updates: false,
            confirm_windows: 1,
        }
    }
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams::paper_default()
    }
}

/// The encoding behaviour of a [`CntCache`](crate::CntCache).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum EncodingPolicy {
    /// No encoding: the baseline CNFET cache the paper compares against.
    #[default]
    None,
    /// Static data-bus-inversion-like encoding: each line is encoded once
    /// at fill time toward the given preference and never re-evaluated.
    StaticInvert {
        /// Which stored bit value fills favour.
        preference: BitPreference,
        /// Encoding partitions per line.
        partitions: u32,
    },
    /// The CNT-Cache contribution: window-based prediction with deferred
    /// re-encoding.
    Adaptive(AdaptiveParams),
    /// Related-work comparator: zero-flag compression ("dynamic zero
    /// compression"-style). Each 64-bit word carries a flag bit; all-zero
    /// words cost only their flag access instead of a full array
    /// read/write. No inversion, no prediction.
    ZeroFlag,
}

impl EncodingPolicy {
    /// The paper's CNT-Cache configuration.
    pub fn adaptive_default() -> Self {
        EncodingPolicy::Adaptive(AdaptiveParams::paper_default())
    }

    /// Number of encoding partitions this policy tracks per line.
    pub fn partitions(&self) -> u32 {
        match self {
            EncodingPolicy::None | EncodingPolicy::ZeroFlag => 1,
            EncodingPolicy::StaticInvert { partitions, .. } => *partitions,
            EncodingPolicy::Adaptive(p) => p.partitions,
        }
    }

    /// Metadata bits each `line_bits`-bit line carries under this policy:
    /// direction bits (plus history counters when adaptive), or one
    /// zero-flag per 64-bit word.
    pub fn metadata_bits_per_line(&self, line_bits: u32) -> u32 {
        match self {
            EncodingPolicy::None => 0,
            EncodingPolicy::StaticInvert { partitions, .. } => *partitions,
            EncodingPolicy::Adaptive(p) => {
                p.partitions + cnt_encoding::AccessHistory::storage_bits(p.window)
            }
            EncodingPolicy::ZeroFlag => line_bits / 64,
        }
    }
}

/// What the cache does when protected direction metadata turns out
/// corrupt beyond repair (see
/// [`ProtectionMode`](cnt_encoding::ProtectionMode) and DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MetadataFaultPolicy {
    /// Fail-stop: abort the simulation. For debugging and for arguing a
    /// detected fault can never propagate.
    Panic,
    /// Safe degradation: invalidate the line and let the access miss and
    /// refetch from the backing. Clean lines lose nothing; dirty lines
    /// lose their unwritten stores (counted separately).
    #[default]
    InvalidateLine,
    /// Keep serving: re-read the array as-is, declare every partition
    /// `Normal`, and pin the line to baseline encoding for the rest of
    /// its residency. Data already stored inverted stays wrong — this
    /// trades correctness for availability.
    FallbackBaseline,
}

impl fmt::Display for MetadataFaultPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetadataFaultPolicy::Panic => f.write_str("panic"),
            MetadataFaultPolicy::InvalidateLine => f.write_str("invalidate-line"),
            MetadataFaultPolicy::FallbackBaseline => f.write_str("fallback-baseline"),
        }
    }
}

impl fmt::Display for EncodingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingPolicy::None => f.write_str("baseline (no encoding)"),
            EncodingPolicy::StaticInvert {
                preference,
                partitions,
            } => write!(f, "static invert ({preference:?}, {partitions} partitions)"),
            EncodingPolicy::Adaptive(p) => write!(
                f,
                "adaptive (W={}, {} partitions, ΔT={})",
                p.window, p.partitions, p.delta_t
            ),
            EncodingPolicy::ZeroFlag => f.write_str("zero-flag compression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_draft_notes() {
        let p = AdaptiveParams::paper_default();
        assert_eq!(p.window, 15, "the draft sets the checkpoint to 15 accesses");
        assert_eq!(p.partitions, 8);
        assert_eq!(p.delta_t, 0.1);
    }

    #[test]
    fn metadata_accounting() {
        assert_eq!(EncodingPolicy::None.metadata_bits_per_line(512), 0);
        let s = EncodingPolicy::StaticInvert {
            preference: BitPreference::MoreOnes,
            partitions: 8,
        };
        assert_eq!(s.metadata_bits_per_line(512), 8);
        // Adaptive W=15: 2 x 4-bit counters + 8 direction bits.
        let a = EncodingPolicy::adaptive_default();
        assert_eq!(a.metadata_bits_per_line(512), 16);
        assert_eq!(a.partitions(), 8);
        // Zero-flag: one flag per 64-bit word.
        assert_eq!(EncodingPolicy::ZeroFlag.metadata_bits_per_line(512), 8);
        assert_eq!(EncodingPolicy::ZeroFlag.metadata_bits_per_line(1024), 16);
        assert_eq!(EncodingPolicy::ZeroFlag.partitions(), 1);
    }

    #[test]
    fn display_names_policies() {
        assert!(EncodingPolicy::None.to_string().contains("baseline"));
        assert!(EncodingPolicy::adaptive_default()
            .to_string()
            .contains("W=15"));
    }

    #[test]
    fn fault_policy_defaults_to_safe_degradation() {
        assert_eq!(
            MetadataFaultPolicy::default(),
            MetadataFaultPolicy::InvalidateLine
        );
        assert_eq!(
            MetadataFaultPolicy::FallbackBaseline.to_string(),
            "fallback-baseline"
        );
    }
}

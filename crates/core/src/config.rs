//! Configuration and builder for [`CntCache`](crate::CntCache).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use cnt_encoding::{EncodingError, ProtectionMode};
use cnt_energy::SramEnergyModel;
use cnt_sim::{
    CacheGeometry, FillPattern, GeometryError, PrefetchPolicy, ReplacementKind, WriteMode,
};

use crate::policy::{EncodingPolicy, MetadataFaultPolicy};

/// Errors produced when assembling a [`CntCache`](crate::CntCache).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The cache geometry is invalid.
    Geometry(GeometryError),
    /// The encoding configuration is invalid for this geometry.
    Encoding(EncodingError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Geometry(e) => write!(f, "invalid geometry: {e}"),
            ConfigError::Encoding(e) => write!(f, "invalid encoding configuration: {e}"),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Geometry(e) => Some(e),
            ConfigError::Encoding(e) => Some(e),
        }
    }
}

impl From<GeometryError> for ConfigError {
    fn from(e: GeometryError) -> Self {
        ConfigError::Geometry(e)
    }
}

impl From<EncodingError> for ConfigError {
    fn from(e: EncodingError) -> Self {
        ConfigError::Encoding(e)
    }
}

/// Complete configuration of a [`CntCache`](crate::CntCache).
///
/// Use [`CntCacheConfig::builder`] for ergonomic construction:
///
/// ```
/// use cnt_cache::{CntCacheConfig, EncodingPolicy};
///
/// let config = CntCacheConfig::builder()
///     .name("L1D")
///     .size_bytes(32 * 1024)
///     .line_bytes(64)
///     .associativity(8)
///     .policy(EncodingPolicy::adaptive_default())
///     .build()?;
/// assert_eq!(config.geometry.num_sets(), 64);
/// # Ok::<(), cnt_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CntCacheConfig {
    /// Display name.
    pub name: String,
    /// Cache shape.
    pub geometry: CacheGeometry,
    /// Replacement policy.
    pub replacement: ReplacementKind,
    /// How demand writes interact with the backing.
    pub write_mode: WriteMode,
    /// Hardware prefetching performed on demand misses.
    pub prefetch: PrefetchPolicy,
    /// Per-bit SRAM energy model.
    pub energy: SramEnergyModel,
    /// Encoding policy.
    pub policy: EncodingPolicy,
    /// Whether H&D metadata accesses are charged energy too.
    pub meter_metadata: bool,
    /// Per-bit energy of the H&D metadata array relative to the data
    /// array. Metadata bits live in a narrow sidecar array with short
    /// bitlines, so their access energy is a fraction of a data-array
    /// bit's; 0.1 is the default assumption (documented in `DESIGN.md`).
    pub metadata_energy_scale: f64,
    /// Cold-memory content pattern for the backing store.
    pub fill_pattern: FillPattern,
    /// How (and whether) the per-line direction vector is protected
    /// against soft-error upsets. Policies without direction bits
    /// (`None`, `ZeroFlag`) ignore this.
    pub protection: ProtectionMode,
    /// What to do when a protected direction vector is detected corrupt
    /// beyond repair.
    pub fault_policy: MetadataFaultPolicy,
}

impl CntCacheConfig {
    /// Starts a builder with the paper's D-Cache defaults: 32 KiB, 64 B
    /// lines, 8-way, LRU, CNFET energies, no encoding, metadata metered,
    /// zero-filled memory.
    pub fn builder() -> CntCacheConfigBuilder {
        CntCacheConfigBuilder::new()
    }

    /// FNV-1a digest of the *complete* configuration (over its canonical
    /// JSON form). `--resume` requires an exact match: any knob that
    /// differs means the checkpointed run and the resuming run are not
    /// the same experiment.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("a valid config always serializes");
        cnt_trace::fnv1a(json.as_bytes())
    }

    /// FNV-1a digest of the configuration's *shape*: everything that
    /// determines whether a checkpointed state is structurally loadable
    /// (geometry, policy kind, window, partitions, FIFO, protection, ...)
    /// with the fork-safe knobs neutralized — the display name, the
    /// energy model, the metadata energy scale, the predictor's `ΔT`
    /// hysteresis, and the fault policy. Warm-fork sweeps vary exactly
    /// those knobs from one warmed checkpoint, so they match on this
    /// digest instead of [`fingerprint`](Self::fingerprint).
    pub fn shape_fingerprint(&self) -> u64 {
        let mut shape = self.clone();
        shape.name = String::new();
        shape.energy = SramEnergyModel::cnfet_default();
        shape.metadata_energy_scale = 0.0;
        shape.fault_policy = MetadataFaultPolicy::default();
        if let EncodingPolicy::Adaptive(params) = &mut shape.policy {
            params.delta_t = 0.0;
        }
        let json = serde_json::to_string(&shape).expect("a valid config always serializes");
        cnt_trace::fnv1a(json.as_bytes())
    }
}

/// Builder for [`CntCacheConfig`].
#[derive(Debug, Clone)]
pub struct CntCacheConfigBuilder {
    name: String,
    size_bytes: u64,
    line_bytes: u32,
    associativity: u32,
    replacement: ReplacementKind,
    write_mode: WriteMode,
    prefetch: PrefetchPolicy,
    energy: SramEnergyModel,
    policy: EncodingPolicy,
    meter_metadata: bool,
    metadata_energy_scale: f64,
    fill_pattern: FillPattern,
    protection: ProtectionMode,
    fault_policy: MetadataFaultPolicy,
}

impl CntCacheConfigBuilder {
    fn new() -> Self {
        CntCacheConfigBuilder {
            name: "L1D".to_string(),
            size_bytes: 32 * 1024,
            line_bytes: 64,
            associativity: 8,
            replacement: ReplacementKind::Lru,
            write_mode: WriteMode::WriteBack,
            prefetch: PrefetchPolicy::None,
            energy: SramEnergyModel::cnfet_default(),
            policy: EncodingPolicy::None,
            meter_metadata: true,
            metadata_energy_scale: 0.1,
            fill_pattern: FillPattern::Zero,
            protection: ProtectionMode::None,
            fault_policy: MetadataFaultPolicy::InvalidateLine,
        }
    }

    /// Sets the display name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the total capacity in bytes.
    pub fn size_bytes(mut self, size: u64) -> Self {
        self.size_bytes = size;
        self
    }

    /// Sets the line size in bytes.
    pub fn line_bytes(mut self, line: u32) -> Self {
        self.line_bytes = line;
        self
    }

    /// Sets the associativity (ways per set).
    pub fn associativity(mut self, ways: u32) -> Self {
        self.associativity = ways;
        self
    }

    /// Sets the replacement policy.
    pub fn replacement(mut self, kind: ReplacementKind) -> Self {
        self.replacement = kind;
        self
    }

    /// Sets the write mode (write-back, write-through, write-around).
    pub fn write_mode(mut self, mode: WriteMode) -> Self {
        self.write_mode = mode;
        self
    }

    /// Sets the hardware prefetch policy.
    pub fn prefetch(mut self, policy: PrefetchPolicy) -> Self {
        self.prefetch = policy;
        self
    }

    /// Sets the SRAM energy model.
    pub fn energy(mut self, model: SramEnergyModel) -> Self {
        self.energy = model;
        self
    }

    /// Sets the encoding policy.
    pub fn policy(mut self, policy: EncodingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables energy metering of the H&D metadata bits.
    pub fn meter_metadata(mut self, on: bool) -> Self {
        self.meter_metadata = on;
        self
    }

    /// Sets the metadata-array per-bit energy relative to the data array.
    pub fn metadata_energy_scale(mut self, scale: f64) -> Self {
        self.metadata_energy_scale = scale;
        self
    }

    /// Sets the cold-memory content pattern.
    pub fn fill_pattern(mut self, pattern: FillPattern) -> Self {
        self.fill_pattern = pattern;
        self
    }

    /// Sets the direction-metadata protection mode.
    pub fn protection(mut self, mode: ProtectionMode) -> Self {
        self.protection = mode;
        self
    }

    /// Sets the response to uncorrectable metadata faults.
    pub fn fault_policy(mut self, policy: MetadataFaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the geometry is invalid (the encoding
    /// configuration itself is validated when the cache is constructed).
    pub fn build(self) -> Result<CntCacheConfig, ConfigError> {
        let geometry = CacheGeometry::new(self.size_bytes, self.line_bytes, self.associativity)?;
        Ok(CntCacheConfig {
            name: self.name,
            geometry,
            replacement: self.replacement,
            write_mode: self.write_mode,
            prefetch: self.prefetch,
            energy: self.energy,
            policy: self.policy,
            meter_metadata: self.meter_metadata,
            metadata_energy_scale: self.metadata_energy_scale,
            fill_pattern: self.fill_pattern,
            protection: self.protection,
            fault_policy: self.fault_policy,
        })
    }
}

impl Default for CntCacheConfigBuilder {
    fn default() -> Self {
        CntCacheConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_paper_dcache() {
        let c = CntCacheConfig::builder().build().expect("defaults valid");
        assert_eq!(c.geometry.size_bytes(), 32 * 1024);
        assert_eq!(c.geometry.line_bytes(), 64);
        assert_eq!(c.geometry.associativity(), 8);
        assert_eq!(c.policy, EncodingPolicy::None);
        assert!(c.meter_metadata);
        assert_eq!(c.protection, ProtectionMode::None);
        assert_eq!(c.fault_policy, MetadataFaultPolicy::InvalidateLine);
    }

    #[test]
    fn protection_setters_apply() {
        let c = CntCacheConfig::builder()
            .protection(ProtectionMode::Secded)
            .fault_policy(MetadataFaultPolicy::FallbackBaseline)
            .build()
            .expect("valid");
        assert_eq!(c.protection, ProtectionMode::Secded);
        assert_eq!(c.fault_policy, MetadataFaultPolicy::FallbackBaseline);
    }

    #[test]
    fn builder_setters_apply() {
        let c = CntCacheConfig::builder()
            .name("L2")
            .size_bytes(256 * 1024)
            .line_bytes(128)
            .associativity(16)
            .replacement(ReplacementKind::TreePlru)
            .meter_metadata(false)
            .fill_pattern(FillPattern::Random { seed: 1 })
            .build()
            .expect("valid");
        assert_eq!(c.name, "L2");
        assert_eq!(c.geometry.line_bytes(), 128);
        assert_eq!(c.replacement, ReplacementKind::TreePlru);
        assert!(!c.meter_metadata);
    }

    #[test]
    fn bad_geometry_is_reported() {
        let err = CntCacheConfig::builder()
            .size_bytes(1000)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Geometry(_)));
        assert!(err.to_string().contains("geometry"));
        assert!(Error::source(&err).is_some());
    }
}

//! Energy and activity reports, and cross-policy comparison helpers.

use std::fmt;

use serde::{Deserialize, Serialize};

use cnt_encoding::FifoStats;
use cnt_energy::{Energy, EnergyBreakdown, Technology};
use cnt_sim::CacheStats;

/// Counters of the adaptive-encoding machinery.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EncodingCounters {
    /// Prediction windows completed.
    pub windows: u64,
    /// Windows whose decision was to switch at least one partition.
    pub switch_decisions: u64,
    /// Switches actually applied (drained from the FIFO or inline).
    pub switches_applied: u64,
    /// Individual partition flips applied.
    pub partition_flips: u64,
    /// Partition flips applied *inline* (stalling the demand path; zero
    /// when the FIFO is used).
    pub inline_partition_flips: u64,
    /// Window decisions suppressed by the sticky classifier
    /// (`confirm_windows > 1`) because the pattern had not yet stabilized.
    pub suppressed_by_confirmation: u64,
    /// Sum of projected net savings (fJ) over all queued decisions.
    pub projected_saving_fj: f64,
    /// Sum of projected savings (fJ) over the switches that actually
    /// applied. The gap to `projected_saving_fj` is the work lost to FIFO
    /// overflow drops and eviction cancellations.
    pub realized_saving_fj: f64,
}

/// Counters of the direction-metadata reliability machinery
/// (protection, scrub, and fault-policy degradation — DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReliabilityCounters {
    /// Soft-error upsets injected into direction or check bits.
    pub faults_injected: u64,
    /// Verifications that found the metadata corrupt (correctably or
    /// not).
    pub faults_detected: u64,
    /// Upsets repaired in place (SECDED single-bit corrections).
    pub faults_corrected: u64,
    /// Detected faults the code could not locate; the configured
    /// [`MetadataFaultPolicy`](crate::MetadataFaultPolicy) fired.
    pub faults_uncorrected: u64,
    /// Lines invalidated by `MetadataFaultPolicy::InvalidateLine`.
    pub lines_invalidated: u64,
    /// Of those, lines that were dirty — their unwritten stores were
    /// lost (detected data loss, never silent).
    pub dirty_lines_invalidated: u64,
    /// Lines pinned to baseline encoding by
    /// `MetadataFaultPolicy::FallbackBaseline`.
    pub lines_pinned: u64,
    /// Background scrub sweeps completed.
    pub scrub_passes: u64,
    /// Valid lines checked across all scrub sweeps.
    pub scrub_lines_checked: u64,
}

impl ReliabilityCounters {
    /// `true` when nothing reliability-related happened (the default
    /// unprotected, fault-free run).
    pub fn is_quiet(&self) -> bool {
        *self == ReliabilityCounters::default()
    }
}

/// A simple cycle model for the performance-overhead study (`table5`).
///
/// The paper argues the encoder "has negligible influence on the timing of
/// the critical data path" because re-encodings drain through FIFOs in
/// idle slots. This model quantifies that: FIFO-deferred designs add zero
/// cycles; an inline design stalls for every partition it rewrites.
///
/// # Example
///
/// ```
/// use cnt_cache::TimingModel;
///
/// let timing = TimingModel::default();
/// assert_eq!(timing.hit_cycles, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Cycles for a demand hit.
    pub hit_cycles: u64,
    /// Additional cycles for a miss (fill from the backing).
    pub miss_penalty_cycles: u64,
    /// Cycles per dirty-line write-back.
    pub writeback_cycles: u64,
    /// Stall cycles per partition rewritten inline.
    pub reencode_cycles_per_partition: u64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            hit_cycles: 1,
            miss_penalty_cycles: 20,
            writeback_cycles: 4,
            reencode_cycles_per_partition: 2,
        }
    }
}

impl TimingModel {
    /// Total cycles a run took under this model.
    pub fn total_cycles(&self, report: &EnergyReport) -> u64 {
        report.stats.hits() * self.hit_cycles
            + report.stats.misses() * (self.hit_cycles + self.miss_penalty_cycles)
            + report.stats.writebacks * self.writeback_cycles
            + report.encoding.inline_partition_flips * self.reencode_cycles_per_partition
    }

    /// Relative performance overhead of `variant` over `baseline`
    /// (positive = variant is slower), as a fraction.
    pub fn overhead(&self, baseline: &EnergyReport, variant: &EnergyReport) -> f64 {
        let base = self.total_cycles(baseline) as f64;
        let var = self.total_cycles(variant) as f64;
        (var - base) / base
    }
}

/// The complete outcome of one simulated cache run.
///
/// # Example
///
/// ```
/// use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
/// use cnt_sim::Address;
///
/// let mut base = CntCache::new(CntCacheConfig::builder().build()?)?;
/// let mut cnt = CntCache::new(
///     CntCacheConfig::builder().policy(EncodingPolicy::adaptive_default()).build()?,
/// )?;
/// for _ in 0..64 {
///     base.read(Address::new(0), 8)?;
///     cnt.read(Address::new(0), 8)?;
/// }
/// let saving = cnt.report().saving_vs(&base.report());
/// assert!(saving > 0.0, "adaptive must save on a read-only zero line");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Cache display name.
    pub name: String,
    /// Human-readable policy description.
    pub policy: String,
    /// SRAM technology simulated.
    pub technology: Technology,
    /// Bit-level energy breakdown.
    pub breakdown: EnergyBreakdown,
    /// Hit/miss statistics.
    pub stats: CacheStats,
    /// Adaptive-encoding activity.
    pub encoding: EncodingCounters,
    /// Deferred-update FIFO statistics.
    pub fifo: FifoStats,
    /// H&D metadata bits carried per line, including any protection
    /// check bits.
    pub metadata_bits_per_line: u32,
    /// Metadata-protection and fault-handling activity.
    pub reliability: ReliabilityCounters,
}

impl EnergyReport {
    /// Total dynamic energy of the run.
    pub fn total(&self) -> Energy {
        self.breakdown.total()
    }

    /// Mean dynamic energy per demand access.
    pub fn energy_per_access(&self) -> Energy {
        let n = self.stats.accesses();
        if n == 0 {
            Energy::ZERO
        } else {
            self.total() / n as f64
        }
    }

    /// Percentage of dynamic energy saved relative to `baseline`
    /// (positive = this report is cheaper).
    ///
    /// A zero-energy baseline yields `0.0` rather than a non-finite
    /// value, so the result is always renderable and serializable.
    pub fn saving_vs(&self, baseline: &EnergyReport) -> f64 {
        let base = baseline.total().femtojoules();
        if base == 0.0 {
            return 0.0;
        }
        let own = self.total().femtojoules();
        (base - own) / base * 100.0
    }

    /// Fraction of completed windows that decided to switch.
    pub fn switch_rate(&self) -> f64 {
        if self.encoding.windows == 0 {
            0.0
        } else {
            self.encoding.switch_decisions as f64 / self.encoding.windows as f64
        }
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{}] — {}", self.name, self.technology, self.policy)?;
        writeln!(f, "  {}", self.stats)?;
        writeln!(
            f,
            "  energy: {:.1} total, {:.3} per access",
            self.total(),
            self.energy_per_access()
        )?;
        writeln!(
            f,
            "  encoding: {} windows, {} switch decisions, {} applied, {} partition flips",
            self.encoding.windows,
            self.encoding.switch_decisions,
            self.encoding.switches_applied,
            self.encoding.partition_flips
        )?;
        writeln!(
            f,
            "  savings: {:.1} fJ projected, {:.1} fJ realized",
            self.encoding.projected_saving_fj, self.encoding.realized_saving_fj
        )?;
        writeln!(
            f,
            "  fifo: {} pushed, {} dropped, {} drained, {} cancelled (peak {})",
            self.fifo.pushed,
            self.fifo.dropped,
            self.fifo.drained,
            self.fifo.cancelled,
            self.fifo.max_occupancy
        )?;
        if !self.reliability.is_quiet() {
            writeln!(
                f,
                "  reliability: {} injected, {} detected, {} corrected, {} uncorrected, \
                 {} invalidated, {} pinned, {} scrub passes",
                self.reliability.faults_injected,
                self.reliability.faults_detected,
                self.reliability.faults_corrected,
                self.reliability.faults_uncorrected,
                self.reliability.lines_invalidated,
                self.reliability.lines_pinned,
                self.reliability.scrub_passes
            )?;
        }
        write!(f, "{}", self.breakdown)
    }
}

/// One labelled row of a policy-comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Workload or configuration label.
    pub label: String,
    /// Baseline total energy (fJ).
    pub baseline_fj: f64,
    /// Variant total energy (fJ).
    pub variant_fj: f64,
    /// Percentage saving of the variant over the baseline.
    pub saving_percent: f64,
}

impl ComparisonRow {
    /// Builds a row from two reports.
    pub fn new(label: impl Into<String>, baseline: &EnergyReport, variant: &EnergyReport) -> Self {
        ComparisonRow {
            label: label.into(),
            baseline_fj: baseline.total().femtojoules(),
            variant_fj: variant.total().femtojoules(),
            saving_percent: variant.saving_vs(baseline),
        }
    }
}

impl fmt::Display for ComparisonRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "| {:<16} | {:>14.1} | {:>14.1} | {:>7.2}% |",
            self.label, self.baseline_fj, self.variant_fj, self.saving_percent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_energy::{ChargeKind, EnergyMeter, SramEnergyModel};

    fn report_with_energy(fj_bits_ones: u32) -> EnergyReport {
        let mut meter = EnergyMeter::new(SramEnergyModel::cnfet_default());
        meter.charge_write_bits_kind(fj_bits_ones, 64, ChargeKind::DataWrite);
        let mut stats = CacheStats::default();
        stats.record_write(true);
        EnergyReport {
            name: "t".into(),
            policy: "test".into(),
            technology: Technology::Cnfet,
            breakdown: meter.breakdown().clone(),
            stats,
            encoding: EncodingCounters::default(),
            fifo: FifoStats::default(),
            metadata_bits_per_line: 0,
            reliability: ReliabilityCounters::default(),
        }
    }

    #[test]
    fn savings_are_signed_percentages() {
        let expensive = report_with_energy(64); // all ones: costly writes
        let cheap = report_with_energy(0); // all zeros: cheap writes
        assert!(cheap.saving_vs(&expensive) > 80.0);
        assert!(expensive.saving_vs(&cheap) < 0.0);
        assert_eq!(expensive.saving_vs(&expensive), 0.0);
    }

    #[test]
    fn per_access_energy() {
        let r = report_with_energy(64);
        assert_eq!(r.energy_per_access(), r.total());
        let empty = EnergyReport {
            stats: CacheStats::default(),
            ..r
        };
        assert_eq!(empty.energy_per_access(), Energy::ZERO);
    }

    #[test]
    fn switch_rate_handles_zero_windows() {
        let r = report_with_energy(1);
        assert_eq!(r.switch_rate(), 0.0);
        let mut with_windows = r;
        with_windows.encoding.windows = 4;
        with_windows.encoding.switch_decisions = 1;
        assert!((with_windows.switch_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_and_row_rendering() {
        let a = report_with_energy(64);
        let b = report_with_energy(0);
        let text = a.to_string();
        assert!(text.contains("per access"));
        let row = ComparisonRow::new("kernel", &a, &b);
        assert!(row.to_string().contains("kernel"));
        assert!(row.saving_percent > 0.0);
    }

    #[test]
    fn reliability_line_renders_only_when_active() {
        let quiet = report_with_energy(1);
        assert!(quiet.reliability.is_quiet());
        assert!(!quiet.to_string().contains("reliability"));
        let mut noisy = report_with_energy(1);
        noisy.reliability.faults_injected = 3;
        noisy.reliability.faults_corrected = 2;
        let text = noisy.to_string();
        assert!(text.contains("reliability: 3 injected"));
        assert!(text.contains("2 corrected"));
    }

    #[test]
    fn serde_round_trip() {
        let r = report_with_energy(7);
        let json = serde_json::to_string(&r).expect("serialize");
        let back: EnergyReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(r, back);
    }

    #[test]
    fn all_zero_report_serializes() {
        // Regression: a replay with zero accesses must produce a report
        // whose every derived value is finite — `serde_json` rejects
        // non-finite floats, so `NaN` here used to make the report
        // unserializable (and printed "NaN% hits").
        let empty = EnergyReport {
            name: "idle".into(),
            policy: "none".into(),
            technology: Technology::Cnfet,
            breakdown: EnergyBreakdown::default(),
            stats: CacheStats::default(),
            encoding: EncodingCounters::default(),
            fifo: FifoStats::default(),
            metadata_bits_per_line: 0,
            reliability: ReliabilityCounters::default(),
        };
        assert_eq!(empty.stats.hit_rate(), 0.0);
        assert_eq!(empty.switch_rate(), 0.0);
        assert_eq!(empty.energy_per_access(), Energy::ZERO);
        assert_eq!(empty.saving_vs(&empty), 0.0);
        let json = serde_json::to_string(&empty).expect("all-zero report serializes");
        assert!(!json.contains("null"), "no non-finite float leaked: {json}");
        let back: EnergyReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(empty, back);
        assert!(!empty.to_string().contains("NaN"), "Display stays finite");
    }
}

//! Proves the steady-state simulation hot path is allocation-free.
//!
//! A counting global allocator wraps the system allocator; the test warms
//! a `CntCache` up by replaying a trace once (filling memory chunks,
//! growing the update FIFO, installing every line), then replays the same
//! trace again and asserts the second replay performs **zero** heap
//! allocations. Every demand read/write, line fill, window decision, and
//! deferred re-encode therefore runs without touching the allocator.
//!
//! The wrapper forwards to `System` verbatim, so the accounting cannot
//! change allocation behaviour — only observe it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cnt_cache::{CntCache, CntCacheConfig, EncodingPolicy};
use cnt_sim::trace::{MemoryAccess, Trace};
use cnt_sim::Address;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A deterministic mixed read/write trace over a footprint larger than
/// the cache, so the replay exercises hits, misses, fills, evictions,
/// write-backs, window decisions, and FIFO drains.
fn hot_trace() -> Trace {
    let mut trace = Trace::new();
    let mut state = 0x2E60_1234_5678_9ABCu64;
    for i in 0..60_000u64 {
        // xorshift64 keeps the trace allocation-free and reproducible.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let addr = Address::new((state % 4096) * 8);
        if state.is_multiple_of(4) {
            // Skewed payloads so the adaptive encoder actually switches.
            let value = if i % 3 == 0 { u64::MAX } else { 0x0101 };
            trace.push(MemoryAccess::write(addr, 8, value));
        } else {
            trace.push(MemoryAccess::read(addr, 8));
        }
    }
    trace
}

#[test]
fn steady_state_replay_allocates_nothing() {
    let config = CntCacheConfig::builder()
        .name("L1D")
        .size_bytes(8 * 1024)
        .line_bytes(64)
        .associativity(4)
        .policy(EncodingPolicy::adaptive_default())
        .build()
        .expect("valid geometry");
    let trace = hot_trace();

    let mut cache = CntCache::new(config).expect("valid config");
    // Warm-up replay: allocates backing-memory chunks, grows the FIFO to
    // its working capacity, and installs every line once.
    cache.run(trace.iter()).expect("well-formed trace");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    cache.run(trace.iter()).expect("well-formed trace");
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state replay of {} accesses must not allocate",
        trace.len()
    );
}

//! Integration tests for the direction-metadata reliability subsystem:
//! protection modes, fault policies, scrubbing, energy attribution, and
//! the zero-silent-corruption degradation guarantee.
//!
//! The injection model mirrors a real soft-error upset: the stored D bit
//! flips while the array contents stay put, so the cache's *belief* about
//! a partition's encoding inverts. Without protection that belief error
//! is architecturally silent; these tests pin down exactly what each
//! `ProtectionMode` × `MetadataFaultPolicy` combination guarantees.

use proptest::prelude::*;

use cnt_cache::prelude::*;
use cnt_cache::ReliabilityCounters;
use cnt_sim::{MainMemory, WriteMode};

fn protected_config(
    protection: ProtectionMode,
    policy: MetadataFaultPolicy,
    write_mode: WriteMode,
) -> CntCacheConfig {
    CntCacheConfig::builder()
        .policy(EncodingPolicy::adaptive_default())
        .protection(protection)
        .fault_policy(policy)
        .write_mode(write_mode)
        .build()
        .expect("static geometry")
}

/// Warm one line with a known value and return its base address.
fn warm_one_line(cache: &mut CntCache, value: u64) -> Address {
    let addr = Address::new(0x4000);
    cache.write(addr, 8, value).expect("write succeeds");
    assert_eq!(cache.valid_line_count(), 1);
    addr
}

#[test]
fn secded_corrects_on_next_access_with_data_intact() {
    let mut cache = CntCache::new(protected_config(
        ProtectionMode::Secded,
        MetadataFaultPolicy::Panic, // must never trigger
        WriteMode::WriteBack,
    ))
    .expect("valid cache");
    let addr = warm_one_line(&mut cache, 0xDEAD_BEEF_CAFE_F00D);

    let loc = cache.nth_valid_line(0).expect("line resident");
    assert!(cache.inject_direction_fault(loc, 3));

    // The next demand access verifies, corrects the D bit, and restores
    // the logical view — the read must return the original value.
    assert_eq!(
        cache.read(addr, 8).expect("read succeeds"),
        0xDEAD_BEEF_CAFE_F00D
    );
    let r = cache.reliability_counters();
    assert_eq!(r.faults_injected, 1);
    assert_eq!(r.faults_detected, 1);
    assert_eq!(r.faults_corrected, 1);
    assert_eq!(r.faults_uncorrected, 0);
    assert!(cache.degraded_line_bases().is_empty());
    cache.audit().expect("invariants hold after repair");
}

#[test]
fn parity_invalidate_line_refetches_golden_value() {
    let mut cache = CntCache::new(protected_config(
        ProtectionMode::Parity,
        MetadataFaultPolicy::InvalidateLine,
        WriteMode::WriteThrough, // line stays clean: invalidation is lossless
    ))
    .expect("valid cache");
    let addr = warm_one_line(&mut cache, 0x1234_5678_9ABC_DEF0);

    let loc = cache.nth_valid_line(0).expect("line resident");
    let base = cache.line_base(loc);
    assert!(cache.inject_direction_fault(loc, 0));

    // Parity detects but cannot correct: the line is invalidated and the
    // access misses, refetching the (write-through, thus current) backing.
    assert_eq!(
        cache.read(addr, 8).expect("read succeeds"),
        0x1234_5678_9ABC_DEF0
    );
    let r = cache.reliability_counters();
    assert_eq!(r.faults_detected, 1);
    assert_eq!(r.faults_corrected, 0);
    assert_eq!(r.faults_uncorrected, 1);
    assert_eq!(r.lines_invalidated, 1);
    assert_eq!(
        r.dirty_lines_invalidated, 0,
        "write-through lines are clean"
    );
    assert_eq!(cache.degraded_line_bases(), &[base]);
    cache.audit().expect("invariants hold after degradation");
}

#[test]
fn fallback_baseline_pins_line_and_keeps_serving() {
    let mut cache = CntCache::new(protected_config(
        ProtectionMode::Parity,
        MetadataFaultPolicy::FallbackBaseline,
        WriteMode::WriteBack,
    ))
    .expect("valid cache");
    let addr = warm_one_line(&mut cache, 7);

    let loc = cache.nth_valid_line(0).expect("line resident");
    assert!(cache.inject_direction_fault(loc, 1));

    // The line is pinned to baseline encoding; the access is served.
    cache.read(addr, 8).expect("availability is preserved");
    let r = cache.reliability_counters();
    assert_eq!(r.faults_uncorrected, 1);
    assert_eq!(r.lines_pinned, 1);
    assert_eq!(r.lines_invalidated, 0);
    assert_eq!(cache.degraded_line_bases().len(), 1);

    // A pinned line never re-encodes again: hammer it with all-ones data
    // (which adaptive encoding would invert) and check every direction
    // bit stays Normal.
    for _ in 0..64 {
        cache.write(addr, 8, u64::MAX).expect("write succeeds");
        cache.read(addr, 8).expect("read succeeds");
    }
    let loc = cache.nth_valid_line(0).expect("line still resident");
    let dirs = cache.protected_direction_bits(loc);
    assert_eq!(
        dirs.bits().inverted_count(),
        0,
        "pinned line must stay baseline-encoded"
    );
    cache.audit().expect("invariants hold while pinned");
}

#[test]
#[should_panic(expected = "uncorrectable direction-metadata fault")]
fn panic_policy_fails_stop() {
    let mut cache = CntCache::new(protected_config(
        ProtectionMode::Parity,
        MetadataFaultPolicy::Panic,
        WriteMode::WriteBack,
    ))
    .expect("valid cache");
    let addr = warm_one_line(&mut cache, 1);
    let loc = cache.nth_valid_line(0).expect("line resident");
    assert!(cache.inject_direction_fault(loc, 0));
    let _ = cache.read(addr, 8);
}

#[test]
fn scrub_corrects_idle_line_upset() {
    let mut cache = CntCache::new(protected_config(
        ProtectionMode::Secded,
        MetadataFaultPolicy::Panic,
        WriteMode::WriteBack,
    ))
    .expect("valid cache");
    let addr = warm_one_line(&mut cache, 42);
    let loc = cache.nth_valid_line(0).expect("line resident");
    assert!(cache.inject_direction_fault(loc, 5));

    // No demand access touches the line; a scrub pass finds and repairs
    // the upset anyway.
    let report = cache.scrub_metadata();
    assert_eq!(report.corrected, 1);
    assert_eq!(report.uncorrectable, 0);
    assert!(report.lines_checked >= 1);

    let r = cache.reliability_counters();
    assert_eq!(r.scrub_passes, 1);
    assert!(r.scrub_lines_checked >= 1);
    assert_eq!(cache.read(addr, 8).expect("read succeeds"), 42);

    // A second pass over a clean cache corrects nothing.
    let report = cache.scrub_metadata();
    assert_eq!(report.corrected, 0);
    assert_eq!(cache.reliability_counters().scrub_passes, 2);
}

#[test]
fn check_bit_upsets_are_repaired_without_touching_data() {
    let mut cache = CntCache::new(protected_config(
        ProtectionMode::Secded,
        MetadataFaultPolicy::Panic,
        WriteMode::WriteBack,
    ))
    .expect("valid cache");
    let addr = warm_one_line(&mut cache, 99);
    let loc = cache.nth_valid_line(0).expect("line resident");
    assert!(cache.inject_check_fault(loc, 0));

    assert_eq!(cache.read(addr, 8).expect("read succeeds"), 99);
    let r = cache.reliability_counters();
    assert_eq!(r.faults_corrected, 1);
    assert_eq!(r.faults_uncorrected, 0);
    cache.audit().expect("invariants hold");
}

#[test]
fn protection_energy_is_nonzero_and_itemized() {
    let run = |protection: ProtectionMode| {
        let mut cache = CntCache::new(protected_config(
            protection,
            MetadataFaultPolicy::Panic,
            WriteMode::WriteBack,
        ))
        .expect("valid cache");
        for i in 0..256u64 {
            let addr = Address::new((i % 16) * 64);
            if i % 3 == 0 {
                cache.write(addr, 8, i.wrapping_mul(0x9E37_79B9)).unwrap();
            } else {
                cache.read(addr, 8).unwrap();
            }
        }
        cache.into_report()
    };

    let unprotected = run(ProtectionMode::None);
    let parity = run(ProtectionMode::Parity);
    let secded = run(ProtectionMode::Secded);

    assert_eq!(unprotected.breakdown.protection_energy().picojoules(), 0.0);
    let parity_pj = parity.breakdown.protection_energy().picojoules();
    let secded_pj = secded.breakdown.protection_energy().picojoules();
    assert!(parity_pj > 0.0, "parity checks must cost energy");
    assert!(
        secded_pj > parity_pj,
        "SECDED stores and checks more bits than parity ({secded_pj} vs {parity_pj} pJ)"
    );
    // Itemization: protection energy is part of the total, not double
    // counted — totals strictly increase with protection strength.
    assert!(parity.breakdown.total().picojoules() > unprotected.breakdown.total().picojoules());
    assert!(secded.breakdown.total().picojoules() > parity.breakdown.total().picojoules());
}

#[test]
fn protection_is_forced_off_for_policies_without_direction_bits() {
    for policy in [EncodingPolicy::None, EncodingPolicy::ZeroFlag] {
        let config = CntCacheConfig::builder()
            .policy(policy)
            .protection(ProtectionMode::Secded)
            .build()
            .expect("valid config");
        let mut cache = CntCache::new(config).expect("valid cache");
        assert_eq!(cache.protection(), ProtectionMode::None);
        for i in 0..64u64 {
            cache.write(Address::new(i * 8), 8, i).unwrap();
        }
        let report = cache.into_report();
        assert_eq!(
            report.breakdown.protection_energy().picojoules(),
            0.0,
            "no direction bits means nothing to protect"
        );
        assert!(report.reliability.is_quiet());
    }
}

#[test]
fn reliability_counters_flow_into_the_report() {
    let mut cache = CntCache::new(protected_config(
        ProtectionMode::Parity,
        MetadataFaultPolicy::InvalidateLine,
        WriteMode::WriteThrough,
    ))
    .expect("valid cache");
    let addr = warm_one_line(&mut cache, 5);
    let loc = cache.nth_valid_line(0).expect("line resident");
    assert!(cache.inject_direction_fault(loc, 0));
    cache.read(addr, 8).expect("read succeeds");
    cache.scrub_metadata();

    let report = cache.report();
    let r: &ReliabilityCounters = &report.reliability;
    assert_eq!(r.faults_injected, 1);
    assert_eq!(r.lines_invalidated, 1);
    assert_eq!(r.scrub_passes, 1);
    assert!(!r.is_quiet());
    assert!(report.to_string().contains("reliability"));
}

// ---------------------------------------------------------------------
// Satellite 4: the graceful-degradation guarantee, property-tested.
//
// A random trace interleaved with random direction-bit upsets — each
// followed by a demand read of the victim line — must produce exactly
// the memory image and read values of a fault-free golden replay, for
// both Parity+InvalidateLine (detect, drop, refetch) and Secded (detect,
// correct in place). Zero silent corruption, by construction.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Read { slot: u64 },
    Write { slot: u64, value: u64 },
    Inject { pick: u64, partition_pick: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..10, 0u64..64, any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
        |(kind, slot, value, pick, partition_pick)| match kind {
            0..=3 => Op::Read { slot },
            4..=7 => Op::Write { slot, value },
            _ => Op::Inject {
                pick,
                partition_pick,
            },
        },
    )
}

fn degradation_matches_golden_replay(protection: ProtectionMode, ops: &[Op]) {
    let mut cache = CntCache::new(protected_config(
        protection,
        MetadataFaultPolicy::InvalidateLine,
        WriteMode::WriteThrough,
    ))
    .expect("valid cache");
    let mut golden = MainMemory::new();
    let mut written = std::collections::BTreeSet::new();

    for op in ops {
        match *op {
            Op::Read { slot } => {
                let addr = Address::new(slot * 8);
                let got = cache.read(addr, 8).expect("read succeeds");
                let want = golden.load(addr, 8);
                assert_eq!(got, want, "read of {addr} diverged from golden replay");
            }
            Op::Write { slot, value } => {
                let addr = Address::new(slot * 8);
                cache.write(addr, 8, value).expect("write succeeds");
                golden.store(addr, 8, value);
                written.insert(addr);
            }
            Op::Inject {
                pick,
                partition_pick,
            } => {
                let count = cache.valid_line_count();
                if count == 0 {
                    continue;
                }
                let loc = cache
                    .nth_valid_line((pick % count as u64) as usize)
                    .expect("index in range");
                let base = cache.line_base(loc);
                let partition = partition_pick % cache.partitions();
                if cache.inject_direction_fault(loc, partition) {
                    // The very next access to the victim line must see
                    // the golden value: Secded repairs in place, parity
                    // invalidates and refetches.
                    let got = cache.read(base, 8).expect("read succeeds");
                    assert_eq!(
                        got,
                        golden.load(base, 8),
                        "post-fault read of {base} diverged"
                    );
                }
            }
        }
    }

    cache.flush();
    for &addr in &written {
        assert_eq!(
            cache.memory_mut().load(addr, 8),
            golden.load(addr, 8),
            "final memory image diverged at {addr}"
        );
    }
    let r = cache.reliability_counters();
    assert_eq!(
        r.faults_detected, r.faults_injected,
        "every injected upset must be detected"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parity_invalidate_degradation_has_zero_silent_corruption(
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        degradation_matches_golden_replay(ProtectionMode::Parity, &ops);
    }

    #[test]
    fn secded_correction_has_zero_silent_corruption(
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        degradation_matches_golden_replay(ProtectionMode::Secded, &ops);
    }
}

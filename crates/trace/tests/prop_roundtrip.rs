//! Property tests for the `.ctr` format: packing any access sequence and
//! streaming it back must be the identity, and any damage to the bytes
//! must be detected, never silently absorbed.

use cnt_sim::trace::{MemoryAccess, Trace};
use cnt_sim::Address;
use cnt_trace::format::Frame;
use cnt_trace::{
    pack_trace, pack_trace_with, read_trace, CorruptionPolicy, ReadOptions, WriteOptions,
    FRAME_BYTES, HEADER_BYTES,
};
use proptest::prelude::*;

fn arb_access() -> impl Strategy<Value = MemoryAccess> {
    let width = prop::sample::select(vec![1u8, 2, 4, 8]);
    (0u64..65536, width, any::<u64>(), 0u8..3).prop_map(|(raw, width, value, kind)| {
        let addr = Address::new(raw & !(u64::from(width) - 1));
        match kind {
            0 => MemoryAccess::read(addr, width),
            1 => MemoryAccess::write(addr, width, value),
            // Instruction fetches are always 8 bytes wide.
            _ => MemoryAccess::ifetch(Address::new(raw & !7)),
        }
    })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_access(), 0..600).prop_map(Trace::from_iter)
}

fn packed(trace: &Trace, chunk: u32) -> Vec<u8> {
    let mut bytes = Vec::new();
    pack_trace(trace, &mut bytes, chunk).expect("packing in-memory never fails");
    bytes
}

/// Walks the chunk layout: `(payload_offset, payload_len)` per chunk.
fn payload_regions(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut offset = HEADER_BYTES;
    while offset < bytes.len() {
        let frame: Frame =
            Frame::from_bytes(&bytes[offset..offset + FRAME_BYTES].try_into().unwrap());
        let len = frame.payload_len as usize;
        regions.push((offset + FRAME_BYTES, len));
        offset += FRAME_BYTES + len;
    }
    regions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// pack ∘ read is the identity for every trace and chunking.
    #[test]
    fn pack_then_read_is_identity(trace in arb_trace(), chunk in 1u32..64) {
        let bytes = packed(&trace, chunk);
        let back = read_trace(&bytes[..], ReadOptions::default()).expect("intact file reads");
        prop_assert_eq!(back, trace);
    }

    /// Cutting the file anywhere either errors or yields an exact
    /// chunk-boundary prefix — never garbage accesses.
    #[test]
    fn truncation_is_detected_or_a_clean_prefix(
        trace in arb_trace(),
        chunk in 1u32..32,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = packed(&trace, chunk);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        match read_trace(&bytes[..cut], ReadOptions::default()) {
            Ok(prefix) => {
                // Only a cut landing exactly on a chunk boundary parses;
                // the result must then be a whole-chunks prefix.
                prop_assert!(prefix.len() <= trace.len());
                prop_assert_eq!(
                    prefix.as_slice(),
                    &trace.as_slice()[..prefix.len()],
                    "parsed prefix must match the original accesses"
                );
                prop_assert_eq!(prefix.len() % chunk as usize, 0);
            }
            Err(e) => {
                // Damage must be named, and SkipWithReport must not
                // change the verdict: truncation has no resync point.
                let skip = read_trace(&bytes[..cut], ReadOptions {
                    corruption: CorruptionPolicy::SkipWithReport,
                    ..ReadOptions::default()
                });
                prop_assert!(skip.is_err(), "skip policy must not mask truncation: {e}");
            }
        }
    }

    /// pack(compress) ∘ read is also the identity: the reader inflates
    /// transparently and the CRC (over uncompressed records) still holds.
    #[test]
    fn compressed_pack_then_read_is_identity(trace in arb_trace(), chunk in 1u32..64) {
        let mut bytes = Vec::new();
        pack_trace_with(&trace, &mut bytes, WriteOptions { chunk_accesses: chunk, compress: true })
            .expect("packing in-memory never fails");
        let back = read_trace(&bytes[..], ReadOptions::default()).expect("intact file reads");
        prop_assert_eq!(back, trace);
    }

    /// Flipping any bit of any compressed chunk payload is caught —
    /// either the inflater rejects the bitstream or the CRC over the
    /// inflated records mismatches — and the skip policy steps over
    /// exactly the damaged chunk.
    #[test]
    fn compressed_payload_damage_is_caught_and_skippable(
        trace in arb_trace(),
        chunk in 1u32..32,
        victim_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = Vec::new();
        pack_trace_with(&trace, &mut bytes, WriteOptions { chunk_accesses: chunk, compress: true })
            .expect("packing in-memory never fails");
        let regions = payload_regions(&bytes);
        prop_assume!(!trace.is_empty());
        let victim = (((regions.len() - 1) as f64) * victim_frac) as usize;
        let (start, len) = regions[victim];
        prop_assume!(len > 0);
        bytes[start + len / 2] ^= 1 << bit;

        let err = read_trace(&bytes[..], ReadOptions::default())
            .expect_err("fail-fast must surface payload damage");
        prop_assert!(err.is_skippable(), "compressed damage is skippable: {err}");

        let back = read_trace(&bytes[..], ReadOptions {
            corruption: CorruptionPolicy::SkipWithReport,
            ..ReadOptions::default()
        }).expect("skip policy streams the intact remainder");
        let chunk = chunk as usize;
        let victim_accesses = trace.len().min(victim * chunk + chunk) - victim * chunk;
        prop_assert_eq!(back.len(), trace.len() - victim_accesses);
    }

    /// Flipping any bit of any chunk payload is caught by the CRC, and
    /// the skip policy recovers every other chunk.
    #[test]
    fn payload_damage_is_caught_and_skippable(
        trace in arb_trace(),
        chunk in 1u32..32,
        victim_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = packed(&trace, chunk);
        let regions = payload_regions(&bytes);
        prop_assume!(!trace.is_empty());
        let victim = (((regions.len() - 1) as f64) * victim_frac) as usize;
        let (start, len) = regions[victim];
        prop_assume!(len > 0);
        bytes[start + len / 2] ^= 1 << bit;

        let err = read_trace(&bytes[..], ReadOptions::default())
            .expect_err("fail-fast must surface payload damage");
        prop_assert!(err.is_skippable(), "CRC damage is skippable: {err}");

        let back = read_trace(&bytes[..], ReadOptions {
            corruption: CorruptionPolicy::SkipWithReport,
            ..ReadOptions::default()
        }).expect("skip policy streams the intact remainder");
        // Exactly the victim chunk's accesses are missing.
        let chunk = chunk as usize;
        let victim_accesses = trace.len().min(victim * chunk + chunk) - victim * chunk;
        prop_assert_eq!(back.len(), trace.len() - victim_accesses);
        let mut expected: Vec<MemoryAccess> = trace.as_slice()[..victim * chunk].to_vec();
        expected.extend_from_slice(&trace.as_slice()[(victim * chunk + victim_accesses)..]);
        prop_assert_eq!(back.as_slice(), &expected[..]);
    }
}

//! Errors produced while writing or streaming `.ctr` traces.

use std::error::Error;
use std::fmt;
use std::io;

/// Everything that can go wrong while packing or streaming a `.ctr`
/// trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// An underlying I/O failure from the source or sink.
    Io(io::Error),
    /// The first bytes of the stream are not the `.ctr` magic.
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The header declares a format version this reader cannot decode.
    UnsupportedVersion {
        /// The declared version.
        version: u16,
    },
    /// The stream ended in the middle of a header, frame, or payload.
    Truncated {
        /// Zero-based index of the chunk being read (`u64::MAX` for the
        /// file header).
        chunk: u64,
        /// What was being read when the bytes ran out.
        while_reading: &'static str,
    },
    /// A chunk's stored CRC32 does not match its payload.
    CrcMismatch {
        /// Zero-based chunk index.
        chunk: u64,
        /// CRC32 recorded in the chunk frame.
        stored: u32,
        /// CRC32 recomputed over the payload as read.
        computed: u32,
    },
    /// A chunk's payload is larger than the reader's memory budget, so it
    /// can never be buffered for decode.
    ChunkExceedsBudget {
        /// Zero-based chunk index.
        chunk: u64,
        /// Payload size declared in the frame.
        payload_bytes: u64,
        /// The configured budget.
        budget_bytes: u64,
    },
    /// A compressed chunk's payload failed to inflate — a damaged
    /// DEFLATE bitstream, or decompressed output exceeding the reader's
    /// budget. Like [`TraceError::CrcMismatch`] this is per-chunk
    /// damage: the frame was intact, so the stream stays in sync and a
    /// skipping reader can step over it.
    Decompress {
        /// Zero-based chunk index.
        chunk: u64,
        /// What the inflater reported.
        what: String,
    },
    /// A frame declared an implausible shape (zero-length payload with
    /// accesses, or a payload/access-count mismatch discovered on decode).
    BadRecord {
        /// Zero-based chunk index.
        chunk: u64,
        /// Byte offset of the offending record inside the payload.
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic { found } => {
                write!(f, "not a .ctr trace (magic bytes {found:02x?})")
            }
            TraceError::UnsupportedVersion { version } => {
                write!(f, "unsupported .ctr format version {version}")
            }
            TraceError::Truncated {
                chunk,
                while_reading,
            } => {
                if *chunk == u64::MAX {
                    write!(
                        f,
                        "truncated trace: ran out of bytes in the {while_reading}"
                    )
                } else {
                    write!(f, "truncated trace: chunk {chunk} ends mid-{while_reading}")
                }
            }
            TraceError::CrcMismatch {
                chunk,
                stored,
                computed,
            } => write!(
                f,
                "chunk {chunk} is corrupt: stored CRC32 {stored:#010x}, computed {computed:#010x}"
            ),
            TraceError::ChunkExceedsBudget {
                chunk,
                payload_bytes,
                budget_bytes,
            } => write!(
                f,
                "chunk {chunk} needs {payload_bytes} bytes but the memory budget is \
                 {budget_bytes} bytes"
            ),
            TraceError::Decompress { chunk, what } => {
                write!(f, "chunk {chunk} failed to decompress: {what}")
            }
            TraceError::BadRecord {
                chunk,
                offset,
                what,
            } => write!(f, "chunk {chunk}, payload offset {offset}: {what}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl TraceError {
    /// `true` for per-chunk damage a [`SkipWithReport`] reader can step
    /// over (the frame itself was intact, so the stream stays in sync).
    ///
    /// [`SkipWithReport`]: crate::reader::CorruptionPolicy::SkipWithReport
    pub fn is_skippable(&self) -> bool {
        matches!(
            self,
            TraceError::CrcMismatch { .. }
                | TraceError::BadRecord { .. }
                | TraceError::Decompress { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_chunk() {
        let e = TraceError::CrcMismatch {
            chunk: 3,
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("chunk 3"));
        assert!(e.is_skippable());
        let t = TraceError::Truncated {
            chunk: u64::MAX,
            while_reading: "file header",
        };
        assert!(t.to_string().contains("file header"));
        assert!(!t.is_skippable());
    }
}

//! Packing accesses into `.ctr` chunks.
//!
//! [`TraceWriter`] buffers at most one chunk of records before flushing
//! its frame + payload to the sink, so packing a multi-GB stream needs
//! only chunk-sized memory. [`pack_accesses`] and [`pack_trace`] are the
//! convenience one-shots built on it.

use std::io::Write;

use cnt_sim::trace::{MemoryAccess, Trace};

use crate::crc32::crc32;
use crate::error::TraceError;
use crate::format::{encode_access, Frame, Header, VERSION};

/// Default target accesses per chunk (~72 KiB of write-heavy payload).
pub const DEFAULT_CHUNK_ACCESSES: u32 = 4096;

/// What one packing pass produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackSummary {
    /// Chunks written.
    pub chunks: u64,
    /// Access records written.
    pub accesses: u64,
    /// Payload bytes written (excluding header and frames).
    pub payload_bytes: u64,
}

/// A streaming `.ctr` writer: push accesses, chunks flush themselves.
///
/// # Example
///
/// ```
/// use cnt_sim::trace::MemoryAccess;
/// use cnt_sim::Address;
/// use cnt_trace::writer::TraceWriter;
///
/// let mut bytes = Vec::new();
/// let mut writer = TraceWriter::new(&mut bytes, 2).expect("header writes");
/// for i in 0..5u64 {
///     writer.push(&MemoryAccess::read(Address::new(i * 8), 8)).expect("packs");
/// }
/// let summary = writer.finish().expect("flushes");
/// assert_eq!(summary.chunks, 3); // 2 + 2 + 1
/// assert_eq!(summary.accesses, 5);
/// ```
pub struct TraceWriter<W: Write> {
    sink: W,
    chunk_accesses: u32,
    payload: Vec<u8>,
    pending: u32,
    summary: PackSummary,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the file header and returns a writer targeting
    /// `chunk_accesses` records per chunk (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn new(mut sink: W, chunk_accesses: u32) -> Result<Self, TraceError> {
        let chunk_accesses = chunk_accesses.max(1);
        let header = Header {
            version: VERSION,
            flags: 0,
            chunk_target: chunk_accesses,
        };
        sink.write_all(&header.to_bytes())?;
        Ok(TraceWriter {
            sink,
            chunk_accesses,
            payload: Vec::new(),
            pending: 0,
            summary: PackSummary::default(),
        })
    }

    /// Appends one access, flushing a chunk when the target is reached.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn push(&mut self, access: &MemoryAccess) -> Result<(), TraceError> {
        encode_access(access, &mut self.payload);
        self.pending += 1;
        self.summary.accesses += 1;
        if self.pending >= self.chunk_accesses {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.pending == 0 {
            return Ok(());
        }
        let frame = Frame {
            payload_len: u32::try_from(self.payload.len()).expect("chunk payloads are small"),
            access_count: self.pending,
            crc32: crc32(&self.payload),
        };
        self.sink.write_all(&frame.to_bytes())?;
        self.sink.write_all(&self.payload)?;
        self.summary.chunks += 1;
        self.summary.payload_bytes += self.payload.len() as u64;
        self.payload.clear();
        self.pending = 0;
        Ok(())
    }

    /// Flushes the trailing partial chunk and the sink, returning the
    /// pack summary.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(mut self) -> Result<PackSummary, TraceError> {
        self.flush_chunk()?;
        self.sink.flush()?;
        Ok(self.summary)
    }
}

/// Packs any access stream into `.ctr` form without materializing it.
///
/// # Errors
///
/// Propagates sink I/O errors.
pub fn pack_accesses<I, W>(
    accesses: I,
    sink: W,
    chunk_accesses: u32,
) -> Result<PackSummary, TraceError>
where
    I: IntoIterator<Item = MemoryAccess>,
    W: Write,
{
    let mut writer = TraceWriter::new(sink, chunk_accesses)?;
    for access in accesses {
        writer.push(&access)?;
    }
    writer.finish()
}

/// Packs an in-memory [`Trace`].
///
/// # Errors
///
/// Propagates sink I/O errors.
pub fn pack_trace<W: Write>(
    trace: &Trace,
    sink: W,
    chunk_accesses: u32,
) -> Result<PackSummary, TraceError> {
    pack_accesses(trace.iter().copied(), sink, chunk_accesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FRAME_BYTES, HEADER_BYTES};
    use cnt_sim::Address;

    #[test]
    fn empty_trace_is_just_a_header() {
        let mut bytes = Vec::new();
        let summary = pack_trace(&Trace::new(), &mut bytes, 64).expect("packs");
        assert_eq!(bytes.len(), HEADER_BYTES);
        assert_eq!(summary, PackSummary::default());
    }

    #[test]
    fn chunking_splits_on_target() {
        let trace: Trace = (0..10)
            .map(|i| MemoryAccess::read(Address::new(i * 8), 8))
            .collect();
        let mut bytes = Vec::new();
        let summary = pack_trace(&trace, &mut bytes, 4).expect("packs");
        assert_eq!(summary.chunks, 3); // 4 + 4 + 2
        assert_eq!(summary.accesses, 10);
        assert_eq!(summary.payload_bytes, 10 * 10);
        assert_eq!(
            bytes.len(),
            HEADER_BYTES + 3 * FRAME_BYTES + summary.payload_bytes as usize
        );
    }

    #[test]
    fn zero_chunk_target_is_clamped() {
        let trace: Trace = (0..3)
            .map(|i| MemoryAccess::read(Address::new(i * 8), 8))
            .collect();
        let mut bytes = Vec::new();
        let summary = pack_trace(&trace, &mut bytes, 0).expect("packs");
        assert_eq!(summary.chunks, 3, "clamped to one access per chunk");
    }
}

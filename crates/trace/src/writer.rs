//! Packing accesses into `.ctr` chunks.
//!
//! [`TraceWriter`] buffers at most one chunk of records before flushing
//! its frame + payload to the sink, so packing a multi-GB stream needs
//! only chunk-sized memory. [`pack_accesses`] and [`pack_trace`] are the
//! convenience one-shots built on it.

use std::io::Write;

use cnt_sim::trace::{MemoryAccess, Trace};

use crate::crc32::crc32;
use crate::error::TraceError;
use crate::format::{encode_access, Frame, Header, FLAG_COMPRESSED, VERSION, VERSION_COMPRESSED};

/// Default target accesses per chunk (~72 KiB of write-heavy payload).
pub const DEFAULT_CHUNK_ACCESSES: u32 = 4096;

/// Writer configuration beyond the sink itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOptions {
    /// Target access records per chunk (clamped to at least 1).
    pub chunk_accesses: u32,
    /// DEFLATE-compress each chunk payload. Compressed files carry
    /// [`VERSION_COMPRESSED`] + [`FLAG_COMPRESSED`] in the header, so
    /// version-1 readers reject them with a typed
    /// [`TraceError::UnsupportedVersion`] rather than misread the
    /// frames. The frame CRC-32 is always computed over the
    /// *uncompressed* payload — corruption checks survive whatever the
    /// codec does on disk.
    pub compress: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            chunk_accesses: DEFAULT_CHUNK_ACCESSES,
            compress: false,
        }
    }
}

/// What one packing pass produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackSummary {
    /// Chunks written.
    pub chunks: u64,
    /// Access records written.
    pub accesses: u64,
    /// Payload bytes written (excluding header and frames).
    pub payload_bytes: u64,
}

/// A streaming `.ctr` writer: push accesses, chunks flush themselves.
///
/// # Example
///
/// ```
/// use cnt_sim::trace::MemoryAccess;
/// use cnt_sim::Address;
/// use cnt_trace::writer::TraceWriter;
///
/// let mut bytes = Vec::new();
/// let mut writer = TraceWriter::new(&mut bytes, 2).expect("header writes");
/// for i in 0..5u64 {
///     writer.push(&MemoryAccess::read(Address::new(i * 8), 8)).expect("packs");
/// }
/// let summary = writer.finish().expect("flushes");
/// assert_eq!(summary.chunks, 3); // 2 + 2 + 1
/// assert_eq!(summary.accesses, 5);
/// ```
pub struct TraceWriter<W: Write> {
    sink: W,
    chunk_accesses: u32,
    compress: bool,
    payload: Vec<u8>,
    pending: u32,
    summary: PackSummary,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the file header and returns a writer targeting
    /// `chunk_accesses` records per chunk (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn new(sink: W, chunk_accesses: u32) -> Result<Self, TraceError> {
        TraceWriter::with_options(
            sink,
            WriteOptions {
                chunk_accesses,
                ..WriteOptions::default()
            },
        )
    }

    /// Writes the file header and returns a writer configured by
    /// `options` (see [`WriteOptions`] for the compression contract).
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn with_options(mut sink: W, options: WriteOptions) -> Result<Self, TraceError> {
        let chunk_accesses = options.chunk_accesses.max(1);
        let header = Header {
            version: if options.compress {
                VERSION_COMPRESSED
            } else {
                VERSION
            },
            flags: if options.compress { FLAG_COMPRESSED } else { 0 },
            chunk_target: chunk_accesses,
        };
        sink.write_all(&header.to_bytes())?;
        Ok(TraceWriter {
            sink,
            chunk_accesses,
            compress: options.compress,
            payload: Vec::new(),
            pending: 0,
            summary: PackSummary::default(),
        })
    }

    /// Appends one access, flushing a chunk when the target is reached.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn push(&mut self, access: &MemoryAccess) -> Result<(), TraceError> {
        encode_access(access, &mut self.payload);
        self.pending += 1;
        self.summary.accesses += 1;
        if self.pending >= self.chunk_accesses {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.pending == 0 {
            return Ok(());
        }
        // The CRC always covers the uncompressed records; a reader
        // inflates first, then checks, so on-disk codec damage and
        // record damage are caught by the same field.
        let crc = crc32(&self.payload);
        let compressed: Option<Vec<u8>> = if self.compress {
            let mut encoder =
                flate2::write::DeflateEncoder::new(Vec::new(), flate2::Compression::default());
            encoder.write_all(&self.payload)?;
            Some(encoder.finish()?)
        } else {
            None
        };
        let on_disk: &[u8] = compressed.as_deref().unwrap_or(&self.payload);
        let frame = Frame {
            payload_len: u32::try_from(on_disk.len()).expect("chunk payloads are small"),
            access_count: self.pending,
            crc32: crc,
        };
        self.sink.write_all(&frame.to_bytes())?;
        self.sink.write_all(on_disk)?;
        self.summary.chunks += 1;
        self.summary.payload_bytes += on_disk.len() as u64;
        self.payload.clear();
        self.pending = 0;
        Ok(())
    }

    /// Flushes the trailing partial chunk and the sink, returning the
    /// pack summary.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(mut self) -> Result<PackSummary, TraceError> {
        self.flush_chunk()?;
        self.sink.flush()?;
        Ok(self.summary)
    }
}

/// Packs any access stream into `.ctr` form without materializing it.
///
/// # Errors
///
/// Propagates sink I/O errors.
pub fn pack_accesses<I, W>(
    accesses: I,
    sink: W,
    chunk_accesses: u32,
) -> Result<PackSummary, TraceError>
where
    I: IntoIterator<Item = MemoryAccess>,
    W: Write,
{
    let mut writer = TraceWriter::new(sink, chunk_accesses)?;
    for access in accesses {
        writer.push(&access)?;
    }
    writer.finish()
}

/// Packs an in-memory [`Trace`].
///
/// # Errors
///
/// Propagates sink I/O errors.
pub fn pack_trace<W: Write>(
    trace: &Trace,
    sink: W,
    chunk_accesses: u32,
) -> Result<PackSummary, TraceError> {
    pack_accesses(trace.iter().copied(), sink, chunk_accesses)
}

/// Packs any access stream with explicit [`WriteOptions`].
///
/// # Errors
///
/// Propagates sink I/O errors.
pub fn pack_accesses_with<I, W>(
    accesses: I,
    sink: W,
    options: WriteOptions,
) -> Result<PackSummary, TraceError>
where
    I: IntoIterator<Item = MemoryAccess>,
    W: Write,
{
    let mut writer = TraceWriter::with_options(sink, options)?;
    for access in accesses {
        writer.push(&access)?;
    }
    writer.finish()
}

/// Packs an in-memory [`Trace`] with explicit [`WriteOptions`].
///
/// # Errors
///
/// Propagates sink I/O errors.
pub fn pack_trace_with<W: Write>(
    trace: &Trace,
    sink: W,
    options: WriteOptions,
) -> Result<PackSummary, TraceError> {
    pack_accesses_with(trace.iter().copied(), sink, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FRAME_BYTES, HEADER_BYTES};
    use cnt_sim::Address;

    #[test]
    fn empty_trace_is_just_a_header() {
        let mut bytes = Vec::new();
        let summary = pack_trace(&Trace::new(), &mut bytes, 64).expect("packs");
        assert_eq!(bytes.len(), HEADER_BYTES);
        assert_eq!(summary, PackSummary::default());
    }

    #[test]
    fn chunking_splits_on_target() {
        let trace: Trace = (0..10)
            .map(|i| MemoryAccess::read(Address::new(i * 8), 8))
            .collect();
        let mut bytes = Vec::new();
        let summary = pack_trace(&trace, &mut bytes, 4).expect("packs");
        assert_eq!(summary.chunks, 3); // 4 + 4 + 2
        assert_eq!(summary.accesses, 10);
        assert_eq!(summary.payload_bytes, 10 * 10);
        assert_eq!(
            bytes.len(),
            HEADER_BYTES + 3 * FRAME_BYTES + summary.payload_bytes as usize
        );
    }

    #[test]
    fn compressed_pack_carries_v2_header_and_shrinks() {
        use crate::format::{Header, FLAG_COMPRESSED, VERSION_COMPRESSED};
        // A strided read loop: highly repetitive payload bytes.
        let trace: Trace = (0..2000)
            .map(|i| MemoryAccess::read(Address::new(0x1000 + i * 64), 8))
            .collect();
        let mut plain = Vec::new();
        pack_trace(&trace, &mut plain, 256).expect("packs");
        let mut packed = Vec::new();
        let summary = pack_trace_with(
            &trace,
            &mut packed,
            WriteOptions {
                chunk_accesses: 256,
                compress: true,
            },
        )
        .expect("packs compressed");
        assert_eq!(summary.accesses, 2000);
        let header =
            Header::from_bytes(&packed[..HEADER_BYTES].try_into().expect("16 bytes")).unwrap();
        assert_eq!(header.version, VERSION_COMPRESSED);
        assert_eq!(header.flags & FLAG_COMPRESSED, FLAG_COMPRESSED);
        assert!(header.compressed());
        assert!(
            packed.len() < plain.len() / 2,
            "strided reads must compress: {} -> {}",
            plain.len(),
            packed.len()
        );
    }

    #[test]
    fn zero_chunk_target_is_clamped() {
        let trace: Trace = (0..3)
            .map(|i| MemoryAccess::read(Address::new(i * 8), 8))
            .collect();
        let mut bytes = Vec::new();
        let summary = pack_trace(&trace, &mut bytes, 0).expect("packs");
        assert_eq!(summary.chunks, 3, "clamped to one access per chunk");
    }
}

//! Generation-rotated checkpoint families with garbage collection.
//!
//! A long-running replay (or a server session) that checkpoints
//! periodically should not overwrite its only good snapshot in place,
//! nor grow an unbounded pile of `.ctrs` files. A **family** solves
//! both: checkpoints for one logical stream are written as numbered
//! generations next to a base path —
//!
//! ```text
//! base:         session.ctrs
//! generations:  session.g0000.ctrs, session.g0001.ctrs, …
//! ```
//!
//! Each generation is written with [`CheckpointFile::write_atomic`]
//! (temp file, fsync, rename), so a generation either exists completely
//! or not at all — a kill mid-write can never leave a partial family,
//! only a missing newest generation, and resume falls back to the
//! previous one. After each successful write the rotator deletes all
//! but the newest `keep` generations. Every failure is a typed
//! [`CheckpointError`].

use std::path::{Path, PathBuf};

use crate::checkpoint::{CheckpointError, CheckpointFile};

/// Writes a rotating, garbage-collected family of `.ctrs` generations.
#[derive(Debug)]
pub struct CheckpointRotator {
    base: PathBuf,
    keep: usize,
    next_gen: u64,
}

impl CheckpointRotator {
    /// Creates a rotator for `base`, keeping the newest `keep`
    /// generations. Existing generations of the family are scanned so a
    /// restarted process continues numbering after them instead of
    /// overwriting history.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the family directory cannot be
    /// scanned (a missing directory counts as an empty family).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is zero — "rotate and keep nothing" is a driver
    /// bug, not a runtime condition.
    pub fn new(base: &Path, keep: usize) -> Result<Self, CheckpointError> {
        assert!(
            keep > 0,
            "a checkpoint family must keep at least one generation"
        );
        let next_gen = scan(base)?
            .last()
            .map(|(generation, _)| generation + 1)
            .unwrap_or(0);
        Ok(CheckpointRotator {
            base: base.to_path_buf(),
            keep,
            next_gen,
        })
    }

    /// The base path this family rotates around.
    #[must_use]
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// The generation number the next [`CheckpointRotator::write`] will
    /// use.
    #[must_use]
    pub fn next_generation(&self) -> u64 {
        self.next_gen
    }

    /// Writes `file` as the next generation (atomically), then deletes
    /// generations older than the newest `keep`. Returns the path the
    /// new generation landed at.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] from the atomic write or the collection
    /// sweep. A failed write leaves the family exactly as it was; a
    /// failed sweep leaves extra old generations behind (never a
    /// damaged one).
    pub fn write(&mut self, file: &CheckpointFile) -> Result<PathBuf, CheckpointError> {
        let path = generation_path(&self.base, self.next_gen);
        file.write_atomic(&path)?;
        self.next_gen += 1;
        let generations = scan(&self.base)?;
        let expired = generations.len().saturating_sub(self.keep);
        for (_, old) in &generations[..expired] {
            std::fs::remove_file(old).map_err(CheckpointError::Io)?;
        }
        Ok(path)
    }
}

/// The on-disk path of one generation of the family at `base`:
/// `dir/stem.gNNNN.ctrs` (a trailing `.ctrs` on `base` is treated as
/// the family extension, not part of the stem).
#[must_use]
pub fn generation_path(base: &Path, generation: u64) -> PathBuf {
    let name = base.file_name().and_then(|n| n.to_str()).unwrap_or("ckpt");
    let stem = name.strip_suffix(".ctrs").unwrap_or(name);
    base.with_file_name(format!("{stem}.g{generation:04}.ctrs"))
}

/// Every existing generation of the family at `base`, sorted ascending
/// by generation number. A missing directory is an empty family.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the directory exists but cannot be read.
pub fn scan(base: &Path) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
    let dir = match base.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = base.file_name().and_then(|n| n.to_str()).unwrap_or("ckpt");
    let stem = name.strip_suffix(".ctrs").unwrap_or(name);
    let prefix = format!("{stem}.g");

    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(CheckpointError::Io(e)),
    };
    let mut generations = Vec::new();
    for entry in entries {
        let entry = entry.map_err(CheckpointError::Io)?;
        let Ok(file_name) = entry.file_name().into_string() else {
            continue;
        };
        let Some(rest) = file_name
            .strip_prefix(&prefix)
            .and_then(|r| r.strip_suffix(".ctrs"))
        else {
            continue;
        };
        if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let Ok(generation) = rest.parse::<u64>() else {
            continue;
        };
        generations.push((generation, dir.join(file_name)));
    }
    generations.sort_by_key(|(generation, _)| *generation);
    Ok(generations)
}

/// The newest existing generation of the family at `base`, if any.
///
/// # Errors
///
/// As [`scan`].
pub fn latest(base: &Path) -> Result<Option<(u64, PathBuf)>, CheckpointError> {
    Ok(scan(base)?.pop())
}

/// Resolves a resume argument against rotation: an existing file is
/// used as-is (the single-file checkpoint layout), otherwise the newest
/// generation of the family at `path` is used, otherwise `None` — the
/// caller decides whether "nothing to resume" is an error or a fresh
/// start.
///
/// # Errors
///
/// As [`scan`].
pub fn resolve_resume(path: &Path) -> Result<Option<PathBuf>, CheckpointError> {
    if path.is_file() {
        return Ok(Some(path.to_path_buf()));
    }
    Ok(latest(path)?.map(|(_, newest)| newest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointFile, CheckpointManifest};

    fn sample_file(cursor: u64) -> CheckpointFile {
        let mut file = CheckpointFile::new(CheckpointManifest {
            config_fingerprint: 1,
            shape_fingerprint: 2,
            trace_identity: 3,
            resume_cursor: cursor,
            accesses: cursor * 10,
        });
        file.add_section("state", vec![0xAB; 16]);
        file
    }

    fn temp_family(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cnt_rotate_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join("session.ctrs")
    }

    #[test]
    fn rotation_keeps_newest_k_and_numbers_monotonically() {
        let base = temp_family("keep");
        let mut rotator = CheckpointRotator::new(&base, 2).expect("rotator");
        assert_eq!(rotator.next_generation(), 0);

        for cursor in 0..5 {
            let path = rotator.write(&sample_file(cursor)).expect("writes");
            assert!(path.is_file(), "generation exists after write");
        }
        let generations = scan(&base).expect("scans");
        let numbers: Vec<u64> = generations.iter().map(|(g, _)| *g).collect();
        assert_eq!(numbers, vec![3, 4], "only the newest two survive GC");

        // Every surviving generation is a complete, valid checkpoint.
        for (generation, path) in &generations {
            let file = CheckpointFile::read(path).expect("valid generation");
            assert_eq!(file.manifest.resume_cursor, *generation);
        }

        // The newest generation is what resume resolves to.
        let resolved = resolve_resume(&base)
            .expect("resolves")
            .expect("family found");
        assert_eq!(resolved, generation_path(&base, 4));

        // A restarted rotator continues after the survivors, never
        // overwriting history.
        let resumed = CheckpointRotator::new(&base, 2).expect("rescans");
        assert_eq!(resumed.next_generation(), 5);
        std::fs::remove_dir_all(base.parent().unwrap()).ok();
    }

    #[test]
    fn resolve_prefers_exact_files_and_reports_empty_families() {
        let base = temp_family("resolve");
        assert_eq!(resolve_resume(&base).expect("scans"), None, "empty family");

        // An exact .ctrs file (single-file layout) wins over the family.
        let exact = base.with_file_name("single.ctrs");
        sample_file(7).write_atomic(&exact).expect("writes");
        assert_eq!(
            resolve_resume(&exact).expect("resolves"),
            Some(exact.clone())
        );
        std::fs::remove_dir_all(base.parent().unwrap()).ok();
    }

    #[test]
    fn scan_ignores_foreign_files() {
        let base = temp_family("foreign");
        let dir = base.parent().unwrap().to_path_buf();
        std::fs::write(dir.join("session.g000x.ctrs"), b"junk").expect("writes");
        std::fs::write(dir.join("other.g0000.ctrs"), b"junk").expect("writes");
        std::fs::write(dir.join("session.g.ctrs"), b"junk").expect("writes");
        let mut rotator = CheckpointRotator::new(&base, 1).expect("rotator");
        assert_eq!(
            rotator.next_generation(),
            0,
            "junk files are not generations"
        );
        rotator.write(&sample_file(1)).expect("writes");
        let generations = scan(&base).expect("scans");
        assert_eq!(generations.len(), 1);
        assert_eq!(generations[0].0, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

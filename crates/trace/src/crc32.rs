//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over byte slices.
//!
//! The workspace vendors every dependency, so the checksum is implemented
//! here directly: a 256-entry table generated at first use, reflected
//! polynomial `0xEDB88320`, init and final XOR `0xFFFF_FFFF` — the exact
//! function `crc32fast`/zlib compute, so `.ctr` files are checkable with
//! standard tools.

use std::sync::OnceLock;

static TABLE: OnceLock<[u32; 256]> = OnceLock::new();

fn table() -> &'static [u32; 256] {
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// An incremental CRC-32 accumulator.
///
/// # Example
///
/// ```
/// use cnt_trace::crc32::{crc32, Hasher};
///
/// let mut h = Hasher::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), crc32(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Hasher { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ table[idx];
        }
    }

    /// The checksum of everything fed so far.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut h = Hasher::new();
        for piece in data.chunks(97) {
            h.update(piece);
        }
        assert_eq!(h.finalize(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 64];
        let clean = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}

//! The `.ctrs` checkpoint container: crash-safe snapshots of streamed
//! replays.
//!
//! A checkpoint is an *untrusted input*: a resumed replay must produce
//! byte-identical results to an uninterrupted run, so a damaged or
//! mismatched snapshot has to be rejected outright — never partially
//! restored. The container therefore validates everything up front and
//! reuses the `.ctr` framing discipline (little-endian, length-prefixed,
//! CRC-32 per payload, truncation always fatal):
//!
//! ```text
//! file     := header manifest section*
//! header   := magic[8] version:u16 flags:u16 section_count:u32   (16 bytes)
//! manifest := config_fp:u64 shape_fp:u64 trace_identity:u64
//!             resume_cursor:u64 accesses:u64 crc32:u32 pad:u32   (48 bytes)
//! section  := name_len:u16 pad:u16 payload_len:u32 crc32:u32
//!             name payload                                       (12-byte frame)
//! ```
//!
//! The manifest carries the three identity fields a resume must match:
//! the **config fingerprint** (hash of the full cache configuration),
//! the **trace identity** (rolling digest over the `.ctr` bytes consumed
//! so far — see [`StreamReader::identity`]), and the **resume cursor**
//! (chunks fully consumed). The shape fingerprint is a weaker hash that
//! excludes fork-safe knobs, used by warm-fork sweeps that deliberately
//! vary those knobs.
//!
//! Component state travels in named sections; each component implements
//! [`Checkpointable`] and owns its encoding. Writers go through
//! [`CheckpointFile::write_atomic`] (write to a temp file in the target
//! directory, fsync, rename), so a crash mid-write can never leave a
//! half-written file under the checkpoint's name.
//!
//! [`StreamReader::identity`]: crate::reader::StreamReader::identity

use std::error::Error;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;

use crate::crc32::crc32;

/// The eight magic bytes opening every `.ctrs` checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"CNTCKPT\0";

/// The checkpoint format version this crate writes and reads.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Size of the fixed checkpoint header in bytes.
pub const CHECKPOINT_HEADER_BYTES: usize = 16;

/// Size of the fixed manifest block in bytes.
pub const MANIFEST_BYTES: usize = 48;

/// Size of each section frame (before name and payload) in bytes.
pub const SECTION_FRAME_BYTES: usize = 12;

/// Everything that can go wrong while writing, reading, or applying a
/// `.ctrs` checkpoint.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The first bytes are not the `.ctrs` magic.
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The header declares a version this reader cannot decode.
    UnsupportedVersion {
        /// The declared version.
        version: u16,
    },
    /// The file ended in the middle of a header, manifest, frame, name,
    /// or payload — or carries trailing bytes past the last section.
    Truncated {
        /// What was being read when the shape broke.
        while_reading: &'static str,
    },
    /// The manifest's stored CRC-32 does not match its bytes.
    ManifestCrc {
        /// CRC-32 recorded in the manifest block.
        stored: u32,
        /// CRC-32 recomputed over the manifest as read.
        computed: u32,
    },
    /// A section's stored CRC-32 does not match its payload.
    SectionCrc {
        /// The section's name (empty if the name itself was unreadable).
        section: String,
        /// CRC-32 recorded in the section frame.
        stored: u32,
        /// CRC-32 recomputed over the payload as read.
        computed: u32,
    },
    /// Two sections share a name — the file was not produced by this
    /// writer.
    DuplicateSection {
        /// The repeated name.
        section: String,
    },
    /// A component's section is absent.
    MissingSection {
        /// The expected name.
        section: &'static str,
    },
    /// The checkpoint was taken under a different cache configuration.
    ConfigMismatch {
        /// Fingerprint of the configuration attempting the resume.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        found: u64,
    },
    /// The checkpoint was taken over a different trace file (or the
    /// trace changed on disk since).
    TraceMismatch {
        /// Identity digest of the trace being resumed.
        expected: u64,
        /// Identity digest recorded in the checkpoint.
        found: u64,
    },
    /// A section's payload decoded but described an impossible state
    /// (wrong geometry, counter inconsistencies, malformed JSON, ...).
    BadState {
        /// The offending section.
        section: String,
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "not a .ctrs checkpoint (magic bytes {found:02x?})")
            }
            CheckpointError::UnsupportedVersion { version } => {
                write!(f, "unsupported .ctrs checkpoint version {version}")
            }
            CheckpointError::Truncated { while_reading } => {
                write!(f, "truncated checkpoint: bad shape in the {while_reading}")
            }
            CheckpointError::ManifestCrc { stored, computed } => write!(
                f,
                "checkpoint manifest is corrupt: stored CRC32 {stored:#010x}, \
                 computed {computed:#010x}"
            ),
            CheckpointError::SectionCrc {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checkpoint section `{section}` is corrupt: stored CRC32 {stored:#010x}, \
                 computed {computed:#010x}"
            ),
            CheckpointError::DuplicateSection { section } => {
                write!(f, "checkpoint carries section `{section}` twice")
            }
            CheckpointError::MissingSection { section } => {
                write!(f, "checkpoint is missing section `{section}`")
            }
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under a different configuration \
                 (fingerprint {found:#018x}, this run is {expected:#018x})"
            ),
            CheckpointError::TraceMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different trace \
                 (identity {found:#018x}, this trace is {expected:#018x})"
            ),
            CheckpointError::BadState { section, what } => {
                write!(f, "checkpoint section `{section}`: {what}")
            }
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The identity fields a resume must match before any state is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointManifest {
    /// Fingerprint of the complete cache configuration. A `--resume`
    /// requires an exact match.
    pub config_fingerprint: u64,
    /// Fingerprint of the state-shaping subset of the configuration
    /// (geometry, policy kind, protection, ...), excluding knobs a
    /// warm-fork sweep may vary. Warm-fork requires only this to match.
    pub shape_fingerprint: u64,
    /// Rolling digest over the `.ctr` header and every consumed frame.
    pub trace_identity: u64,
    /// Chunks fully consumed when the checkpoint was taken; the resume
    /// seeks the reader here.
    pub resume_cursor: u64,
    /// Accesses replayed when the checkpoint was taken.
    pub accesses: u64,
}

impl CheckpointManifest {
    fn to_bytes(self) -> [u8; MANIFEST_BYTES] {
        let mut out = [0u8; MANIFEST_BYTES];
        out[..8].copy_from_slice(&self.config_fingerprint.to_le_bytes());
        out[8..16].copy_from_slice(&self.shape_fingerprint.to_le_bytes());
        out[16..24].copy_from_slice(&self.trace_identity.to_le_bytes());
        out[24..32].copy_from_slice(&self.resume_cursor.to_le_bytes());
        out[32..40].copy_from_slice(&self.accesses.to_le_bytes());
        let crc = crc32(&out[..40]);
        out[40..44].copy_from_slice(&crc.to_le_bytes());
        // out[44..48] stays zero (pad).
        out
    }

    fn from_bytes(bytes: &[u8; MANIFEST_BYTES]) -> Result<Self, CheckpointError> {
        let stored = u32::from_le_bytes(bytes[40..44].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[..40]);
        if stored != computed {
            return Err(CheckpointError::ManifestCrc { stored, computed });
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
        Ok(CheckpointManifest {
            config_fingerprint: word(0),
            shape_fingerprint: word(8),
            trace_identity: word(16),
            resume_cursor: word(24),
            accesses: word(32),
        })
    }
}

/// A component whose state can travel in a named checkpoint section.
///
/// Implementations own their encoding (typically `serde_json` over a
/// dedicated snapshot struct) and must make `restore_state`
/// **all-or-nothing**: decode and validate into a temporary value first,
/// and only then mutate `self`. A failed restore must leave the
/// component exactly as it was.
pub trait Checkpointable {
    /// The section name this component's state travels under.
    fn section_name(&self) -> &'static str;

    /// Serializes the component's state.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadState`] if the state cannot be encoded.
    fn encode_state(&self) -> Result<Vec<u8>, CheckpointError>;

    /// Replaces the component's state with a decoded section payload.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadState`] for undecodable or impossible
    /// payloads; `self` is untouched on error.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError>;
}

/// An in-memory `.ctrs` checkpoint: manifest plus named sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFile {
    /// The identity fields.
    pub manifest: CheckpointManifest,
    sections: Vec<(String, Vec<u8>)>,
}

impl CheckpointFile {
    /// An empty checkpoint carrying `manifest`.
    pub fn new(manifest: CheckpointManifest) -> Self {
        CheckpointFile {
            manifest,
            sections: Vec::new(),
        }
    }

    /// Adds a raw named section.
    ///
    /// # Panics
    ///
    /// Panics if the name repeats, is empty, or exceeds `u16::MAX` bytes
    /// — section names are compile-time constants, so these are writer
    /// bugs, not data errors.
    pub fn add_section(&mut self, name: &str, payload: Vec<u8>) {
        assert!(
            !name.is_empty() && name.len() <= usize::from(u16::MAX),
            "bad section name length"
        );
        assert!(
            self.section(name).is_none(),
            "duplicate checkpoint section `{name}`"
        );
        self.sections.push((name.to_string(), payload));
    }

    /// Snapshots a component into its named section.
    ///
    /// # Errors
    ///
    /// As [`Checkpointable::encode_state`].
    pub fn add_component(&mut self, component: &dyn Checkpointable) -> Result<(), CheckpointError> {
        let payload = component.encode_state()?;
        self.add_section(component.section_name(), payload);
        Ok(())
    }

    /// The payload of section `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    /// The payload of section `name`, or [`CheckpointError::MissingSection`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::MissingSection`] when absent.
    pub fn require(&self, name: &'static str) -> Result<&[u8], CheckpointError> {
        self.section(name)
            .ok_or(CheckpointError::MissingSection { section: name })
    }

    /// Restores a component from its named section.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::MissingSection`] or whatever
    /// [`Checkpointable::restore_state`] reports; the component is
    /// untouched on error.
    pub fn restore_component(
        &self,
        component: &mut dyn Checkpointable,
    ) -> Result<(), CheckpointError> {
        let payload = self.require(component.section_name())?;
        component.restore_state(payload)
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Renders the complete `.ctrs` byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.manifest.to_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(&0u16.to_le_bytes()); // pad
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses a complete `.ctrs` byte stream, validating magic, version,
    /// manifest CRC, every section CRC, and that the stream ends exactly
    /// after the declared sections.
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] shape/CRC variant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut at = 0usize;
        let take =
            |at: &mut usize, n: usize, what: &'static str| -> Result<&[u8], CheckpointError> {
                let end = at.checked_add(n).filter(|&e| e <= bytes.len()).ok_or(
                    CheckpointError::Truncated {
                        while_reading: what,
                    },
                )?;
                let slice = &bytes[*at..end];
                *at = end;
                Ok(slice)
            };

        let header = take(&mut at, CHECKPOINT_HEADER_BYTES, "checkpoint header")?;
        let mut found = [0u8; 8];
        found.copy_from_slice(&header[..8]);
        if found != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic { found });
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { version });
        }
        let section_count =
            u32::from_le_bytes([header[12], header[13], header[14], header[15]]) as usize;

        let manifest_bytes: [u8; MANIFEST_BYTES] = take(&mut at, MANIFEST_BYTES, "manifest")?
            .try_into()
            .expect("exact slice");
        let manifest = CheckpointManifest::from_bytes(&manifest_bytes)?;

        let mut sections: Vec<(String, Vec<u8>)> = Vec::with_capacity(section_count);
        for _ in 0..section_count {
            let frame = take(&mut at, SECTION_FRAME_BYTES, "section frame")?;
            let name_len = u16::from_le_bytes([frame[0], frame[1]]) as usize;
            let payload_len = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]) as usize;
            let stored = u32::from_le_bytes([frame[8], frame[9], frame[10], frame[11]]);
            let name = std::str::from_utf8(take(&mut at, name_len, "section name")?)
                .map_err(|_| CheckpointError::Truncated {
                    while_reading: "section name",
                })?
                .to_string();
            let payload = take(&mut at, payload_len, "section payload")?.to_vec();
            let computed = crc32(&payload);
            if stored != computed {
                return Err(CheckpointError::SectionCrc {
                    section: name,
                    stored,
                    computed,
                });
            }
            if sections.iter().any(|(n, _)| *n == name) {
                return Err(CheckpointError::DuplicateSection { section: name });
            }
            sections.push((name, payload));
        }
        if at != bytes.len() {
            return Err(CheckpointError::Truncated {
                while_reading: "end of file (trailing bytes)",
            });
        }
        Ok(CheckpointFile { manifest, sections })
    }

    /// Writes the checkpoint atomically: the bytes land in a temporary
    /// file next to `path`, are flushed and fsynced, and only then
    /// renamed over `path`. A crash at any point leaves either the old
    /// checkpoint or none — never a torn one.
    ///
    /// # Errors
    ///
    /// I/O errors from the filesystem.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let file_name = path.file_name().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpoint path has no file name",
            )
        })?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp_path = match dir {
            Some(d) => d.join(&tmp_name),
            None => Path::new(&tmp_name).to_path_buf(),
        };
        {
            let mut file = std::fs::File::create(&tmp_path)?;
            file.write_all(&self.to_bytes())?;
            file.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp_path, path) {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e.into());
        }
        Ok(())
    }

    /// Reads and fully validates a `.ctrs` file.
    ///
    /// # Errors
    ///
    /// As [`CheckpointFile::from_bytes`], plus I/O errors.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        CheckpointFile::from_bytes(&bytes)
    }
}

/// The FNV-1a offset basis — shared by every fingerprint in the
/// checkpoint subsystem.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a digest.
pub fn fnv1a_extend(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

/// One-shot FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointFile {
        let mut ckpt = CheckpointFile::new(CheckpointManifest {
            config_fingerprint: 0x1111,
            shape_fingerprint: 0x2222,
            trace_identity: 0x3333,
            resume_cursor: 42,
            accesses: 4_200,
        });
        ckpt.add_section("cache", vec![1, 2, 3, 4, 5]);
        ckpt.add_section("obs", br#"{"epoch":7}"#.to_vec());
        ckpt
    }

    #[test]
    fn byte_round_trip() {
        let ckpt = sample();
        let back = CheckpointFile::from_bytes(&ckpt.to_bytes()).expect("parses");
        assert_eq!(back, ckpt);
        assert_eq!(back.section("cache"), Some(&[1u8, 2, 3, 4, 5][..]));
        assert_eq!(back.manifest.resume_cursor, 42);
    }

    #[test]
    fn file_round_trip_is_atomic_rename() {
        let dir = std::env::temp_dir().join("cnt_ckpt_test_rt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("state.ctrs");
        let ckpt = sample();
        ckpt.write_atomic(&path).expect("writes");
        assert!(
            !dir.join("state.ctrs.tmp").exists(),
            "temp file must be renamed away"
        );
        let back = CheckpointFile::read(&path).expect("reads");
        assert_eq!(back, ckpt);
        // Overwriting goes through the same protocol.
        ckpt.write_atomic(&path).expect("overwrites");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            CheckpointFile::from_bytes(&bytes),
            Err(CheckpointError::BadMagic { .. })
        ));
    }

    #[test]
    fn version_bump_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            CheckpointFile::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion { version: 99 })
        ));
    }

    #[test]
    fn manifest_flip_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[CHECKPOINT_HEADER_BYTES + 3] ^= 0x80; // config fingerprint byte
        assert!(matches!(
            CheckpointFile::from_bytes(&bytes),
            Err(CheckpointError::ManifestCrc { .. })
        ));
    }

    #[test]
    fn payload_flip_rejected_with_section_name() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        // Flip the final payload byte (inside the "obs" section).
        let mut damaged = bytes.clone();
        let last = damaged.len() - 1;
        damaged[last] ^= 0x01;
        match CheckpointFile::from_bytes(&damaged) {
            Err(CheckpointError::SectionCrc { section, .. }) => assert_eq!(section, "obs"),
            other => panic!("expected SectionCrc, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_prefix_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = CheckpointFile::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::ManifestCrc { .. }
                ),
                "prefix of {cut} bytes: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            CheckpointFile::from_bytes(&bytes),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn missing_section_is_typed() {
        let ckpt = sample();
        assert!(ckpt.require("cache").is_ok());
        assert!(matches!(
            ckpt.require("energy"),
            Err(CheckpointError::MissingSection { section: "energy" })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate checkpoint section")]
    fn duplicate_section_panics_at_write_time() {
        let mut ckpt = sample();
        ckpt.add_section("cache", vec![]);
    }

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        let split = fnv1a_extend(fnv1a(b"ab"), b"cd");
        assert_eq!(split, fnv1a(b"abcd"));
    }
}

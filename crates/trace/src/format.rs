//! The `.ctr` on-disk layout: file header, chunk frames, and the packed
//! access records inside each chunk payload.
//!
//! All multi-byte integers are little-endian. The layout is:
//!
//! ```text
//! file   := header chunk*
//! header := magic[8] version:u16 flags:u16 chunk_target:u32      (16 bytes)
//! chunk  := payload_len:u32 access_count:u32 crc32:u32 payload   (12-byte frame)
//! payload:= record*                                              (crc32 covers this)
//! record := kind:u8 width:u8 addr:u64 value:u64?                 (value on writes only)
//! ```
//!
//! A clean end of stream falls exactly on a frame boundary; anything else
//! is reported as [`TraceError::Truncated`]. Reads and instruction
//! fetches pack to 10 bytes, writes to 18 — the length prefix plus the
//! access count let a reader skip or budget a chunk without decoding it.

use cnt_sim::trace::{AccessBatch, AccessKind, MemoryAccess};
use cnt_sim::Address;

use crate::error::TraceError;

/// The eight magic bytes opening every `.ctr` file.
pub const MAGIC: [u8; 8] = *b"CNTTRACE";

/// The format version this crate writes for uncompressed traces.
pub const VERSION: u16 = 1;

/// The format version written when chunk payloads are compressed.
///
/// Compression is a breaking change for readers — frame `payload_len`
/// becomes the *on-disk* (deflated) length and the payload needs
/// inflating before the CRC check — so compressed files bump the
/// version rather than hide behind a flag bit version-1 readers would
/// ignore. Old readers reject such files with a typed
/// [`TraceError::UnsupportedVersion`] instead of misreading them.
pub const VERSION_COMPRESSED: u16 = 2;

/// Header flag bit: chunk payloads are DEFLATE-compressed.
///
/// Only meaningful at [`VERSION_COMPRESSED`] and above; version-1 files
/// keep `flags` reserved-and-ignored as before.
pub const FLAG_COMPRESSED: u16 = 1 << 0;

/// Size of the fixed file header in bytes.
pub const HEADER_BYTES: usize = 16;

/// Size of each chunk frame (before its payload) in bytes.
pub const FRAME_BYTES: usize = 12;

/// Packed size of one access record in bytes.
pub fn record_bytes(access: &MemoryAccess) -> usize {
    if access.is_write() {
        18
    } else {
        10
    }
}

const KIND_READ: u8 = 0;
const KIND_WRITE: u8 = 1;
const KIND_IFETCH: u8 = 2;

/// The parsed file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version ([`VERSION`], or [`VERSION_COMPRESSED`] when the
    /// payloads are deflated).
    pub version: u16,
    /// Flag bits: [`FLAG_COMPRESSED`] at version 2+; all other bits
    /// remain reserved and ignored.
    pub flags: u16,
    /// The writer's target accesses per chunk — informational, for tools
    /// sizing prefetch windows before reading any frame.
    pub chunk_target: u32,
}

impl Header {
    /// Renders the 16-byte header.
    pub fn to_bytes(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[..8].copy_from_slice(&MAGIC);
        out[8..10].copy_from_slice(&self.version.to_le_bytes());
        out[10..12].copy_from_slice(&self.flags.to_le_bytes());
        out[12..16].copy_from_slice(&self.chunk_target.to_le_bytes());
        out
    }

    /// Parses and validates a 16-byte header.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] or [`TraceError::UnsupportedVersion`].
    pub fn from_bytes(bytes: &[u8; HEADER_BYTES]) -> Result<Self, TraceError> {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        if found != MAGIC {
            return Err(TraceError::BadMagic { found });
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != VERSION && version != VERSION_COMPRESSED {
            return Err(TraceError::UnsupportedVersion { version });
        }
        Ok(Header {
            version,
            flags: u16::from_le_bytes([bytes[10], bytes[11]]),
            chunk_target: u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]),
        })
    }

    /// True when chunk payloads must be inflated before decoding.
    pub fn compressed(&self) -> bool {
        self.version >= VERSION_COMPRESSED && self.flags & FLAG_COMPRESSED != 0
    }
}

/// One chunk frame: what precedes every payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Number of access records in the payload.
    pub access_count: u32,
    /// CRC-32 of the payload bytes.
    pub crc32: u32,
}

impl Frame {
    /// Renders the 12-byte frame.
    pub fn to_bytes(&self) -> [u8; FRAME_BYTES] {
        let mut out = [0u8; FRAME_BYTES];
        out[..4].copy_from_slice(&self.payload_len.to_le_bytes());
        out[4..8].copy_from_slice(&self.access_count.to_le_bytes());
        out[8..12].copy_from_slice(&self.crc32.to_le_bytes());
        out
    }

    /// Parses a 12-byte frame.
    pub fn from_bytes(bytes: &[u8; FRAME_BYTES]) -> Self {
        Frame {
            payload_len: u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            access_count: u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            crc32: u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
        }
    }
}

/// Appends one access record to a payload buffer.
pub fn encode_access(access: &MemoryAccess, out: &mut Vec<u8>) {
    let kind = match access.kind {
        AccessKind::Read => KIND_READ,
        AccessKind::Write => KIND_WRITE,
        AccessKind::InstrFetch => KIND_IFETCH,
    };
    out.push(kind);
    out.push(access.width);
    out.extend_from_slice(&access.addr.value().to_le_bytes());
    if access.is_write() {
        out.extend_from_slice(&access.value.to_le_bytes());
    }
}

/// Decodes an entire chunk payload into access records.
///
/// `chunk` is only used for error reporting; `expected` is the frame's
/// access count and must match exactly.
///
/// # Errors
///
/// [`TraceError::BadRecord`] when the payload is malformed — an unknown
/// kind byte, a record running past the payload end, trailing bytes, or
/// a record count that disagrees with the frame.
pub fn decode_payload(
    payload: &[u8],
    expected: u32,
    chunk: u64,
) -> Result<Vec<MemoryAccess>, TraceError> {
    let mut batch = AccessBatch::with_capacity(expected as usize);
    decode_payload_into(payload, expected, chunk, &mut batch)?;
    Ok(batch.iter().collect())
}

/// Decodes an entire chunk payload into a reusable struct-of-arrays
/// batch. The batch is cleared first, then every record's columns are
/// appended directly — no intermediate `MemoryAccess` vector, so a
/// replay loop can stream chunk after chunk through one set of buffers.
///
/// `chunk` is only used for error reporting; `expected` is the frame's
/// access count and must match exactly.
///
/// # Errors
///
/// As [`decode_payload`]. On error the batch contents are unspecified
/// (but always internally consistent).
pub fn decode_payload_into(
    payload: &[u8],
    expected: u32,
    chunk: u64,
    out: &mut AccessBatch,
) -> Result<(), TraceError> {
    out.clear();
    out.reserve(expected as usize);
    let mut offset = 0usize;
    while offset < payload.len() {
        let rest = &payload[offset..];
        if rest.len() < 10 {
            return Err(TraceError::BadRecord {
                chunk,
                offset,
                what: "record truncated inside payload",
            });
        }
        let kind = rest[0];
        let width = rest[1];
        let addr = Address::new(u64::from_le_bytes(rest[2..10].try_into().expect("8 bytes")));
        match kind {
            KIND_READ => {
                out.push_parts(AccessKind::Read, addr, width, 0);
                offset += 10;
            }
            KIND_IFETCH => {
                out.push_parts(AccessKind::InstrFetch, addr, width, 0);
                offset += 10;
            }
            KIND_WRITE => {
                if rest.len() < 18 {
                    return Err(TraceError::BadRecord {
                        chunk,
                        offset,
                        what: "write record truncated inside payload",
                    });
                }
                let value = u64::from_le_bytes(rest[10..18].try_into().expect("8 bytes"));
                out.push_parts(AccessKind::Write, addr, width, value);
                offset += 18;
            }
            _ => {
                return Err(TraceError::BadRecord {
                    chunk,
                    offset,
                    what: "unknown access kind byte",
                })
            }
        }
    }
    if out.len() != expected as usize {
        return Err(TraceError::BadRecord {
            chunk,
            offset,
            what: "payload record count disagrees with frame access count",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = Header {
            version: VERSION,
            flags: 0,
            chunk_target: 4096,
        };
        let back = Header::from_bytes(&h.to_bytes()).expect("valid header");
        assert_eq!(back, h);
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let mut bytes = Header {
            version: VERSION,
            flags: 0,
            chunk_target: 1,
        }
        .to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Header::from_bytes(&bytes),
            Err(TraceError::BadMagic { .. })
        ));
        let mut bytes = Header {
            version: VERSION,
            flags: 0,
            chunk_target: 1,
        }
        .to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            Header::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion { version: 99 })
        ));
    }

    #[test]
    fn compressed_header_round_trips_and_flags_gate() {
        let h = Header {
            version: VERSION_COMPRESSED,
            flags: FLAG_COMPRESSED,
            chunk_target: 4096,
        };
        let back = Header::from_bytes(&h.to_bytes()).expect("v2 headers parse");
        assert_eq!(back, h);
        assert!(back.compressed());
        // The flag bit alone does not enable compression at version 1:
        // v1 readers always treated flags as reserved-and-ignored.
        let v1 = Header {
            version: VERSION,
            flags: FLAG_COMPRESSED,
            chunk_target: 4096,
        };
        assert!(!Header::from_bytes(&v1.to_bytes())
            .expect("v1 parses")
            .compressed());
        // And a v2 header without the bit set is plain.
        let plain = Header {
            version: VERSION_COMPRESSED,
            flags: 0,
            chunk_target: 4096,
        };
        assert!(!plain.compressed());
    }

    #[test]
    fn records_round_trip() {
        let accesses = vec![
            MemoryAccess::read(Address::new(0x1000), 4),
            MemoryAccess::write(Address::new(0x2008), 8, 0xDEAD_BEEF_CAFE_F00D),
            MemoryAccess::ifetch(Address::new(0x40)),
            MemoryAccess::write(Address::new(0x3001), 1, 0xFF),
        ];
        let mut payload = Vec::new();
        for a in &accesses {
            encode_access(a, &mut payload);
        }
        assert_eq!(payload.len(), 10 + 18 + 10 + 18);
        let back = decode_payload(&payload, accesses.len() as u32, 0).expect("decodes");
        assert_eq!(back, accesses);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let mut payload = Vec::new();
        encode_access(&MemoryAccess::read(Address::new(8), 8), &mut payload);
        // Wrong count.
        assert!(matches!(
            decode_payload(&payload, 2, 7),
            Err(TraceError::BadRecord { chunk: 7, .. })
        ));
        // Truncated record.
        assert!(decode_payload(&payload[..5], 1, 0).is_err());
        // Unknown kind byte.
        let mut bad = payload.clone();
        bad[0] = 9;
        assert!(matches!(
            decode_payload(&bad, 1, 0),
            Err(TraceError::BadRecord {
                what: "unknown access kind byte",
                ..
            })
        ));
        // Truncated write.
        let mut w = Vec::new();
        encode_access(&MemoryAccess::write(Address::new(8), 8, 1), &mut w);
        assert!(decode_payload(&w[..12], 1, 0).is_err());
    }
}

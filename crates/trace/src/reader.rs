//! Bounded-memory streaming of `.ctr` chunks from any [`Read`] source.
//!
//! [`StreamReader`] never materializes the trace: it holds at most one
//! frame of lookahead plus the single chunk payload currently being
//! returned, and it refuses up front any chunk that could not fit the
//! configured [`ReadOptions::budget_bytes`]. Callers building a prefetch
//! window use [`StreamReader::next_raw_within`] to fill up to a byte
//! budget without ever over-reading: a chunk that does not fit the
//! remaining window stays inside the reader (only its 12-byte frame has
//! been consumed) and is returned by the next call.
//!
//! Corruption handling is a per-reader policy: [`CorruptionPolicy::FailFast`]
//! surfaces the first CRC mismatch as an error; with
//! [`CorruptionPolicy::SkipWithReport`] damaged chunks are counted in
//! [`IngestStats`] and stepped over (the length-prefixed framing keeps
//! the stream in sync). Truncation — a stream ending mid-frame or
//! mid-payload — is always fatal: past the damage there is no frame
//! boundary left to resynchronize on.
//!
//! Compressed traces (header version 2 with the compressed flag) are
//! handled transparently: each chunk is inflated after the payload read
//! and *before* the CRC check, so the frame CRC-32 — computed over the
//! uncompressed records at write time — still catches damage wherever
//! it happened. An undecodable DEFLATE stream is per-chunk damage
//! ([`TraceError::Decompress`]), subject to the same corruption policy
//! as a CRC mismatch.

use std::io::{Read, Seek, SeekFrom};

use cnt_sim::trace::{AccessBatch, MemoryAccess, Trace};

use crate::checkpoint::{fnv1a, fnv1a_extend};
use crate::crc32::crc32;
use crate::error::TraceError;
use crate::format::{
    decode_payload, decode_payload_into, Frame, Header, FRAME_BYTES, HEADER_BYTES,
};

/// What to do when a chunk's CRC32 (or payload shape) is wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorruptionPolicy {
    /// Surface the first damaged chunk as an error (the default).
    #[default]
    FailFast,
    /// Skip damaged chunks, counting them in [`IngestStats`], and keep
    /// streaming the intact remainder.
    SkipWithReport,
}

/// Reader configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOptions {
    /// Upper bound on buffered payload bytes; chunks larger than this are
    /// rejected with [`TraceError::ChunkExceedsBudget`].
    pub budget_bytes: usize,
    /// Damaged-chunk handling.
    pub corruption: CorruptionPolicy,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            budget_bytes: 8 * 1024 * 1024,
            corruption: CorruptionPolicy::FailFast,
        }
    }
}

/// Read-side counters, updated as the stream advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Intact chunks yielded to the caller.
    pub chunks_read: u64,
    /// Damaged chunks stepped over (skip policy only).
    pub chunks_skipped: u64,
    /// CRC32 mismatches seen.
    pub crc_failures: u64,
    /// Compressed chunks whose payload failed to inflate.
    pub decompress_failures: u64,
    /// Payload-shape errors seen while decoding via [`StreamReader::next_chunk`].
    pub decode_failures: u64,
    /// Access records declared by yielded chunk frames.
    pub accesses_declared: u64,
    /// Payload bytes read from the source, including skipped chunks.
    pub bytes_read: u64,
}

/// A CRC-verified chunk that has not been decoded yet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawChunk {
    /// Zero-based position in the file, counting skipped chunks.
    pub index: u64,
    /// Records the frame declares.
    pub access_count: u32,
    /// The packed records.
    pub payload: Vec<u8>,
}

impl RawChunk {
    /// Decodes the payload into access records.
    ///
    /// This is intentionally separate from reading so callers can fan
    /// decode work out across worker threads while I/O stays sequential.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadRecord`] for malformed payloads.
    pub fn decode(&self) -> Result<Vec<MemoryAccess>, TraceError> {
        decode_payload(&self.payload, self.access_count, self.index)
    }

    /// Decodes the payload into a reusable struct-of-arrays batch (the
    /// replay hot path — see [`decode_payload_into`]). The batch is
    /// cleared first.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadRecord`] for malformed payloads.
    pub fn decode_batch(&self, out: &mut AccessBatch) -> Result<(), TraceError> {
        decode_payload_into(&self.payload, self.access_count, self.index, out)
    }
}

/// Result of one bounded fetch attempt.
#[derive(Debug)]
pub enum Fetch {
    /// The next intact chunk, within the requested byte bound.
    Chunk(RawChunk),
    /// The next chunk needs more bytes than the caller has left in its
    /// window; nothing was buffered. Retry with a fresh window.
    WouldExceed {
        /// Index of the pending chunk.
        chunk: u64,
        /// Payload bytes the pending chunk requires.
        needed: usize,
    },
    /// Clean end of stream.
    Eof,
}

/// A streaming `.ctr` reader over any [`Read`] source.
pub struct StreamReader<R: Read> {
    src: R,
    header: Header,
    opts: ReadOptions,
    /// Index of the next chunk to be read (skipped chunks advance it too).
    next_index: u64,
    /// A frame whose payload has not been fetched yet (window overflow).
    lookahead: Option<Frame>,
    stats: IngestStats,
    finished: bool,
    /// Rolling FNV-1a digest over the file header plus the 12-byte frame
    /// of every chunk whose payload has been consumed (each frame embeds
    /// its payload's CRC-32, so payload damage perturbs this too).
    identity: u64,
}

impl<R: Read> StreamReader<R> {
    /// Reads and validates the file header.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`], [`TraceError::UnsupportedVersion`],
    /// [`TraceError::Truncated`], or an I/O error.
    pub fn new(mut src: R, opts: ReadOptions) -> Result<Self, TraceError> {
        let mut bytes = [0u8; HEADER_BYTES];
        read_exact_or(&mut src, &mut bytes, u64::MAX, "file header")?;
        let header = Header::from_bytes(&bytes)?;
        let identity = fnv1a(&bytes);
        Ok(StreamReader {
            src,
            header,
            opts,
            next_index: 0,
            lookahead: None,
            stats: IngestStats::default(),
            finished: false,
            identity,
        })
    }

    /// The parsed file header.
    pub fn header(&self) -> Header {
        self.header
    }

    /// The configured options.
    pub fn options(&self) -> ReadOptions {
        self.opts
    }

    /// Read-side counters so far.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Index of the next chunk to be consumed (the resume cursor).
    ///
    /// A frame held in lookahead after a window overflow is *not*
    /// counted: its payload has not been consumed, and a resumed reader
    /// re-reads that frame from the file.
    pub fn cursor(&self) -> u64 {
        self.next_index
    }

    /// The trace-identity digest: FNV-1a over the file header plus every
    /// consumed chunk frame. Two readers at the same [`cursor`] over the
    /// same file always agree, while a different trace — any re-pack of
    /// different content perturbs the frames' lengths, access counts, or
    /// recorded CRC-32s — diverges with overwhelming probability.
    /// Checkpoints record this so a resume can refuse the wrong trace.
    /// (Payload bytes themselves are deliberately not folded in: that is
    /// what lets [`seek_to_chunk`] reconstruct the digest in O(frames).
    /// Payload damage *below* the cursor is immaterial to a resume — the
    /// prefix's effect lives in the restored cache state and those bytes
    /// are never read again — and damage above it is still caught by the
    /// normal per-chunk CRC check when the chunk is consumed.)
    ///
    /// [`cursor`]: Self::cursor
    /// [`seek_to_chunk`]: Self::seek_to_chunk
    pub fn identity(&self) -> u64 {
        self.identity
    }

    /// Reads the next frame, distinguishing clean EOF (exactly at a
    /// frame boundary) from truncation.
    fn read_frame(&mut self) -> Result<Option<Frame>, TraceError> {
        let mut bytes = [0u8; FRAME_BYTES];
        // A clean end of stream yields zero bytes here; anything between
        // 1 and FRAME_BYTES-1 is a torn frame.
        let mut filled = 0usize;
        while filled < FRAME_BYTES {
            let n = self.src.read(&mut bytes[filled..])?;
            if n == 0 {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(TraceError::Truncated {
                        chunk: self.next_index,
                        while_reading: "chunk frame",
                    })
                };
            }
            filled += n;
        }
        Ok(Some(Frame::from_bytes(&bytes)))
    }

    /// Fetches the next intact chunk if its payload fits in `max_bytes`.
    ///
    /// On [`Fetch::WouldExceed`] the chunk remains pending inside the
    /// reader — no payload bytes were buffered — so a later call with a
    /// larger bound picks it up. This is what lets a prefetching replay
    /// bound its total buffered bytes *exactly* by its budget.
    ///
    /// # Errors
    ///
    /// [`TraceError::ChunkExceedsBudget`] when the chunk can never fit
    /// the reader's budget, [`TraceError::CrcMismatch`] under
    /// [`CorruptionPolicy::FailFast`], [`TraceError::Truncated`], or I/O
    /// errors. All of these end the stream.
    pub fn next_raw_within(&mut self, max_bytes: usize) -> Result<Fetch, TraceError> {
        loop {
            if self.finished {
                return Ok(Fetch::Eof);
            }
            let frame = match self.lookahead.take() {
                Some(frame) => frame,
                None => match self.read_frame()? {
                    Some(frame) => frame,
                    None => {
                        self.finished = true;
                        return Ok(Fetch::Eof);
                    }
                },
            };
            let len = frame.payload_len as usize;
            if len > self.opts.budget_bytes {
                self.finished = true;
                return Err(TraceError::ChunkExceedsBudget {
                    chunk: self.next_index,
                    payload_bytes: len as u64,
                    budget_bytes: self.opts.budget_bytes as u64,
                });
            }
            if len > max_bytes {
                self.lookahead = Some(frame);
                return Ok(Fetch::WouldExceed {
                    chunk: self.next_index,
                    needed: len,
                });
            }
            let index = self.next_index;
            self.next_index += 1;
            self.identity = fnv1a_extend(self.identity, &frame.to_bytes());
            let mut payload = vec![0u8; len];
            if let Err(e) = read_exact_or(&mut self.src, &mut payload, index, "chunk payload") {
                // Truncation is unrecoverable; poison the stream.
                self.finished = true;
                return Err(e);
            }
            self.stats.bytes_read += len as u64;
            if self.header.compressed() {
                // Inflate before the CRC check: the frame CRC-32 covers
                // the uncompressed records, so codec damage and record
                // damage fall through the same corruption policy. The
                // reader budget caps the inflated size too — a chunk
                // whose *decompressed* payload would blow the budget is
                // per-chunk damage (the frame stayed in sync), not a
                // stream-fatal budget error.
                match inflate_payload(&payload, self.opts.budget_bytes) {
                    Ok(inflated) => payload = inflated,
                    Err(what) => {
                        self.stats.decompress_failures += 1;
                        match self.opts.corruption {
                            CorruptionPolicy::FailFast => {
                                self.finished = true;
                                return Err(TraceError::Decompress { chunk: index, what });
                            }
                            CorruptionPolicy::SkipWithReport => {
                                self.stats.chunks_skipped += 1;
                                continue;
                            }
                        }
                    }
                }
            }
            let computed = crc32(&payload);
            if computed != frame.crc32 {
                self.stats.crc_failures += 1;
                match self.opts.corruption {
                    CorruptionPolicy::FailFast => {
                        self.finished = true;
                        return Err(TraceError::CrcMismatch {
                            chunk: index,
                            stored: frame.crc32,
                            computed,
                        });
                    }
                    CorruptionPolicy::SkipWithReport => {
                        self.stats.chunks_skipped += 1;
                        continue;
                    }
                }
            }
            self.stats.chunks_read += 1;
            self.stats.accesses_declared += u64::from(frame.access_count);
            return Ok(Fetch::Chunk(RawChunk {
                index,
                access_count: frame.access_count,
                payload,
            }));
        }
    }

    /// Fetches the next intact chunk, bounded only by the reader budget.
    ///
    /// # Errors
    ///
    /// As [`next_raw_within`](Self::next_raw_within).
    pub fn next_raw(&mut self) -> Result<Option<RawChunk>, TraceError> {
        match self.next_raw_within(self.opts.budget_bytes)? {
            Fetch::Chunk(raw) => Ok(Some(raw)),
            Fetch::Eof => Ok(None),
            Fetch::WouldExceed { .. } => {
                unreachable!("budget-bounded fetch cannot overflow the budget")
            }
        }
    }

    /// Fetches and decodes the next chunk, applying the corruption
    /// policy to payload-shape errors as well.
    ///
    /// # Errors
    ///
    /// As [`next_raw_within`](Self::next_raw_within), plus
    /// [`TraceError::BadRecord`] under [`CorruptionPolicy::FailFast`].
    pub fn next_chunk(&mut self) -> Result<Option<(u64, Vec<MemoryAccess>)>, TraceError> {
        loop {
            let Some(raw) = self.next_raw()? else {
                return Ok(None);
            };
            match raw.decode() {
                Ok(accesses) => return Ok(Some((raw.index, accesses))),
                Err(e) => {
                    self.stats.decode_failures += 1;
                    match self.opts.corruption {
                        CorruptionPolicy::FailFast => {
                            self.finished = true;
                            return Err(e);
                        }
                        CorruptionPolicy::SkipWithReport => {
                            self.stats.chunks_skipped += 1;
                            // The frame-declared counters no longer hold.
                            self.stats.chunks_read -= 1;
                            self.stats.accesses_declared -= u64::from(raw.access_count);
                            continue;
                        }
                    }
                }
            }
        }
    }
}

impl<R: Read + Seek> StreamReader<R> {
    /// Advances a freshly-opened reader to chunk `n` without buffering
    /// or CRC-checking any payload: each of the `n` frames is read and
    /// validated (structure, byte budget, not running past the file),
    /// its payload is stepped over with a relative seek, and the
    /// identity digest plus [`IngestStats`] are reconstructed exactly as
    /// an uninterrupted fail-fast run would have left them. Resume cost
    /// is therefore O(frames), not O(payload bytes).
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] if the file ends before chunk `n` (the
    /// seek target lies beyond the trace), [`TraceError::ChunkExceedsBudget`]
    /// if a skipped chunk could never have been replayed under this
    /// reader's budget, or I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if the reader has already consumed or looked ahead at any
    /// chunk — seeking is only meaningful right after open.
    pub fn seek_to_chunk(&mut self, n: u64) -> Result<(), TraceError> {
        assert!(
            self.next_index == 0 && self.lookahead.is_none() && !self.finished,
            "seek_to_chunk requires a freshly-opened reader"
        );
        // Establish the file extent once so relative seeks cannot
        // silently run past EOF (seeking beyond the end is not an error
        // at the OS level, but it must be one here).
        let start = self.src.stream_position()?;
        let end = self.src.seek(SeekFrom::End(0))?;
        self.src.seek(SeekFrom::Start(start))?;
        let mut pos = start;

        for _ in 0..n {
            let frame = match self.read_frame()? {
                Some(frame) => frame,
                None => {
                    self.finished = true;
                    return Err(TraceError::Truncated {
                        chunk: self.next_index,
                        while_reading: "seek target (cursor beyond the trace)",
                    });
                }
            };
            pos += FRAME_BYTES as u64;
            let len = u64::from(frame.payload_len);
            if len > self.opts.budget_bytes as u64 {
                self.finished = true;
                return Err(TraceError::ChunkExceedsBudget {
                    chunk: self.next_index,
                    payload_bytes: len,
                    budget_bytes: self.opts.budget_bytes as u64,
                });
            }
            if pos + len > end {
                self.finished = true;
                return Err(TraceError::Truncated {
                    chunk: self.next_index,
                    while_reading: "chunk payload (during seek)",
                });
            }
            self.src.seek(SeekFrom::Current(len as i64))?;
            pos += len;
            self.identity = fnv1a_extend(self.identity, &frame.to_bytes());
            self.stats.chunks_read += 1;
            self.stats.accesses_declared += u64::from(frame.access_count);
            self.stats.bytes_read += len;
            self.next_index += 1;
        }
        Ok(())
    }
}

/// Reads a whole `.ctr` stream into an in-memory [`Trace`] — the
/// non-streaming convenience for tools and tests.
///
/// # Errors
///
/// As [`StreamReader::next_chunk`].
pub fn read_trace<R: Read>(src: R, opts: ReadOptions) -> Result<Trace, TraceError> {
    let mut reader = StreamReader::new(src, opts)?;
    let mut trace = Trace::new();
    while let Some((_, accesses)) = reader.next_chunk()? {
        trace.extend(accesses);
    }
    Ok(trace)
}

/// Inflates one compressed chunk payload, capping the decompressed size
/// at the reader budget. Errors are rendered to a string because the
/// inflater's error type is a shim detail the `.ctr` API should not
/// re-export.
fn inflate_payload(payload: &[u8], budget_bytes: usize) -> Result<Vec<u8>, String> {
    let mut decoder = flate2::read::DeflateDecoder::with_limit(payload, budget_bytes);
    let mut inflated = Vec::new();
    decoder
        .read_to_end(&mut inflated)
        .map_err(|e| e.to_string())?;
    Ok(inflated)
}

fn read_exact_or<R: Read>(
    src: &mut R,
    buf: &mut [u8],
    chunk: u64,
    while_reading: &'static str,
) -> Result<(), TraceError> {
    src.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated {
                chunk,
                while_reading,
            }
        } else {
            TraceError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::pack_trace;
    use cnt_sim::Address;

    fn sample_trace(n: u64) -> Trace {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    MemoryAccess::write(Address::new(0x1000 + i * 8), 8, i.wrapping_mul(0x9E37))
                } else {
                    MemoryAccess::read(Address::new(0x1000 + i * 8), 8)
                }
            })
            .collect()
    }

    fn packed(n: u64, chunk_accesses: u32) -> Vec<u8> {
        let mut bytes = Vec::new();
        pack_trace(&sample_trace(n), &mut bytes, chunk_accesses).expect("packs");
        bytes
    }

    #[test]
    fn round_trips_across_chunks() {
        let trace = sample_trace(100);
        let bytes = packed(100, 7);
        let back = read_trace(&bytes[..], ReadOptions::default()).expect("reads");
        assert_eq!(back, trace);
    }

    #[test]
    fn stats_count_reads() {
        let bytes = packed(100, 7);
        let mut reader = StreamReader::new(&bytes[..], ReadOptions::default()).expect("opens");
        let mut total = 0usize;
        while let Some((_, accesses)) = reader.next_chunk().expect("streams") {
            total += accesses.len();
        }
        assert_eq!(total, 100);
        let stats = reader.stats();
        assert_eq!(stats.chunks_read, 15); // ceil(100 / 7)
        assert_eq!(stats.accesses_declared, 100);
        assert_eq!(stats.chunks_skipped, 0);
        assert!(stats.bytes_read > 0);
    }

    #[test]
    fn truncated_payload_is_fatal_even_when_skipping() {
        let bytes = packed(20, 5);
        let cut = &bytes[..bytes.len() - 3];
        let mut reader = StreamReader::new(
            cut,
            ReadOptions {
                corruption: CorruptionPolicy::SkipWithReport,
                ..ReadOptions::default()
            },
        )
        .expect("opens");
        let mut err = None;
        loop {
            match reader.next_chunk() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(TraceError::Truncated { .. })), "{err:?}");
    }

    #[test]
    fn flipped_payload_bit_fails_fast_or_skips() {
        let mut bytes = packed(20, 5);
        // Flip one payload bit in the second chunk. Layout: header,
        // then frames+payloads; find the second payload start.
        let second_payload =
            HEADER_BYTES + FRAME_BYTES + chunk_payload_len(&bytes, 0) + FRAME_BYTES;
        bytes[second_payload + 2] ^= 0x40;

        let err = read_trace(&bytes[..], ReadOptions::default()).unwrap_err();
        assert!(
            matches!(err, TraceError::CrcMismatch { chunk: 1, .. }),
            "{err}"
        );

        let mut reader = StreamReader::new(
            &bytes[..],
            ReadOptions {
                corruption: CorruptionPolicy::SkipWithReport,
                ..ReadOptions::default()
            },
        )
        .expect("opens");
        let mut seen = Vec::new();
        while let Some((index, accesses)) = reader.next_chunk().expect("skips damage") {
            seen.push((index, accesses.len()));
        }
        assert_eq!(seen, vec![(0, 5), (2, 5), (3, 5)]);
        let stats = reader.stats();
        assert_eq!(stats.crc_failures, 1);
        assert_eq!(stats.chunks_skipped, 1);
        assert_eq!(stats.chunks_read, 3);
    }

    #[test]
    fn oversized_chunk_is_rejected_by_budget() {
        let bytes = packed(100, 100); // one big chunk: 100 records
        let err = read_trace(
            &bytes[..],
            ReadOptions {
                budget_bytes: 64,
                ..ReadOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, TraceError::ChunkExceedsBudget { chunk: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn would_exceed_leaves_chunk_pending() {
        let bytes = packed(10, 5); // two chunks
        let mut reader = StreamReader::new(&bytes[..], ReadOptions::default()).expect("opens");
        let first = match reader.next_raw_within(usize::MAX).expect("fetch") {
            Fetch::Chunk(raw) => raw,
            other => panic!("expected chunk, got {other:?}"),
        };
        // Window too small for the second chunk: it must stay pending.
        let needed = match reader.next_raw_within(1).expect("fetch") {
            Fetch::WouldExceed { chunk, needed } => {
                assert_eq!(chunk, first.index + 1, "pending chunk is identified");
                needed
            }
            other => panic!("expected overflow, got {other:?}"),
        };
        assert!(needed > 1);
        // A fresh window picks it up, identical content.
        let second = match reader.next_raw_within(needed).expect("fetch") {
            Fetch::Chunk(raw) => raw,
            other => panic!("expected chunk, got {other:?}"),
        };
        assert_eq!(second.index, first.index + 1);
        assert!(matches!(
            reader.next_raw_within(usize::MAX).expect("fetch"),
            Fetch::Eof
        ));
    }

    #[test]
    fn identity_tracks_consumed_prefix() {
        let bytes = packed(40, 5);
        let mut a = StreamReader::new(&bytes[..], ReadOptions::default()).expect("opens");
        let mut b = StreamReader::new(&bytes[..], ReadOptions::default()).expect("opens");
        assert_eq!(a.identity(), b.identity(), "same header, same digest");
        a.next_raw().expect("reads").expect("chunk");
        assert_ne!(a.identity(), b.identity(), "digest advances per chunk");
        b.next_raw().expect("reads").expect("chunk");
        assert_eq!(a.identity(), b.identity());
        assert_eq!(a.cursor(), 1);
        // A lookahead frame (window overflow) is not part of the digest.
        let before = a.identity();
        assert!(matches!(
            a.next_raw_within(1).expect("fetch"),
            Fetch::WouldExceed { .. }
        ));
        assert_eq!(a.identity(), before);
        assert_eq!(a.cursor(), 1);
        // A re-pack of different content diverges even with identical
        // chunking: the affected chunk's recorded CRC-32 lands in its
        // frame, and the frame feeds the digest.
        let trace: Trace = (0..40)
            .map(|i| {
                if i == 39 {
                    MemoryAccess::write(Address::new(0x1000 + i * 8), 8, 0xdead_beef)
                } else if i % 3 == 0 {
                    MemoryAccess::write(Address::new(0x1000 + i * 8), 8, i.wrapping_mul(0x9E37))
                } else {
                    MemoryAccess::read(Address::new(0x1000 + i * 8), 8)
                }
            })
            .collect();
        let mut other = Vec::new();
        pack_trace(&trace, &mut other, 5).expect("packs");
        assert_eq!(other.len(), bytes.len(), "same structure, different bytes");
        let mut c = StreamReader::new(&other[..], ReadOptions::default()).expect("opens");
        while c.next_raw().expect("reads").is_some() {}
        let mut full = StreamReader::new(&bytes[..], ReadOptions::default()).expect("opens");
        while full.next_raw().expect("reads").is_some() {}
        assert_ne!(c.identity(), full.identity());
    }

    #[test]
    fn seek_to_chunk_matches_sequential_consumption() {
        let bytes = packed(100, 7);
        for target in [0u64, 1, 7, 14, 15] {
            let mut seq = StreamReader::new(&bytes[..], ReadOptions::default()).expect("opens");
            for _ in 0..target {
                seq.next_raw().expect("reads").expect("chunk");
            }
            let mut seeked =
                StreamReader::new(std::io::Cursor::new(&bytes[..]), ReadOptions::default())
                    .expect("opens");
            seeked.seek_to_chunk(target).expect("seeks");
            assert_eq!(seeked.identity(), seq.identity(), "target {target}");
            assert_eq!(seeked.cursor(), seq.cursor());
            assert_eq!(seeked.stats(), seq.stats());
            // The remainder streams identically.
            loop {
                let a = seq.next_raw().expect("reads");
                let b = seeked.next_raw().expect("reads");
                assert_eq!(a, b, "target {target}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn seek_past_end_of_trace_is_truncation() {
        let bytes = packed(20, 5); // 4 chunks
        let mut reader =
            StreamReader::new(std::io::Cursor::new(&bytes[..]), ReadOptions::default())
                .expect("opens");
        let err = reader.seek_to_chunk(5).unwrap_err();
        assert!(matches!(err, TraceError::Truncated { .. }), "{err}");
        // A payload cut below the seek target is caught during the seek.
        let cut = &bytes[..bytes.len() - 3];
        let mut reader =
            StreamReader::new(std::io::Cursor::new(cut), ReadOptions::default()).expect("opens");
        let err = reader.seek_to_chunk(4).unwrap_err();
        assert!(matches!(err, TraceError::Truncated { .. }), "{err}");
    }

    /// A `Read + Seek` source that counts bytes actually *read* (seeks
    /// are free), to prove resume cost is O(frames), not O(payload).
    struct CountingSource<'a> {
        inner: std::io::Cursor<&'a [u8]>,
        bytes_read: std::rc::Rc<std::cell::Cell<u64>>,
    }

    impl Read for CountingSource<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.inner.read(buf)?;
            self.bytes_read.set(self.bytes_read.get() + n as u64);
            Ok(n)
        }
    }

    impl Seek for CountingSource<'_> {
        fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
            self.inner.seek(pos)
        }
    }

    #[test]
    fn seek_cost_is_frames_not_payloads() {
        // Large chunks: payload bytes dwarf frame bytes.
        let bytes = packed(4_000, 500); // 8 chunks, ~5 KB payload each
        let counter = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let src = CountingSource {
            inner: std::io::Cursor::new(&bytes[..]),
            bytes_read: counter.clone(),
        };
        let mut reader = StreamReader::new(src, ReadOptions::default()).expect("opens");
        reader.seek_to_chunk(8).expect("seeks");
        let read = counter.get();
        let frames_only = (HEADER_BYTES + 8 * FRAME_BYTES) as u64;
        assert_eq!(
            read,
            frames_only,
            "seek must read exactly the header and frames ({frames_only} bytes), \
             never payloads (file is {} bytes)",
            bytes.len()
        );
    }

    fn packed_compressed(n: u64, chunk_accesses: u32) -> Vec<u8> {
        let mut bytes = Vec::new();
        crate::writer::pack_trace_with(
            &sample_trace(n),
            &mut bytes,
            crate::writer::WriteOptions {
                chunk_accesses,
                compress: true,
            },
        )
        .expect("packs");
        bytes
    }

    #[test]
    fn compressed_stream_round_trips_transparently() {
        let trace = sample_trace(100);
        let bytes = packed_compressed(100, 7);
        let back = read_trace(&bytes[..], ReadOptions::default()).expect("reads");
        assert_eq!(back, trace);
    }

    #[test]
    fn damaged_compressed_chunk_follows_corruption_policy() {
        let mut bytes = packed_compressed(40, 10);
        // Flip a bit in the middle of the second chunk's DEFLATE stream.
        let second_payload =
            HEADER_BYTES + FRAME_BYTES + chunk_payload_len(&bytes, 0) + FRAME_BYTES;
        let mid = second_payload + chunk_payload_len(&bytes, 1) / 2;
        bytes[mid] ^= 0x10;

        // Fail-fast: either the inflater chokes (Decompress) or it
        // happens to produce wrong bytes the CRC catches (CrcMismatch).
        // Both are chunk-1 damage, and both are skippable.
        let err = read_trace(&bytes[..], ReadOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                TraceError::Decompress { chunk: 1, .. } | TraceError::CrcMismatch { chunk: 1, .. }
            ),
            "{err}"
        );
        assert!(err.is_skippable());

        let mut reader = StreamReader::new(
            &bytes[..],
            ReadOptions {
                corruption: CorruptionPolicy::SkipWithReport,
                ..ReadOptions::default()
            },
        )
        .expect("opens");
        let mut seen = Vec::new();
        while let Some((index, accesses)) = reader.next_chunk().expect("skips damage") {
            seen.push((index, accesses.len()));
        }
        assert_eq!(seen, vec![(0, 10), (2, 10), (3, 10)]);
        let stats = reader.stats();
        assert_eq!(stats.chunks_skipped, 1);
        assert_eq!(stats.crc_failures + stats.decompress_failures, 1);
    }

    #[test]
    fn compressed_chunk_inflating_past_budget_is_per_chunk_damage() {
        // A tiny budget that admits the compressed on-disk payload but
        // not the inflated records: the chunk must be rejected as
        // damage, not silently truncated.
        let bytes = packed_compressed(2000, 2000); // one chunk, highly compressible
        let on_disk = chunk_payload_len(&bytes, 0);
        let budget = on_disk + 64; // > compressed size, << inflated size
        let err = read_trace(
            &bytes[..],
            ReadOptions {
                budget_bytes: budget,
                ..ReadOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, TraceError::Decompress { chunk: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn seek_works_on_compressed_traces() {
        let bytes = packed_compressed(100, 7);
        let mut seq = StreamReader::new(&bytes[..], ReadOptions::default()).expect("opens");
        for _ in 0..7 {
            seq.next_raw().expect("reads").expect("chunk");
        }
        let mut seeked =
            StreamReader::new(std::io::Cursor::new(&bytes[..]), ReadOptions::default())
                .expect("opens");
        seeked.seek_to_chunk(7).expect("seeks");
        assert_eq!(seeked.identity(), seq.identity());
        loop {
            let a = seq.next_raw().expect("reads");
            let b = seeked.next_raw().expect("reads");
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = packed(4, 2);
        bytes[0] = b'X';
        assert!(matches!(
            StreamReader::new(&bytes[..], ReadOptions::default()),
            Err(TraceError::BadMagic { .. })
        ));
    }

    fn chunk_payload_len(bytes: &[u8], nth: usize) -> usize {
        let mut offset = HEADER_BYTES;
        for _ in 0..nth {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            offset += FRAME_BYTES + len;
        }
        u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize
    }
}

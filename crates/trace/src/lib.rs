//! # cnt-trace — streaming trace ingestion for multi-GB workload replay
//!
//! The in-memory [`cnt_sim::trace::Trace`] caps replay at RAM-sized
//! workloads. This crate adds the I/O layer between workload generation
//! and simulation: a chunked, length-prefixed binary trace format
//! (`.ctr`) plus a bounded-memory streaming reader, so the adaptive
//! encoder's policies can be evaluated over access streams far larger
//! than memory.
//!
//! - [`format`] — the on-disk layout: versioned header, 12-byte chunk
//!   frames carrying payload length / access count / CRC32, and packed
//!   access records;
//! - [`writer`] — [`TraceWriter`] and the `pack_*` one-shots, which
//!   buffer at most one chunk while packing any access iterator;
//! - [`reader`] — [`StreamReader`], which yields CRC-verified chunks
//!   from any [`std::io::Read`] source under a hard byte budget, with
//!   fail-fast or skip-with-report corruption handling;
//! - [`crc32`] — the vendored CRC-32 (IEEE) used by frames;
//! - [`checkpoint`] — the `.ctrs` snapshot container, which reuses the
//!   same framing discipline to make long streamed replays
//!   kill-and-resume safe ([`CheckpointFile`], [`Checkpointable`],
//!   typed [`CheckpointError`] rejection of damaged or mismatched
//!   snapshots);
//! - [`rotate`] — generation-rotated checkpoint families
//!   ([`CheckpointRotator`]): periodic checkpoints write
//!   `base.gNNNN.ctrs` atomically and garbage-collect all but the
//!   newest K, so a long-running session never overwrites its only
//!   good snapshot and never grows without bound.
//!
//! Reading and decoding are deliberately split ([`RawChunk::decode`])
//! so a replay harness can keep file I/O sequential while fanning chunk
//! decode across worker threads — see `cnt_bench::stream`, which keeps
//! such replays byte-identical between sequential and parallel runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod crc32;
pub mod error;
pub mod format;
pub mod reader;
pub mod rotate;
pub mod writer;

pub use checkpoint::{
    fnv1a, fnv1a_extend, CheckpointError, CheckpointFile, CheckpointManifest, Checkpointable,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION, FNV_OFFSET,
};
pub use error::TraceError;
pub use format::{
    Header, FLAG_COMPRESSED, FRAME_BYTES, HEADER_BYTES, MAGIC, VERSION, VERSION_COMPRESSED,
};
pub use reader::{
    read_trace, CorruptionPolicy, Fetch, IngestStats, RawChunk, ReadOptions, StreamReader,
};
pub use rotate::CheckpointRotator;
pub use writer::{
    pack_accesses, pack_accesses_with, pack_trace, pack_trace_with, PackSummary, TraceWriter,
    WriteOptions, DEFAULT_CHUNK_ACCESSES,
};

//! Property-based tests for the energy model and accounting invariants.

use cnt_energy::{BitEnergies, ChargeKind, Energy, EnergyMeter, SramEnergyModel};
use proptest::prelude::*;

fn arb_word() -> impl Strategy<Value = u64> {
    any::<u64>()
}

proptest! {
    /// Accounting is value-independent for fixed popcount: two words with
    /// the same number of ones cost the same.
    #[test]
    fn energy_depends_only_on_popcount(a in arb_word(), rot in 0u32..64) {
        let b = a.rotate_left(rot);
        let mut m1 = EnergyMeter::new(SramEnergyModel::cnfet_default());
        let mut m2 = EnergyMeter::new(SramEnergyModel::cnfet_default());
        m1.charge_read_word(a, 64);
        m2.charge_read_word(b, 64);
        prop_assert!((m1.total() - m2.total()).abs().femtojoules() < 1e-9);
    }

    /// Total energy is additive over any split of the same activity.
    #[test]
    fn accounting_is_additive(words in prop::collection::vec(arb_word(), 1..64), split in 0usize..64) {
        let split = split.min(words.len());
        let mut whole = EnergyMeter::new(SramEnergyModel::cnfet_default());
        for &w in &words {
            whole.charge_write_word(w, 64);
        }
        let mut part1 = EnergyMeter::new(SramEnergyModel::cnfet_default());
        let mut part2 = EnergyMeter::new(SramEnergyModel::cnfet_default());
        for &w in &words[..split] {
            part1.charge_write_word(w, 64);
        }
        for &w in &words[split..] {
            part2.charge_write_word(w, 64);
        }
        let sum = part1.breakdown().clone() + part2.breakdown().clone();
        prop_assert!((whole.total() - sum.total()).abs().femtojoules() < 1e-6);
        prop_assert_eq!(whole.breakdown().bits_written_one, sum.bits_written_one);
        prop_assert_eq!(whole.breakdown().bits_written_zero, sum.bits_written_zero);
    }

    /// Energy is always non-negative and monotone in activity.
    #[test]
    fn energy_is_monotone(words in prop::collection::vec(arb_word(), 1..32)) {
        let mut meter = EnergyMeter::new(SramEnergyModel::cnfet_default());
        let mut last = Energy::ZERO;
        for &w in &words {
            meter.charge_read_word(w, 64);
            let now = meter.total();
            prop_assert!(now >= last);
            last = now;
        }
    }

    /// For the CNFET model, a word with more ones is cheaper to read and
    /// more expensive to write than a word with fewer ones.
    #[test]
    fn cnfet_preference_ordering(ones_a in 0u32..=64, ones_b in 0u32..=64) {
        prop_assume!(ones_a < ones_b);
        let bits = BitEnergies::cnfet_default();
        prop_assert!(bits.read_bits(ones_b, 64) < bits.read_bits(ones_a, 64));
        prop_assert!(bits.write_bits(ones_b, 64) > bits.write_bits(ones_a, 64));
    }

    /// Charging by word equals charging by (ones, width) pair.
    #[test]
    fn word_and_bits_paths_agree(w in arb_word(), kind_idx in 0usize..7) {
        let kind = ChargeKind::ALL[kind_idx];
        let mut m1 = EnergyMeter::new(SramEnergyModel::cnfet_default());
        let mut m2 = EnergyMeter::new(SramEnergyModel::cnfet_default());
        if kind.is_read() {
            m1.charge_read_word_kind(w, 64, kind);
            m2.charge_read_bits_kind(w.count_ones(), 64, kind);
        } else {
            m1.charge_write_word_kind(w, 64, kind);
            m2.charge_write_bits_kind(w.count_ones(), 64, kind);
        }
        prop_assert_eq!(m1.breakdown(), m2.breakdown());
    }
}

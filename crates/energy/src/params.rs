//! Physical device parameters and a simplified first-order derivation of the
//! per-bit energies.
//!
//! The original paper characterized its CNFET SRAM cell with circuit
//! simulation (its "Table rw-analysis", whose body is missing from the
//! available text). Since the adaptive-encoding algorithm only consumes the
//! four per-bit energies, this module offers a *physically motivated*
//! first-order derivation — `E ≈ C·V²` scaled by per-operation swing
//! coefficients — so that users can explore how supply voltage or tube
//! count shifts the asymmetries, while the calibrated defaults in
//! [`BitEnergies::cnfet_default`](crate::BitEnergies::cnfet_default) remain
//! the reference characterization.

use serde::{Deserialize, Serialize};

use crate::error::EnergyModelError;
use crate::model::{BitEnergies, Energy};

/// Reference number of tubes per FET at which the defaults are calibrated.
const REF_TUBES: f64 = 4.0;
/// Reference tube diameter (nm) at which the defaults are calibrated.
const REF_DIAMETER_NM: f64 = 1.5;
/// Drive-strength sensitivity to tube count (dimensionless).
const TUBE_SENSITIVITY: f64 = 0.6;

/// Physical parameters of a CNFET 6T SRAM cell.
///
/// The derivation is first-order: each operation's energy is a capacitance
/// times `V_dd²` times a swing coefficient, modulated by a drive-strength
/// factor that improves (energy drops) with more parallel tubes and larger
/// tube diameter.
///
/// With the default parameters, [`derive_bit_energies`] reproduces
/// [`BitEnergies::cnfet_default`] to within a few percent.
///
/// [`derive_bit_energies`]: DeviceParams::derive_bit_energies
///
/// # Example
///
/// ```
/// use cnt_energy::DeviceParams;
///
/// let nominal = DeviceParams::default().derive_bit_energies()?;
/// let mut low_v = DeviceParams::default();
/// low_v.vdd = 0.7;
/// let scaled = low_v.derive_bit_energies()?;
/// // Lower supply voltage lowers every access energy quadratically.
/// assert!(scaled.wr1 < nominal.wr1);
/// # Ok::<(), cnt_energy::EnergyModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Supply voltage in volts. Admissible range: `(0.3, 1.2]`.
    pub vdd: f64,
    /// Parallel carbon nanotubes per transistor. Admissible range: `[1, 32]`.
    pub tubes_per_fet: u32,
    /// Tube diameter in nanometres. Admissible range: `[0.8, 3.0]`.
    pub tube_diameter_nm: f64,
    /// Bitline capacitance in femtofarads. Admissible range: `(0, 100]`.
    pub bitline_cap_ff: f64,
    /// Cell-internal storage-node capacitance in femtofarads.
    /// Admissible range: `(0, 10]`.
    pub internal_cap_ff: f64,
}

impl DeviceParams {
    /// Nominal 32 nm-class parameters calibrated against the defaults.
    pub fn new() -> Self {
        DeviceParams {
            vdd: 0.9,
            tubes_per_fet: 4,
            tube_diameter_nm: 1.5,
            bitline_cap_ff: 4.0,
            internal_cap_ff: 0.35,
        }
    }

    fn validate(&self) -> Result<(), EnergyModelError> {
        if !(self.vdd > 0.3 && self.vdd <= 1.2) {
            return Err(EnergyModelError::InvalidParam {
                name: "vdd",
                constraint: "must be in (0.3, 1.2] V",
                value: self.vdd,
            });
        }
        if !(1..=32).contains(&self.tubes_per_fet) {
            return Err(EnergyModelError::InvalidParam {
                name: "tubes_per_fet",
                constraint: "must be in [1, 32]",
                value: f64::from(self.tubes_per_fet),
            });
        }
        if !(0.8..=3.0).contains(&self.tube_diameter_nm) {
            return Err(EnergyModelError::InvalidParam {
                name: "tube_diameter_nm",
                constraint: "must be in [0.8, 3.0] nm",
                value: self.tube_diameter_nm,
            });
        }
        if !(self.bitline_cap_ff > 0.0 && self.bitline_cap_ff <= 100.0) {
            return Err(EnergyModelError::InvalidParam {
                name: "bitline_cap_ff",
                constraint: "must be in (0, 100] fF",
                value: self.bitline_cap_ff,
            });
        }
        if !(self.internal_cap_ff > 0.0 && self.internal_cap_ff <= 10.0) {
            return Err(EnergyModelError::InvalidParam {
                name: "internal_cap_ff",
                constraint: "must be in (0, 10] fF",
                value: self.internal_cap_ff,
            });
        }
        Ok(())
    }

    /// Drive-strength penalty factor, normalized to 1.0 at the reference
    /// device (4 tubes of 1.5 nm). Fewer/thinner tubes mean weaker drive,
    /// slower transitions and more crowbar energy, so the factor grows.
    fn drive_factor(&self) -> f64 {
        let tube_term = (1.0 + TUBE_SENSITIVITY / f64::from(self.tubes_per_fet))
            / (1.0 + TUBE_SENSITIVITY / REF_TUBES);
        let diameter_term = (REF_DIAMETER_NM / self.tube_diameter_nm).sqrt();
        tube_term * diameter_term
    }

    /// Derives the four per-bit energies from the device parameters.
    ///
    /// The model (all energies in femtojoules, capacitances in femtofarads):
    ///
    /// ```text
    /// E_rd0 = C_bl · V² · 0.800 · k     (full bitline discharge)
    /// E_rd1 = C_bl · V² · 0.140 · k     (small complementary swing)
    /// E_wr1 = (0.59·C_bl + C_int) · V² · k   (overpower pull-down,
    ///                                         charge storage node)
    /// E_wr0 = C_int · V² · 0.777 · k    (discharge stored charge)
    /// ```
    ///
    /// where `k` is the [drive factor](#method.drive_factor).
    ///
    /// # Errors
    ///
    /// Returns [`EnergyModelError::InvalidParam`] when a parameter is out of
    /// its admissible range, or a validation error if the derived energies
    /// are somehow inconsistent (cannot happen for admissible inputs).
    pub fn derive_bit_energies(&self) -> Result<BitEnergies, EnergyModelError> {
        self.validate()?;
        let v2 = self.vdd * self.vdd;
        let k = self.drive_factor();
        let bits = BitEnergies {
            rd0: Energy::from_femtojoules(self.bitline_cap_ff * v2 * 0.800 * k),
            rd1: Energy::from_femtojoules(self.bitline_cap_ff * v2 * 0.140 * k),
            wr1: Energy::from_femtojoules(
                (0.59 * self.bitline_cap_ff + self.internal_cap_ff) * v2 * k,
            ),
            wr0: Energy::from_femtojoules(self.internal_cap_ff * v2 * 0.777 * k),
        };
        bits.validate()?;
        Ok(bits)
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_matches_calibrated_defaults() {
        let derived = DeviceParams::new().derive_bit_energies().expect("nominal");
        let reference = BitEnergies::cnfet_default();
        for (d, r) in [
            (derived.rd0, reference.rd0),
            (derived.rd1, reference.rd1),
            (derived.wr0, reference.wr0),
            (derived.wr1, reference.wr1),
        ] {
            let rel = (d - r).abs().femtojoules() / r.femtojoules();
            assert!(
                rel < 0.05,
                "derived {d} vs reference {r} ({rel:.3} rel err)"
            );
        }
    }

    #[test]
    fn voltage_scaling_is_quadratic() {
        let mut p = DeviceParams::new();
        let e1 = p.derive_bit_energies().expect("ok").wr1;
        p.vdd = 0.45;
        let e2 = p.derive_bit_energies().expect("ok").wr1;
        let ratio = e1.ratio(e2);
        assert!((ratio - 4.0).abs() < 1e-9, "expected 4x, got {ratio}");
    }

    #[test]
    fn more_tubes_lower_energy() {
        let mut p = DeviceParams::new();
        p.tubes_per_fet = 2;
        let weak = p.derive_bit_energies().expect("ok");
        p.tubes_per_fet = 8;
        let strong = p.derive_bit_energies().expect("ok");
        assert!(strong.rd0 < weak.rd0);
        assert!(strong.wr1 < weak.wr1);
    }

    #[test]
    fn wider_tubes_lower_energy() {
        let mut p = DeviceParams::new();
        p.tube_diameter_nm = 1.0;
        let thin = p.derive_bit_energies().expect("ok");
        p.tube_diameter_nm = 2.0;
        let thick = p.derive_bit_energies().expect("ok");
        assert!(thick.rd0 < thin.rd0);
    }

    #[test]
    fn derivation_preserves_asymmetry_ordering() {
        // Over a coarse parameter grid the orderings rd0 > rd1 and
        // wr1 > wr0 must always hold.
        for vdd in [0.5, 0.7, 0.9, 1.1] {
            for tubes in [1_u32, 4, 16] {
                for c_bl in [1.0, 4.0, 20.0] {
                    let p = DeviceParams {
                        vdd,
                        tubes_per_fet: tubes,
                        tube_diameter_nm: 1.5,
                        bitline_cap_ff: c_bl,
                        internal_cap_ff: 0.35,
                    };
                    let bits = p.derive_bit_energies().expect("grid point valid");
                    assert!(bits.rd0 > bits.rd1, "{p:?}");
                    assert!(bits.wr1 > bits.wr0, "{p:?}");
                }
            }
        }
    }

    #[test]
    fn out_of_range_params_error() {
        let mut p = DeviceParams::new();
        p.vdd = 0.0;
        assert!(matches!(
            p.derive_bit_energies().unwrap_err(),
            EnergyModelError::InvalidParam { name: "vdd", .. }
        ));

        let mut p = DeviceParams::new();
        p.tubes_per_fet = 0;
        assert!(p.derive_bit_energies().is_err());

        let mut p = DeviceParams::new();
        p.tube_diameter_nm = 5.0;
        assert!(p.derive_bit_energies().is_err());

        let mut p = DeviceParams::new();
        p.bitline_cap_ff = -1.0;
        assert!(p.derive_bit_energies().is_err());

        let mut p = DeviceParams::new();
        p.internal_cap_ff = 0.0;
        assert!(p.derive_bit_energies().is_err());
    }
}

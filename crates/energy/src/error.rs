//! Error types for energy-model construction.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating an energy model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EnergyModelError {
    /// One of the per-bit energies is negative or non-finite.
    NegativeEnergy {
        /// Which energy field was invalid (`"rd0"`, `"rd1"`, `"wr0"`, `"wr1"`).
        which: &'static str,
        /// The offending value in femtojoules.
        value: f64,
    },
    /// The CNFET-style asymmetry ordering was violated.
    InvertedAsymmetry {
        /// Which asymmetry was inverted.
        which: &'static str,
    },
    /// A physical device parameter is outside its admissible range.
    InvalidParam {
        /// The parameter name.
        name: &'static str,
        /// Human-readable constraint description.
        constraint: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for EnergyModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergyModelError::NegativeEnergy { which, value } => {
                write!(
                    f,
                    "energy `{which}` must be finite and non-negative, got {value}"
                )
            }
            EnergyModelError::InvertedAsymmetry { which } => {
                write!(f, "inverted {which} asymmetry")
            }
            EnergyModelError::InvalidParam {
                name,
                constraint,
                value,
            } => write!(f, "device parameter `{name}` {constraint}, got {value}"),
        }
    }
}

impl Error for EnergyModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = EnergyModelError::NegativeEnergy {
            which: "rd0",
            value: -1.0,
        };
        let s = e.to_string();
        assert!(s.starts_with("energy"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EnergyModelError>();
    }
}

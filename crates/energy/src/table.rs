//! Generator for the paper's Table I ("rw-analysis"): per-bit read/write
//! energies of CNFET and CMOS SRAM cells.
//!
//! The body of the original table is missing from the available paper text;
//! this module regenerates it from the calibrated default models (and,
//! optionally, from a supply-voltage sweep of the device-parameter
//! derivation) so the experiment harness can print it alongside the other
//! results.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::EnergyModelError;
use crate::model::{BitEnergies, SramEnergyModel, Technology};
use crate::params::DeviceParams;

/// One row of Table I: a technology's four per-bit energies and the derived
/// asymmetry ratios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableOneRow {
    /// Row label (e.g. `"CNFET @0.9V"`).
    pub label: String,
    /// The technology characterized.
    pub technology: Technology,
    /// The four per-bit energies.
    pub bits: BitEnergies,
    /// `E_wr1 / E_wr0` — the paper's headline "almost 10X" ratio.
    pub write_ratio: f64,
    /// `E_rd0 / E_rd1`.
    pub read_ratio: f64,
}

impl TableOneRow {
    fn from_model(label: impl Into<String>, model: &SramEnergyModel) -> Self {
        let bits = *model.bits();
        TableOneRow {
            label: label.into(),
            technology: model.technology(),
            write_ratio: bits.wr1.ratio(bits.wr0),
            read_ratio: bits.rd0.ratio(bits.rd1),
            bits,
        }
    }
}

/// Table I: CNFET vs CMOS per-bit access energies.
///
/// # Example
///
/// ```
/// use cnt_energy::table::TableOne;
///
/// let table = TableOne::generate();
/// let cnfet = &table.rows()[0];
/// assert!(cnfet.write_ratio >= 9.0, "writing '1' must cost ~10x writing '0'");
/// println!("{table}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableOne {
    rows: Vec<TableOneRow>,
}

impl TableOne {
    /// Generates the two-row reference table (default CNFET and CMOS cells).
    pub fn generate() -> Self {
        TableOne {
            rows: vec![
                TableOneRow::from_model("CNFET @0.9V", &SramEnergyModel::cnfet_default()),
                TableOneRow::from_model("CMOS @0.9V", &SramEnergyModel::cmos_default()),
            ],
        }
    }

    /// Generates the reference table plus a CNFET supply-voltage sweep.
    ///
    /// # Errors
    ///
    /// Returns an error if any voltage in `vdds` is outside the admissible
    /// device-parameter range.
    pub fn generate_with_vdd_sweep(vdds: &[f64]) -> Result<Self, EnergyModelError> {
        let mut table = TableOne::generate();
        for &vdd in vdds {
            let mut params = DeviceParams::new();
            params.vdd = vdd;
            let model = SramEnergyModel::from_device(&params)?;
            table
                .rows
                .push(TableOneRow::from_model(format!("CNFET @{vdd:.2}V"), &model));
        }
        Ok(table)
    }

    /// The table rows, reference rows first.
    pub fn rows(&self) -> &[TableOneRow] {
        &self.rows
    }
}

impl fmt::Display for TableOne {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "| {:<14} | {:>9} | {:>9} | {:>9} | {:>9} | {:>7} | {:>7} |",
            "cell", "E_rd0(fJ)", "E_rd1(fJ)", "E_wr0(fJ)", "E_wr1(fJ)", "wr1/wr0", "rd0/rd1"
        )?;
        writeln!(
            f,
            "|{:-<16}|{:-<11}|{:-<11}|{:-<11}|{:-<11}|{:-<9}|{:-<9}|",
            "", "", "", "", "", "", ""
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "| {:<14} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.3} | {:>7.2} | {:>7.2} |",
                row.label,
                row.bits.rd0.femtojoules(),
                row.bits.rd1.femtojoules(),
                row.bits.wr0.femtojoules(),
                row.bits.wr1.femtojoules(),
                row.write_ratio,
                row.read_ratio,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_table_has_cnfet_then_cmos() {
        let t = TableOne::generate();
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[0].technology, Technology::Cnfet);
        assert_eq!(t.rows()[1].technology, Technology::Cmos);
    }

    #[test]
    fn cnfet_row_has_tenfold_write_ratio() {
        let t = TableOne::generate();
        let ratio = t.rows()[0].write_ratio;
        assert!((9.0..=11.0).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn cmos_row_is_nearly_symmetric() {
        let t = TableOne::generate();
        let row = &t.rows()[1];
        assert!(row.write_ratio < 1.1);
        assert!(row.read_ratio < 1.1);
    }

    #[test]
    fn vdd_sweep_rows_scale_down() {
        let t = TableOne::generate_with_vdd_sweep(&[0.9, 0.8, 0.7]).expect("sweep");
        assert_eq!(t.rows().len(), 5);
        let e9 = t.rows()[2].bits.wr1;
        let e7 = t.rows()[4].bits.wr1;
        assert!(e7 < e9, "lower vdd must lower energy");
    }

    #[test]
    fn vdd_sweep_rejects_bad_voltage() {
        assert!(TableOne::generate_with_vdd_sweep(&[2.5]).is_err());
    }

    #[test]
    fn display_renders_all_rows() {
        let t = TableOne::generate();
        let s = t.to_string();
        assert!(s.contains("CNFET"));
        assert!(s.contains("CMOS"));
        assert!(s.contains("E_wr1"));
    }
}

//! Bit-level SRAM access-energy models for the CNT-Cache reproduction.
//!
//! The CNT-Cache paper (DATE 2020) observes that a CNFET-based SRAM cell has
//! strongly *asymmetric* access energies: reading a stored `0` is much more
//! expensive than reading a stored `1`, and writing a `1` is roughly ten
//! times as expensive as writing a `0`. This crate provides:
//!
//! * [`Energy`] — a femtojoule quantity newtype used by every other crate,
//! * [`BitEnergies`] — the four per-bit costs `E_rd0`, `E_rd1`, `E_wr0`,
//!   `E_wr1` plus the derived asymmetry deltas,
//! * [`SramEnergyModel`] — a named, validated model (CNFET or CMOS), either
//!   from calibrated defaults or derived from [`DeviceParams`],
//! * [`EnergyMeter`]/[`EnergyBreakdown`] — bit-exact dynamic-energy
//!   accounting used by the cache simulator,
//! * [`table::TableOne`] — the generator for the paper's Table I
//!   ("rw-analysis") comparing CNFET and CMOS cells.
//!
//! # Example
//!
//! ```
//! use cnt_energy::{SramEnergyModel, EnergyMeter};
//!
//! let model = SramEnergyModel::cnfet_default();
//! assert!(model.bits().wr1 > model.bits().wr0 * 9.0);
//!
//! let mut meter = EnergyMeter::new(model);
//! meter.charge_write_word(0xFF, 8); // writes eight '1' bits
//! meter.charge_read_word(0x00, 8);  // reads eight '0' bits
//! let report = meter.breakdown();
//! assert_eq!(report.bits_written_one, 8);
//! assert_eq!(report.bits_read_zero, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod account;
mod error;
mod model;
mod params;
pub mod table;

pub use account::{ChargeKind, EnergyBreakdown, EnergyMeter};
pub use error::EnergyModelError;
pub use model::{BitEnergies, Energy, SramEnergyModel, Technology};
pub use params::DeviceParams;

//! Bit-exact dynamic-energy accounting.
//!
//! The cache layers never compute energy themselves: they report *which bits
//! were read or written* (and why) to an [`EnergyMeter`], which prices them
//! with its [`SramEnergyModel`] and accumulates an [`EnergyBreakdown`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::model::{Energy, SramEnergyModel};

/// Why an SRAM array access happened, for breakdown purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChargeKind {
    /// A demand load reading data bits out of the array.
    DataRead,
    /// A demand store writing data bits into the array.
    DataWrite,
    /// Writing a whole refill line into the array after a miss.
    LineFill,
    /// Reading a dirty victim line out of the array for write-back.
    Writeback,
    /// Re-writing a line (or partition) because its encoding direction
    /// switched.
    EncodeSwitch,
    /// Reading H&D metadata bits (history counters, direction bits).
    MetadataRead,
    /// Writing H&D metadata bits.
    MetadataWrite,
    /// Reading protection check bits (parity / SECDED) to verify the
    /// direction vector.
    ProtectionCheck,
    /// Writing protection check bits after a legal direction update or a
    /// repair.
    ProtectionUpdate,
}

impl ChargeKind {
    /// All charge kinds, in breakdown-report order.
    pub const ALL: [ChargeKind; 9] = [
        ChargeKind::DataRead,
        ChargeKind::DataWrite,
        ChargeKind::LineFill,
        ChargeKind::Writeback,
        ChargeKind::EncodeSwitch,
        ChargeKind::MetadataRead,
        ChargeKind::MetadataWrite,
        ChargeKind::ProtectionCheck,
        ChargeKind::ProtectionUpdate,
    ];

    fn index(self) -> usize {
        match self {
            ChargeKind::DataRead => 0,
            ChargeKind::DataWrite => 1,
            ChargeKind::LineFill => 2,
            ChargeKind::Writeback => 3,
            ChargeKind::EncodeSwitch => 4,
            ChargeKind::MetadataRead => 5,
            ChargeKind::MetadataWrite => 6,
            ChargeKind::ProtectionCheck => 7,
            ChargeKind::ProtectionUpdate => 8,
        }
    }

    /// `true` if this kind reads bits out of the array (as opposed to
    /// writing them in).
    pub fn is_read(self) -> bool {
        matches!(
            self,
            ChargeKind::DataRead
                | ChargeKind::Writeback
                | ChargeKind::MetadataRead
                | ChargeKind::ProtectionCheck
        )
    }
}

impl fmt::Display for ChargeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChargeKind::DataRead => "data read",
            ChargeKind::DataWrite => "data write",
            ChargeKind::LineFill => "line fill",
            ChargeKind::Writeback => "writeback",
            ChargeKind::EncodeSwitch => "encode switch",
            ChargeKind::MetadataRead => "metadata read",
            ChargeKind::MetadataWrite => "metadata write",
            ChargeKind::ProtectionCheck => "protect check",
            ChargeKind::ProtectionUpdate => "protect update",
        };
        f.write_str(s)
    }
}

/// Accumulated bit counts and energies, split by [`ChargeKind`].
///
/// Breakdowns are additive: two breakdowns can be summed with `+`, which is
/// how multi-cache simulations aggregate their report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Number of `0` bits read out of the array.
    pub bits_read_zero: u64,
    /// Number of `1` bits read out of the array.
    pub bits_read_one: u64,
    /// Number of `0` bits written into the array.
    pub bits_written_zero: u64,
    /// Number of `1` bits written into the array.
    pub bits_written_one: u64,
    /// Energy per charge kind, indexed by [`ChargeKind::ALL`] order.
    energy_by_kind: [Energy; 9],
    /// Bit count per charge kind, indexed by [`ChargeKind::ALL`] order.
    bits_by_kind: [u64; 9],
}

impl EnergyBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        EnergyBreakdown::default()
    }

    /// Total dynamic energy across all kinds.
    pub fn total(&self) -> Energy {
        self.energy_by_kind.iter().sum()
    }

    /// Energy attributed to one charge kind.
    pub fn energy(&self, kind: ChargeKind) -> Energy {
        self.energy_by_kind[kind.index()]
    }

    /// Bits attributed to one charge kind.
    pub fn bits(&self, kind: ChargeKind) -> u64 {
        self.bits_by_kind[kind.index()]
    }

    /// Total bits read out of the array.
    pub fn bits_read(&self) -> u64 {
        self.bits_read_zero + self.bits_read_one
    }

    /// Total bits written into the array.
    pub fn bits_written(&self) -> u64 {
        self.bits_written_zero + self.bits_written_one
    }

    /// Total energy spent reading (all read-like kinds).
    pub fn read_energy(&self) -> Energy {
        ChargeKind::ALL
            .iter()
            .filter(|k| k.is_read())
            .map(|k| self.energy(*k))
            .sum()
    }

    /// Energy attributed to metadata protection (check-bit reads and
    /// writes) — the reliability overhead, itemized.
    pub fn protection_energy(&self) -> Energy {
        self.energy(ChargeKind::ProtectionCheck) + self.energy(ChargeKind::ProtectionUpdate)
    }

    /// Total energy spent writing (all write-like kinds).
    pub fn write_energy(&self) -> Energy {
        ChargeKind::ALL
            .iter()
            .filter(|k| !k.is_read())
            .map(|k| self.energy(*k))
            .sum()
    }

    fn record(&mut self, kind: ChargeKind, ones: u64, width: u64, energy: Energy) {
        debug_assert!(ones <= width);
        let zeros = width - ones;
        if kind.is_read() {
            self.bits_read_one += ones;
            self.bits_read_zero += zeros;
        } else {
            self.bits_written_one += ones;
            self.bits_written_zero += zeros;
        }
        self.energy_by_kind[kind.index()] += energy;
        self.bits_by_kind[kind.index()] += width;
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(mut self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        self.bits_read_zero += rhs.bits_read_zero;
        self.bits_read_one += rhs.bits_read_one;
        self.bits_written_zero += rhs.bits_written_zero;
        self.bits_written_one += rhs.bits_written_one;
        for i in 0..self.energy_by_kind.len() {
            self.energy_by_kind[i] += rhs.energy_by_kind[i];
            self.bits_by_kind[i] += rhs.bits_by_kind[i];
        }
    }
}

impl Sub for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn sub(mut self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        self -= rhs;
        self
    }
}

/// Componentwise subtraction for epoch deltas: `later - earlier` yields
/// the activity accrued between two snapshots of the same meter.
///
/// # Panics
///
/// Panics (in debug builds) if any counter of `rhs` exceeds `self`'s —
/// i.e. if the operands are not ordered snapshots of one accumulator.
impl SubAssign for EnergyBreakdown {
    fn sub_assign(&mut self, rhs: EnergyBreakdown) {
        self.bits_read_zero -= rhs.bits_read_zero;
        self.bits_read_one -= rhs.bits_read_one;
        self.bits_written_zero -= rhs.bits_written_zero;
        self.bits_written_one -= rhs.bits_written_one;
        for i in 0..self.energy_by_kind.len() {
            self.energy_by_kind[i] -= rhs.energy_by_kind[i];
            self.bits_by_kind[i] -= rhs.bits_by_kind[i];
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total: {:.3}", self.total())?;
        for kind in ChargeKind::ALL {
            writeln!(
                f,
                "  {kind:>14}: {:>14.3}  ({} bits)",
                self.energy(kind),
                self.bits(kind)
            )?;
        }
        Ok(())
    }
}

/// Prices bit-level array activity against an [`SramEnergyModel`].
///
/// # Example
///
/// ```
/// use cnt_energy::{ChargeKind, EnergyMeter, SramEnergyModel};
///
/// let mut meter = EnergyMeter::new(SramEnergyModel::cnfet_default());
/// // A 64-bit word with 16 one-bits is filled into the array.
/// meter.charge_write_word_kind(0xFFFF, 64, ChargeKind::LineFill);
/// assert_eq!(meter.breakdown().bits_written_one, 16);
/// assert_eq!(meter.breakdown().bits_written_zero, 48);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    model: SramEnergyModel,
    breakdown: EnergyBreakdown,
}

impl EnergyMeter {
    /// Creates a meter with an empty breakdown.
    pub fn new(model: SramEnergyModel) -> Self {
        EnergyMeter {
            model,
            breakdown: EnergyBreakdown::new(),
        }
    }

    /// The energy model in use.
    pub fn model(&self) -> &SramEnergyModel {
        &self.model
    }

    /// The accumulated breakdown so far.
    pub fn breakdown(&self) -> &EnergyBreakdown {
        &self.breakdown
    }

    /// Total accumulated energy (shorthand for `breakdown().total()`).
    pub fn total(&self) -> Energy {
        self.breakdown.total()
    }

    /// Resets the breakdown to empty, returning the previous one.
    pub fn take_breakdown(&mut self) -> EnergyBreakdown {
        std::mem::take(&mut self.breakdown)
    }

    /// Replaces the accumulated breakdown (checkpoint restore): the
    /// meter continues accumulating on top of `breakdown` exactly as if
    /// it had metered that activity itself.
    pub fn restore_breakdown(&mut self, breakdown: EnergyBreakdown) {
        self.breakdown = breakdown;
    }

    /// Charges a read of the low `width` bits of `value` as [`ChargeKind::DataRead`].
    pub fn charge_read_word(&mut self, value: u64, width: u32) {
        self.charge_read_word_kind(value, width, ChargeKind::DataRead);
    }

    /// Charges a write of the low `width` bits of `value` as [`ChargeKind::DataWrite`].
    pub fn charge_write_word(&mut self, value: u64, width: u32) {
        self.charge_write_word_kind(value, width, ChargeKind::DataWrite);
    }

    /// Charges a read of the low `width` bits of `value`, attributed to `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or (debug only) if `value` has bits set above
    /// `width`.
    pub fn charge_read_word_kind(&mut self, value: u64, width: u32, kind: ChargeKind) {
        assert!(width <= 64, "word width {width} exceeds 64");
        debug_assert!(
            width == 64 || value >> width == 0,
            "value has bits above width"
        );
        let ones = value.count_ones();
        self.charge_read_bits_kind(ones, width, kind);
    }

    /// Charges a write of the low `width` bits of `value`, attributed to `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or (debug only) if `value` has bits set above
    /// `width`.
    pub fn charge_write_word_kind(&mut self, value: u64, width: u32, kind: ChargeKind) {
        assert!(width <= 64, "word width {width} exceeds 64");
        debug_assert!(
            width == 64 || value >> width == 0,
            "value has bits above width"
        );
        let ones = value.count_ones();
        self.charge_write_bits_kind(ones, width, kind);
    }

    /// Charges a read of `width` bits of which `ones` are `1`, attributed to `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `ones > width`.
    pub fn charge_read_bits_kind(&mut self, ones: u32, width: u32, kind: ChargeKind) {
        assert!(ones <= width, "ones {ones} > width {width}");
        let energy = self.model.bits().read_bits(ones, width);
        self.breakdown
            .record(kind, u64::from(ones), u64::from(width), energy);
    }

    /// Charges a write of `width` bits of which `ones` are `1`, attributed to `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `ones > width`.
    pub fn charge_write_bits_kind(&mut self, ones: u32, width: u32, kind: ChargeKind) {
        assert!(ones <= width, "ones {ones} > width {width}");
        let energy = self.model.bits().write_bits(ones, width);
        self.breakdown
            .record(kind, u64::from(ones), u64::from(width), energy);
    }

    /// Charges a read of `width` bits of which `ones` are `1`, attributed
    /// to `kind`, with the energy scaled by `scale`.
    ///
    /// Used for bits that live in physically smaller arrays than the main
    /// data array (e.g. per-line metadata in a narrow sidecar array with
    /// short bitlines), where the per-bit access energy is a fraction of
    /// the data-array cost. Bit *counts* are recorded unscaled.
    ///
    /// # Panics
    ///
    /// Panics if `ones > width` or `scale` is negative or non-finite.
    pub fn charge_read_bits_scaled(&mut self, ones: u32, width: u32, kind: ChargeKind, scale: f64) {
        assert!(ones <= width, "ones {ones} > width {width}");
        assert!(
            scale.is_finite() && scale >= 0.0,
            "bad energy scale {scale}"
        );
        let energy = self.model.bits().read_bits(ones, width) * scale;
        self.breakdown
            .record(kind, u64::from(ones), u64::from(width), energy);
    }

    /// Charges a write of `width` bits of which `ones` are `1`, attributed
    /// to `kind`, with the energy scaled by `scale`.
    ///
    /// See [`charge_read_bits_scaled`](Self::charge_read_bits_scaled).
    ///
    /// # Panics
    ///
    /// Panics if `ones > width` or `scale` is negative or non-finite.
    pub fn charge_write_bits_scaled(
        &mut self,
        ones: u32,
        width: u32,
        kind: ChargeKind,
        scale: f64,
    ) {
        assert!(ones <= width, "ones {ones} > width {width}");
        assert!(
            scale.is_finite() && scale >= 0.0,
            "bad energy scale {scale}"
        );
        let energy = self.model.bits().write_bits(ones, width) * scale;
        self.breakdown
            .record(kind, u64::from(ones), u64::from(width), energy);
    }

    /// Charges a read of a multi-word buffer (e.g. a whole cache line),
    /// attributed to `kind`. Every word is priced at full 64-bit width.
    pub fn charge_read_line_kind(&mut self, words: &[u64], kind: ChargeKind) {
        for &w in words {
            self.charge_read_word_kind(w, 64, kind);
        }
    }

    /// Charges a write of a multi-word buffer (e.g. a whole cache line),
    /// attributed to `kind`. Every word is priced at full 64-bit width.
    pub fn charge_write_line_kind(&mut self, words: &[u64], kind: ChargeKind) {
        for &w in words {
            self.charge_write_word_kind(w, 64, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BitEnergies;

    fn meter() -> EnergyMeter {
        EnergyMeter::new(SramEnergyModel::cnfet_default())
    }

    #[test]
    fn read_word_counts_bits() {
        let mut m = meter();
        m.charge_read_word(0b1011, 4);
        let b = m.breakdown();
        assert_eq!(b.bits_read_one, 3);
        assert_eq!(b.bits_read_zero, 1);
        assert_eq!(b.bits_written(), 0);
        let bits = BitEnergies::cnfet_default();
        let expect = bits.rd1 * 3.0 + bits.rd0 * 1.0;
        assert!((m.total() - expect).abs().femtojoules() < 1e-12);
    }

    #[test]
    fn write_word_counts_bits() {
        let mut m = meter();
        m.charge_write_word(u64::MAX, 64);
        assert_eq!(m.breakdown().bits_written_one, 64);
        assert_eq!(m.breakdown().bits_written_zero, 0);
        let bits = BitEnergies::cnfet_default();
        assert!((m.total() - bits.wr1 * 64.0).abs().femtojoules() < 1e-9);
    }

    #[test]
    fn kinds_are_attributed() {
        let mut m = meter();
        m.charge_write_word_kind(0xF, 4, ChargeKind::LineFill);
        m.charge_read_word_kind(0xF, 4, ChargeKind::Writeback);
        m.charge_write_word_kind(0x0, 4, ChargeKind::EncodeSwitch);
        let b = m.breakdown();
        assert!(b.energy(ChargeKind::LineFill).femtojoules() > 0.0);
        assert!(b.energy(ChargeKind::Writeback).femtojoules() > 0.0);
        assert!(b.energy(ChargeKind::EncodeSwitch).femtojoules() > 0.0);
        assert_eq!(b.energy(ChargeKind::DataRead), Energy::ZERO);
        assert_eq!(b.bits(ChargeKind::LineFill), 4);
        // Writeback is a read-like kind: bits flow out of the array.
        assert_eq!(b.bits_read(), 4);
        assert_eq!(b.bits_written(), 8);
    }

    #[test]
    fn read_and_write_energy_partition_total() {
        let mut m = meter();
        m.charge_read_word(0xAB, 8);
        m.charge_write_word(0xCD, 8);
        m.charge_write_word_kind(0x12, 8, ChargeKind::EncodeSwitch);
        m.charge_read_word_kind(0x0, 8, ChargeKind::MetadataRead);
        let b = m.breakdown();
        let total = b.total();
        let sum = b.read_energy() + b.write_energy();
        assert!((total - sum).abs().femtojoules() < 1e-12);
    }

    #[test]
    fn line_charges_cover_all_words() {
        let mut m = meter();
        let line = [0u64, u64::MAX, 0xFFFF_0000_FFFF_0000, 1];
        m.charge_write_line_kind(&line, ChargeKind::LineFill);
        let b = m.breakdown();
        assert_eq!(b.bits_written(), 256);
        assert_eq!(b.bits_written_one, 64 + 32 + 1);
    }

    #[test]
    fn breakdown_addition_is_componentwise() {
        let mut m1 = meter();
        m1.charge_read_word(0xFF, 8);
        let mut m2 = meter();
        m2.charge_write_word(0x0F, 8);
        let sum = m1.breakdown().clone() + m2.breakdown().clone();
        assert_eq!(sum.bits_read_one, 8);
        assert_eq!(sum.bits_written_one, 4);
        assert_eq!(sum.bits_written_zero, 4);
        let expected = m1.total() + m2.total();
        assert!((sum.total() - expected).abs().femtojoules() < 1e-12);
    }

    #[test]
    fn breakdown_subtraction_yields_epoch_delta() {
        let mut m = meter();
        m.charge_read_word(0xFF, 8);
        let earlier = m.breakdown().clone();
        m.charge_write_word_kind(0x0F, 8, ChargeKind::LineFill);
        m.charge_read_word(0xF0, 8);
        let delta = m.breakdown().clone() - earlier.clone();
        assert_eq!(delta.bits_read_one, 4);
        assert_eq!(delta.bits_written(), 8);
        assert_eq!(delta.bits(ChargeKind::LineFill), 8);
        // Delta plus the earlier snapshot reconstructs the total.
        let rebuilt = earlier + delta;
        assert_eq!(&rebuilt, m.breakdown());
    }

    #[test]
    fn take_breakdown_resets() {
        let mut m = meter();
        m.charge_read_word(0xFF, 8);
        let taken = m.take_breakdown();
        assert_eq!(taken.bits_read_one, 8);
        assert_eq!(m.total(), Energy::ZERO);
        assert_eq!(m.breakdown().bits_read(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 64")]
    fn width_over_64_panics() {
        meter().charge_read_word(0, 65);
    }

    #[test]
    #[should_panic(expected = "ones")]
    fn ones_over_width_panics() {
        meter().charge_read_bits_kind(5, 4, ChargeKind::DataRead);
    }

    #[test]
    fn display_lists_all_kinds() {
        let mut m = meter();
        m.charge_read_word(1, 1);
        let s = format!("{}", m.breakdown());
        for kind in ChargeKind::ALL {
            assert!(s.contains(&kind.to_string()), "missing {kind}");
        }
    }

    #[test]
    fn scaled_charges_shrink_energy_not_counts() {
        let mut full = meter();
        let mut scaled = meter();
        full.charge_read_bits_kind(4, 16, ChargeKind::MetadataRead);
        scaled.charge_read_bits_scaled(4, 16, ChargeKind::MetadataRead, 0.1);
        assert_eq!(full.breakdown().bits_read(), scaled.breakdown().bits_read());
        let ratio = scaled.total().ratio(full.total());
        assert!((ratio - 0.1).abs() < 1e-12, "ratio {ratio}");
        // Writes behave the same way.
        let mut w = meter();
        w.charge_write_bits_scaled(8, 8, ChargeKind::MetadataWrite, 0.0);
        assert_eq!(w.total(), Energy::ZERO);
        assert_eq!(w.breakdown().bits_written(), 8);
    }

    #[test]
    #[should_panic(expected = "bad energy scale")]
    fn negative_scale_panics() {
        meter().charge_read_bits_scaled(0, 8, ChargeKind::MetadataRead, -1.0);
    }

    #[test]
    fn protection_kinds_are_attributed_and_classified() {
        let mut m = meter();
        m.charge_read_bits_scaled(2, 5, ChargeKind::ProtectionCheck, 0.1);
        m.charge_write_bits_scaled(3, 5, ChargeKind::ProtectionUpdate, 0.1);
        let b = m.breakdown();
        assert!(b.energy(ChargeKind::ProtectionCheck).femtojoules() > 0.0);
        assert!(b.energy(ChargeKind::ProtectionUpdate).femtojoules() > 0.0);
        let itemized = b.protection_energy();
        assert!((itemized - b.total()).abs().femtojoules() < 1e-12);
        // Check reads flow out of the array, updates flow in.
        assert!(ChargeKind::ProtectionCheck.is_read());
        assert!(!ChargeKind::ProtectionUpdate.is_read());
        assert_eq!(b.bits_read(), 5);
        assert_eq!(b.bits_written(), 5);
    }

    #[test]
    fn breakdown_serde_round_trip() {
        let mut m = meter();
        m.charge_write_word_kind(0xDEAD_BEEF, 64, ChargeKind::LineFill);
        let json = serde_json::to_string(m.breakdown()).expect("serialize");
        let back: EnergyBreakdown = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(&back, m.breakdown());
    }
}

//! The [`Energy`] quantity type and the per-bit SRAM energy model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::error::EnergyModelError;
use crate::params::DeviceParams;

/// A dynamic-energy quantity in femtojoules.
///
/// `Energy` is a thin newtype over `f64` that keeps energy values from being
/// confused with other floating-point quantities (counts, ratios, volts).
/// It supports the arithmetic an accounting layer needs: addition,
/// subtraction, scaling by dimensionless factors, and summation.
///
/// # Example
///
/// ```
/// use cnt_energy::Energy;
///
/// let per_bit = Energy::from_femtojoules(2.2);
/// let line = per_bit * 512.0;
/// assert_eq!(line.femtojoules(), 2.2 * 512.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Energy(f64);

impl Energy {
    /// The zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from a femtojoule value.
    pub const fn from_femtojoules(fj: f64) -> Self {
        Energy(fj)
    }

    /// Creates an energy from a picojoule value.
    pub fn from_picojoules(pj: f64) -> Self {
        Energy(pj * 1_000.0)
    }

    /// Returns the value in femtojoules.
    pub const fn femtojoules(self) -> f64 {
        self.0
    }

    /// Returns the value in picojoules.
    pub fn picojoules(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Returns the value in nanojoules.
    pub fn nanojoules(self) -> f64 {
        self.0 / 1_000_000.0
    }

    /// Returns `true` if the value is finite (neither NaN nor infinite).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns `true` if the value is `NaN`.
    pub fn is_nan(self) -> bool {
        self.0.is_nan()
    }

    /// Returns the larger of two energies.
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Returns the smaller of two energies.
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// Returns the absolute value.
    pub fn abs(self) -> Energy {
        Energy(self.0.abs())
    }

    /// Dimensionless ratio `self / other`.
    ///
    /// Returns `f64::NAN` when `other` is zero, mirroring float division.
    pub fn ratio(self, other: Energy) -> f64 {
        self.0 / other.0
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Neg for Energy {
    type Output = Energy;
    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Energy> for Energy {
    fn sum<I: Iterator<Item = &'a Energy>>(iter: I) -> Energy {
        iter.copied().sum()
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} fJ", prec, self.0)
        } else {
            write!(f, "{} fJ", self.0)
        }
    }
}

/// The SRAM technology a [`BitEnergies`] set was characterized for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technology {
    /// Carbon-nanotube FET SRAM (asymmetric bit energies).
    Cnfet,
    /// Conventional CMOS SRAM (nearly symmetric bit energies).
    Cmos,
    /// A user-supplied characterization.
    Custom,
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technology::Cnfet => f.write_str("CNFET"),
            Technology::Cmos => f.write_str("CMOS"),
            Technology::Custom => f.write_str("custom"),
        }
    }
}

/// The four per-bit SRAM access energies the CNT-Cache algorithm consumes.
///
/// These are the `E_rd0`, `E_rd1`, `E_wr0`, `E_wr1` quantities of the paper's
/// equations (1)–(6): the dynamic energy of reading/writing a single bit of
/// value `0`/`1` from/to an SRAM cell.
///
/// # Example
///
/// ```
/// use cnt_energy::{BitEnergies, Energy};
///
/// let bits = BitEnergies::cnfet_default();
/// // The paper: writing '1' costs almost 10x writing '0'.
/// assert!(bits.wr1.ratio(bits.wr0) >= 9.0);
/// // And the two asymmetries nearly cancel, so Th_rd ≈ W/2.
/// let imbalance = (bits.delta_read() - bits.delta_write()).abs();
/// assert!(imbalance < Energy::from_femtojoules(0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitEnergies {
    /// Energy to read a stored `0` bit.
    pub rd0: Energy,
    /// Energy to read a stored `1` bit.
    pub rd1: Energy,
    /// Energy to write a `0` bit.
    pub wr0: Energy,
    /// Energy to write a `1` bit.
    pub wr1: Energy,
}

impl BitEnergies {
    /// Calibrated default for a 32 nm-class CNFET 6T SRAM cell at 0.9 V.
    ///
    /// The magnitudes follow the paper's qualitative characterization
    /// ("Table rw-analysis"): reading `0` is the expensive read, writing `1`
    /// is ≈10× the cost of writing `0`, and `E_rd0 − E_rd1 ≈ E_wr1 − E_wr0`.
    pub fn cnfet_default() -> Self {
        BitEnergies {
            rd0: Energy::from_femtojoules(2.60),
            rd1: Energy::from_femtojoules(0.45),
            wr0: Energy::from_femtojoules(0.22),
            wr1: Energy::from_femtojoules(2.20),
        }
    }

    /// Calibrated default for a comparable CMOS 6T SRAM cell at 0.9 V.
    ///
    /// CMOS reads and writes are nearly symmetric in the stored value and
    /// substantially more expensive overall — the motivation for CNFET
    /// caches in the first place.
    pub fn cmos_default() -> Self {
        BitEnergies {
            rd0: Energy::from_femtojoules(5.20),
            rd1: Energy::from_femtojoules(5.05),
            wr0: Energy::from_femtojoules(5.90),
            wr1: Energy::from_femtojoules(6.10),
        }
    }

    /// The read asymmetry `Δrd = E_rd0 − E_rd1`.
    ///
    /// Positive for CNFET cells: reading a stored `1` is cheaper.
    pub fn delta_read(&self) -> Energy {
        self.rd0 - self.rd1
    }

    /// The write asymmetry `Δwr = E_wr1 − E_wr0`.
    ///
    /// Positive for CNFET cells: writing a `0` is cheaper.
    pub fn delta_write(&self) -> Energy {
        self.wr1 - self.wr0
    }

    /// Energy to read one bit of the given value.
    #[inline]
    pub fn read_bit(&self, bit: bool) -> Energy {
        if bit {
            self.rd1
        } else {
            self.rd0
        }
    }

    /// Energy to write one bit of the given value.
    #[inline]
    pub fn write_bit(&self, bit: bool) -> Energy {
        if bit {
            self.wr1
        } else {
            self.wr0
        }
    }

    /// Energy to read `width` bits of which `ones` are `1`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ones > width`.
    #[inline]
    pub fn read_bits(&self, ones: u32, width: u32) -> Energy {
        debug_assert!(ones <= width);
        self.rd1 * f64::from(ones) + self.rd0 * f64::from(width - ones)
    }

    /// Energy to write `width` bits of which `ones` are `1`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ones > width`.
    #[inline]
    pub fn write_bits(&self, ones: u32, width: u32) -> Energy {
        debug_assert!(ones <= width);
        self.wr1 * f64::from(ones) + self.wr0 * f64::from(width - ones)
    }

    /// Validates the characterization.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyModelError::NegativeEnergy`] if any of the four
    /// energies is negative or non-finite, and
    /// [`EnergyModelError::InvertedAsymmetry`] if the CNFET-style ordering
    /// (`rd0 ≥ rd1` and `wr1 ≥ wr0`) is violated. Symmetric (CMOS-style)
    /// characterizations, where the deltas are zero, pass.
    pub fn validate(&self) -> Result<(), EnergyModelError> {
        for (name, e) in [
            ("rd0", self.rd0),
            ("rd1", self.rd1),
            ("wr0", self.wr0),
            ("wr1", self.wr1),
        ] {
            if !e.is_finite() || e.femtojoules() < 0.0 {
                return Err(EnergyModelError::NegativeEnergy {
                    which: name,
                    value: e.femtojoules(),
                });
            }
        }
        if self.rd0 < self.rd1 {
            return Err(EnergyModelError::InvertedAsymmetry {
                which: "read (expected rd0 >= rd1)",
            });
        }
        if self.wr1 < self.wr0 {
            return Err(EnergyModelError::InvertedAsymmetry {
                which: "write (expected wr1 >= wr0)",
            });
        }
        Ok(())
    }
}

impl Default for BitEnergies {
    fn default() -> Self {
        BitEnergies::cnfet_default()
    }
}

impl fmt::Display for BitEnergies {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rd0={:.3}, rd1={:.3}, wr0={:.3}, wr1={:.3}",
            self.rd0, self.rd1, self.wr0, self.wr1
        )
    }
}

/// A named, validated SRAM access-energy model.
///
/// This couples a [`BitEnergies`] characterization with the
/// [`Technology`] it describes, and is the value the cache layers carry
/// around.
///
/// # Example
///
/// ```
/// use cnt_energy::SramEnergyModel;
///
/// let cnfet = SramEnergyModel::cnfet_default();
/// let cmos = SramEnergyModel::cmos_default();
/// // CNFET cells are cheaper on every operation.
/// assert!(cnfet.bits().rd0 < cmos.bits().rd0);
/// assert!(cnfet.bits().wr1 < cmos.bits().wr1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramEnergyModel {
    technology: Technology,
    bits: BitEnergies,
}

impl SramEnergyModel {
    /// Creates a model from an explicit characterization.
    ///
    /// # Errors
    ///
    /// Returns an error if [`BitEnergies::validate`] fails.
    pub fn new(technology: Technology, bits: BitEnergies) -> Result<Self, EnergyModelError> {
        bits.validate()?;
        Ok(SramEnergyModel { technology, bits })
    }

    /// The default CNFET model ([`BitEnergies::cnfet_default`]).
    pub fn cnfet_default() -> Self {
        SramEnergyModel {
            technology: Technology::Cnfet,
            bits: BitEnergies::cnfet_default(),
        }
    }

    /// The default CMOS comparison model ([`BitEnergies::cmos_default`]).
    pub fn cmos_default() -> Self {
        SramEnergyModel {
            technology: Technology::Cmos,
            bits: BitEnergies::cmos_default(),
        }
    }

    /// Derives a CNFET model from physical device parameters.
    ///
    /// See [`DeviceParams::derive_bit_energies`] for the derivation and its
    /// assumptions.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are out of range or the derived
    /// energies fail validation.
    pub fn from_device(params: &DeviceParams) -> Result<Self, EnergyModelError> {
        let bits = params.derive_bit_energies()?;
        SramEnergyModel::new(Technology::Cnfet, bits)
    }

    /// The technology this model describes.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// The per-bit energy characterization.
    pub fn bits(&self) -> &BitEnergies {
        &self.bits
    }
}

impl Default for SramEnergyModel {
    fn default() -> Self {
        SramEnergyModel::cnfet_default()
    }
}

impl fmt::Display for SramEnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} SRAM [{}]", self.technology, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_femtojoules(1.5);
        let b = Energy::from_femtojoules(0.5);
        assert_eq!((a + b).femtojoules(), 2.0);
        assert_eq!((a - b).femtojoules(), 1.0);
        assert_eq!((a * 2.0).femtojoules(), 3.0);
        assert_eq!((2.0 * a).femtojoules(), 3.0);
        assert_eq!((a / 3.0).femtojoules(), 0.5);
        assert_eq!((-b).femtojoules(), -0.5);
    }

    #[test]
    fn energy_units() {
        let e = Energy::from_picojoules(1.0);
        assert_eq!(e.femtojoules(), 1000.0);
        assert!((e.picojoules() - 1.0).abs() < 1e-12);
        assert!((Energy::from_femtojoules(2e6).nanojoules() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_sum_and_ordering() {
        let total: Energy = (0..10)
            .map(|i| Energy::from_femtojoules(f64::from(i)))
            .sum();
        assert_eq!(total.femtojoules(), 45.0);
        assert!(Energy::from_femtojoules(2.0) > Energy::from_femtojoules(1.0));
        assert_eq!(
            Energy::from_femtojoules(2.0).max(Energy::from_femtojoules(3.0)),
            Energy::from_femtojoules(3.0)
        );
        let refs = [Energy::from_femtojoules(1.0), Energy::from_femtojoules(2.0)];
        let sum: Energy = refs.iter().sum();
        assert_eq!(sum.femtojoules(), 3.0);
    }

    #[test]
    fn energy_display() {
        let e = Energy::from_femtojoules(1.23456);
        assert_eq!(format!("{e:.2}"), "1.23 fJ");
        assert_eq!(format!("{}", Energy::from_femtojoules(2.0)), "2 fJ");
    }

    #[test]
    fn cnfet_default_matches_paper_claims() {
        let bits = BitEnergies::cnfet_default();
        bits.validate().expect("default must validate");
        // "the energy consumption of writing 1 ... is almost 10X higher than
        // writing 0"
        assert!(bits.wr1.ratio(bits.wr0) >= 9.0 && bits.wr1.ratio(bits.wr0) <= 11.0);
        // "E_rd0 - E_rd1 is quite close to E_wr1 - E_wr0"
        let d = (bits.delta_read() - bits.delta_write()).abs();
        assert!(d.femtojoules() < 0.3, "deltas differ by {d}");
        assert!(bits.delta_read().femtojoules() > 0.0);
        assert!(bits.delta_write().femtojoules() > 0.0);
    }

    #[test]
    fn cmos_default_is_nearly_symmetric_and_pricier() {
        let cmos = BitEnergies::cmos_default();
        cmos.validate().expect("cmos default must validate");
        let cnfet = BitEnergies::cnfet_default();
        assert!(cmos.delta_read().femtojoules() < 0.5);
        assert!(cmos.delta_write().femtojoules() < 0.5);
        for (c, m) in [
            (cnfet.rd0, cmos.rd0),
            (cnfet.rd1, cmos.rd1),
            (cnfet.wr0, cmos.wr0),
            (cnfet.wr1, cmos.wr1),
        ] {
            assert!(c < m, "CNFET should be cheaper: {c} vs {m}");
        }
    }

    #[test]
    fn bit_energy_accessors() {
        let bits = BitEnergies::cnfet_default();
        assert_eq!(bits.read_bit(false), bits.rd0);
        assert_eq!(bits.read_bit(true), bits.rd1);
        assert_eq!(bits.write_bit(false), bits.wr0);
        assert_eq!(bits.write_bit(true), bits.wr1);
        let e = bits.read_bits(3, 8);
        let expect = bits.rd1 * 3.0 + bits.rd0 * 5.0;
        assert!((e - expect).abs().femtojoules() < 1e-12);
        let w = bits.write_bits(8, 8);
        assert!((w - bits.wr1 * 8.0).abs().femtojoules() < 1e-12);
    }

    #[test]
    fn validation_rejects_negative() {
        let mut bits = BitEnergies::cnfet_default();
        bits.rd0 = Energy::from_femtojoules(-1.0);
        let err = bits.validate().unwrap_err();
        assert!(matches!(
            err,
            EnergyModelError::NegativeEnergy { which: "rd0", .. }
        ));
    }

    #[test]
    fn validation_rejects_nan() {
        let mut bits = BitEnergies::cnfet_default();
        bits.wr1 = Energy::from_femtojoules(f64::NAN);
        assert!(bits.validate().is_err());
    }

    #[test]
    fn validation_rejects_inverted_asymmetry() {
        let bits = BitEnergies {
            rd0: Energy::from_femtojoules(0.1),
            rd1: Energy::from_femtojoules(2.0),
            wr0: Energy::from_femtojoules(0.2),
            wr1: Energy::from_femtojoules(2.0),
        };
        assert!(matches!(
            bits.validate().unwrap_err(),
            EnergyModelError::InvertedAsymmetry { .. }
        ));
    }

    #[test]
    fn model_constructors() {
        let model = SramEnergyModel::new(Technology::Custom, BitEnergies::cnfet_default())
            .expect("valid bits");
        assert_eq!(model.technology(), Technology::Custom);
        assert_eq!(SramEnergyModel::default().technology(), Technology::Cnfet);
        assert_eq!(
            SramEnergyModel::cmos_default().technology(),
            Technology::Cmos
        );
    }

    #[test]
    fn model_display_mentions_technology() {
        let s = format!("{}", SramEnergyModel::cnfet_default());
        assert!(s.contains("CNFET"));
        let s = format!("{}", SramEnergyModel::cmos_default());
        assert!(s.contains("CMOS"));
    }

    #[test]
    fn serde_round_trip() {
        let model = SramEnergyModel::cnfet_default();
        let json = serde_json::to_string(&model).expect("serialize");
        let back: SramEnergyModel = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(model, back);
    }
}

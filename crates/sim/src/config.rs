//! Validated cache shapes and address decomposition.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{Address, AddressParts};

/// Errors produced when constructing a [`CacheGeometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeometryError {
    /// A size parameter was zero or not a power of two.
    NotPowerOfTwo {
        /// The parameter name.
        name: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The line size is smaller than one 64-bit word.
    LineTooSmall {
        /// The offending line size in bytes.
        line_bytes: u32,
    },
    /// `size_bytes` is not divisible by `line_bytes * associativity`.
    InconsistentShape {
        /// Total capacity in bytes.
        size_bytes: u64,
        /// Line size in bytes.
        line_bytes: u32,
        /// Ways per set.
        associativity: u32,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotPowerOfTwo { name, value } => {
                write!(f, "`{name}` must be a non-zero power of two, got {value}")
            }
            GeometryError::LineTooSmall { line_bytes } => {
                write!(f, "line size must be at least 8 bytes, got {line_bytes}")
            }
            GeometryError::InconsistentShape {
                size_bytes,
                line_bytes,
                associativity,
            } => write!(
                f,
                "capacity {size_bytes} B is not divisible by {line_bytes} B x {associativity} ways"
            ),
        }
    }
}

impl Error for GeometryError {}

/// The shape of a set-associative cache: capacity, line size, and ways.
///
/// All three parameters must be powers of two and lines must hold at least
/// one 64-bit word. A fully-associative cache is expressed by setting
/// `associativity = size_bytes / line_bytes` (one set); a direct-mapped
/// cache by `associativity = 1`.
///
/// # Example
///
/// ```
/// use cnt_sim::{Address, CacheGeometry};
///
/// let g = CacheGeometry::new(32 * 1024, 64, 8)?; // 32 KiB, 64 B lines, 8-way
/// assert_eq!(g.num_sets(), 64);
/// assert_eq!(g.words_per_line(), 8);
///
/// let parts = g.split(Address::new(0x1_2345));
/// assert_eq!(g.line_base(parts.tag, parts.set), Address::new(0x1_2340));
/// # Ok::<(), cnt_sim::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    size_bytes: u64,
    line_bytes: u32,
    associativity: u32,
}

impl CacheGeometry {
    /// Creates a validated geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if any parameter is zero or not a power
    /// of two, if the line is smaller than 8 bytes, or if the capacity is
    /// not an exact multiple of `line_bytes * associativity`.
    pub fn new(
        size_bytes: u64,
        line_bytes: u32,
        associativity: u32,
    ) -> Result<Self, GeometryError> {
        for (name, value) in [
            ("size_bytes", size_bytes),
            ("line_bytes", u64::from(line_bytes)),
            ("associativity", u64::from(associativity)),
        ] {
            if value == 0 || !value.is_power_of_two() {
                return Err(GeometryError::NotPowerOfTwo { name, value });
            }
        }
        if line_bytes < 8 {
            return Err(GeometryError::LineTooSmall { line_bytes });
        }
        let set_bytes = u64::from(line_bytes) * u64::from(associativity);
        if !size_bytes.is_multiple_of(set_bytes) || size_bytes < set_bytes {
            return Err(GeometryError::InconsistentShape {
                size_bytes,
                line_bytes,
                associativity,
            });
        }
        Ok(CacheGeometry {
            size_bytes,
            line_bytes,
            associativity,
        })
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Ways per set.
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.line_bytes) * u64::from(self.associativity))
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / u64::from(self.line_bytes)
    }

    /// 64-bit words per line.
    pub fn words_per_line(&self) -> usize {
        self.line_bytes as usize / 8
    }

    /// Bits of a line's data payload.
    pub fn line_bits(&self) -> u32 {
        self.line_bytes * 8
    }

    /// Number of byte-offset bits.
    pub fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Number of set-index bits.
    pub fn index_bits(&self) -> u32 {
        self.num_sets().trailing_zeros()
    }

    /// Splits a byte address into tag, set index, and line offset.
    pub fn split(&self, addr: Address) -> AddressParts {
        let a = addr.value();
        let offset = a & u64::from(self.line_bytes - 1);
        let set = (a >> self.offset_bits()) & (self.num_sets() - 1);
        let tag = a >> (self.offset_bits() + self.index_bits());
        AddressParts { tag, set, offset }
    }

    /// Reconstructs the base address of the line with the given tag in the
    /// given set (the inverse of [`split`](Self::split) with zero offset).
    pub fn line_base(&self, tag: u64, set: u64) -> Address {
        Address::new(
            (tag << (self.offset_bits() + self.index_bits())) | (set << self.offset_bits()),
        )
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB, {} B lines, {}-way ({} sets)",
            self.size_bytes / 1024,
            self.line_bytes,
            self.associativity,
            self.num_sets()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_geometry_derived_values() {
        let g = CacheGeometry::new(32 * 1024, 64, 8).expect("valid");
        assert_eq!(g.num_sets(), 64);
        assert_eq!(g.num_lines(), 512);
        assert_eq!(g.words_per_line(), 8);
        assert_eq!(g.line_bits(), 512);
        assert_eq!(g.offset_bits(), 6);
        assert_eq!(g.index_bits(), 6);
    }

    #[test]
    fn direct_mapped_and_fully_associative() {
        let dm = CacheGeometry::new(1024, 64, 1).expect("direct mapped");
        assert_eq!(dm.num_sets(), 16);
        let fa = CacheGeometry::new(1024, 64, 16).expect("fully associative");
        assert_eq!(fa.num_sets(), 1);
        assert_eq!(fa.index_bits(), 0);
    }

    #[test]
    fn split_and_reconstruct_round_trip() {
        let g = CacheGeometry::new(8 * 1024, 32, 4).expect("valid");
        for addr in [0u64, 0x37, 0x1000, 0xDEAD_BEEF, u64::MAX >> 8] {
            let a = Address::new(addr);
            let p = g.split(a);
            assert!(p.offset < u64::from(g.line_bytes()));
            assert!(p.set < g.num_sets());
            let base = g.line_base(p.tag, p.set);
            assert_eq!(base.value(), addr & !(u64::from(g.line_bytes()) - 1));
            assert_eq!(base.value() + p.offset, addr);
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            CacheGeometry::new(3000, 64, 4),
            Err(GeometryError::NotPowerOfTwo {
                name: "size_bytes",
                ..
            })
        ));
        assert!(CacheGeometry::new(4096, 48, 4).is_err());
        assert!(CacheGeometry::new(4096, 64, 3).is_err());
        assert!(CacheGeometry::new(0, 64, 1).is_err());
    }

    #[test]
    fn rejects_tiny_lines() {
        assert!(matches!(
            CacheGeometry::new(1024, 4, 1),
            Err(GeometryError::LineTooSmall { .. })
        ));
    }

    #[test]
    fn rejects_inconsistent_shape() {
        // 128 B capacity cannot hold one 64 B x 4-way set.
        assert!(matches!(
            CacheGeometry::new(128, 64, 4),
            Err(GeometryError::InconsistentShape { .. })
        ));
    }

    #[test]
    fn display_mentions_shape() {
        let g = CacheGeometry::new(32 * 1024, 64, 8).expect("valid");
        let s = g.to_string();
        assert!(s.contains("32 KiB"));
        assert!(s.contains("8-way"));
    }

    #[test]
    fn error_display() {
        let e = CacheGeometry::new(128, 64, 4).unwrap_err();
        assert!(e.to_string().contains("not divisible"));
    }
}

//! Pluggable per-set replacement policies.
//!
//! A policy tracks access recency/age for the ways of **one** set and picks
//! a victim when the set is full. The cache informs the policy of hits and
//! fills; invalid ways are always filled before a victim is chosen, so
//! [`SetReplacement::victim`] may assume a full set.

use std::collections::VecDeque;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which replacement policy a cache should use.
///
/// # Example
///
/// ```
/// use cnt_sim::ReplacementKind;
///
/// let mut lru = ReplacementKind::Lru.build(4);
/// lru.on_fill(0);
/// lru.on_fill(1);
/// lru.on_fill(2);
/// lru.on_fill(3);
/// lru.on_hit(0); // way 0 becomes most recent
/// assert_eq!(lru.victim(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplacementKind {
    /// Least-recently-used (true LRU stack).
    #[default]
    Lru,
    /// First-in first-out by fill order.
    Fifo,
    /// Uniform random victim selection with a deterministic seed.
    Random {
        /// RNG seed; per-set streams are derived from it.
        seed: u64,
    },
    /// Tree pseudo-LRU (requires power-of-two associativity).
    TreePlru,
    /// Static re-reference interval prediction with 2-bit RRPV.
    Srrip,
}

impl ReplacementKind {
    /// Builds the per-set policy state for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, or if [`ReplacementKind::TreePlru`] is
    /// requested with a non-power-of-two way count.
    pub fn build(&self, ways: usize) -> Box<dyn SetReplacement> {
        assert!(ways > 0, "a set must have at least one way");
        match self {
            ReplacementKind::Lru => Box::new(Lru::new(ways)),
            ReplacementKind::Fifo => Box::new(Fifo::new(ways)),
            ReplacementKind::Random { seed } => Box::new(RandomPolicy::new(ways, *seed)),
            ReplacementKind::TreePlru => Box::new(TreePlru::new(ways)),
            ReplacementKind::Srrip => Box::new(Srrip::new(ways)),
        }
    }
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementKind::Lru => f.write_str("LRU"),
            ReplacementKind::Fifo => f.write_str("FIFO"),
            ReplacementKind::Random { .. } => f.write_str("random"),
            ReplacementKind::TreePlru => f.write_str("tree-PLRU"),
            ReplacementKind::Srrip => f.write_str("SRRIP"),
        }
    }
}

/// Serializable snapshot of one set's replacement state, for
/// checkpoint/resume. Captured with [`SetReplacement::save_state`] and
/// re-applied with [`SetReplacement::load_state`]; a restored policy
/// continues the exact victim sequence of the captured one (including
/// the random policy, whose raw xoshiro state words are carried).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementState {
    /// LRU recency stack, least-recent first.
    Lru {
        /// Permutation of `0..ways`, front = least recent.
        order: Vec<usize>,
    },
    /// FIFO fill order, oldest first.
    Fifo {
        /// Permutation of `0..ways`, front = oldest fill.
        queue: Vec<usize>,
    },
    /// Random policy generator state.
    Random {
        /// Raw xoshiro256++ state words.
        rng: [u64; 4],
    },
    /// Tree-PLRU direction bits in heap order.
    TreePlru {
        /// `ways - 1` bits; `false` points left.
        bits: Vec<bool>,
    },
    /// SRRIP re-reference prediction values.
    Srrip {
        /// One 2-bit RRPV per way.
        rrpv: Vec<u8>,
    },
}

impl ReplacementState {
    /// The policy kind this state belongs to, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ReplacementState::Lru { .. } => "LRU",
            ReplacementState::Fifo { .. } => "FIFO",
            ReplacementState::Random { .. } => "random",
            ReplacementState::TreePlru { .. } => "tree-PLRU",
            ReplacementState::Srrip { .. } => "SRRIP",
        }
    }
}

fn check_permutation(what: &'static str, ways: usize, order: &[usize]) -> Result<(), String> {
    if order.len() != ways {
        return Err(format!(
            "{what}: expected {ways} entries, got {}",
            order.len()
        ));
    }
    let mut seen = vec![false; ways];
    for &w in order {
        if w >= ways || seen[w] {
            return Err(format!("{what}: not a permutation of 0..{ways}"));
        }
        seen[w] = true;
    }
    Ok(())
}

/// Per-set replacement state.
///
/// Implementations may assume `way < ways` for every argument and that
/// [`victim`](Self::victim) is only called on a full set.
pub trait SetReplacement: fmt::Debug + Send {
    /// Called when `way` hits.
    fn on_hit(&mut self, way: usize);
    /// Called when a line is (re-)filled into `way`.
    fn on_fill(&mut self, way: usize);
    /// Picks the way to evict from a full set.
    fn victim(&mut self) -> usize;
    /// Captures the full policy state for checkpointing.
    fn save_state(&self) -> ReplacementState;
    /// Replaces the policy state with a previously captured snapshot.
    ///
    /// Rejects (leaving the current state untouched) a snapshot from a
    /// different policy kind or with a shape that does not fit this
    /// set's way count.
    fn load_state(&mut self, state: ReplacementState) -> Result<(), String>;
}

/// True-LRU recency stack: front = least recent, back = most recent.
#[derive(Debug)]
struct Lru {
    order: Vec<usize>,
}

impl Lru {
    fn new(ways: usize) -> Self {
        Lru {
            order: (0..ways).collect(),
        }
    }

    fn touch(&mut self, way: usize) {
        let pos = self
            .order
            .iter()
            .position(|&w| w == way)
            .expect("way must be tracked");
        let way = self.order.remove(pos);
        self.order.push(way);
    }
}

impl SetReplacement for Lru {
    fn on_hit(&mut self, way: usize) {
        self.touch(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.touch(way);
    }

    fn victim(&mut self) -> usize {
        self.order[0]
    }

    fn save_state(&self) -> ReplacementState {
        ReplacementState::Lru {
            order: self.order.clone(),
        }
    }

    fn load_state(&mut self, state: ReplacementState) -> Result<(), String> {
        match state {
            ReplacementState::Lru { order } => {
                check_permutation("LRU order", self.order.len(), &order)?;
                self.order = order;
                Ok(())
            }
            other => Err(format!("policy is LRU, snapshot is {}", other.kind_name())),
        }
    }
}

/// FIFO: evict in fill order, hits do not refresh.
#[derive(Debug)]
struct Fifo {
    queue: VecDeque<usize>,
}

impl Fifo {
    fn new(ways: usize) -> Self {
        Fifo {
            queue: (0..ways).collect(),
        }
    }
}

impl SetReplacement for Fifo {
    fn on_hit(&mut self, _way: usize) {}

    fn on_fill(&mut self, way: usize) {
        if let Some(pos) = self.queue.iter().position(|&w| w == way) {
            self.queue.remove(pos);
        }
        self.queue.push_back(way);
    }

    fn victim(&mut self) -> usize {
        *self.queue.front().expect("fifo never empty")
    }

    fn save_state(&self) -> ReplacementState {
        ReplacementState::Fifo {
            queue: self.queue.iter().copied().collect(),
        }
    }

    fn load_state(&mut self, state: ReplacementState) -> Result<(), String> {
        match state {
            ReplacementState::Fifo { queue } => {
                check_permutation("FIFO queue", self.queue.len(), &queue)?;
                self.queue = queue.into();
                Ok(())
            }
            other => Err(format!("policy is FIFO, snapshot is {}", other.kind_name())),
        }
    }
}

/// Deterministic random victim selection.
#[derive(Debug)]
struct RandomPolicy {
    ways: usize,
    rng: SmallRng,
}

impl RandomPolicy {
    fn new(ways: usize, seed: u64) -> Self {
        RandomPolicy {
            ways,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl SetReplacement for RandomPolicy {
    fn on_hit(&mut self, _way: usize) {}
    fn on_fill(&mut self, _way: usize) {}

    fn victim(&mut self) -> usize {
        self.rng.gen_range(0..self.ways)
    }

    fn save_state(&self) -> ReplacementState {
        ReplacementState::Random {
            rng: self.rng.state(),
        }
    }

    fn load_state(&mut self, state: ReplacementState) -> Result<(), String> {
        match state {
            ReplacementState::Random { rng } => {
                self.rng = SmallRng::from_state(rng);
                Ok(())
            }
            other => Err(format!(
                "policy is random, snapshot is {}",
                other.kind_name()
            )),
        }
    }
}

/// Tree pseudo-LRU over a power-of-two number of ways.
///
/// The tree is stored as `ways - 1` direction bits in heap order; a bit of
/// `false` points left, `true` points right. Touching a way flips the bits
/// on its root path to point *away* from it; the victim walk follows the
/// bits.
#[derive(Debug)]
struct TreePlru {
    ways: usize,
    bits: Vec<bool>,
}

impl TreePlru {
    fn new(ways: usize) -> Self {
        assert!(
            ways.is_power_of_two(),
            "tree-PLRU requires power-of-two associativity, got {ways}"
        );
        TreePlru {
            ways,
            bits: vec![false; ways.saturating_sub(1)],
        }
    }

    fn touch(&mut self, way: usize) {
        if self.ways == 1 {
            return;
        }
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if way < mid {
                // way is in the left half: point the bit right (away).
                self.bits[node] = true;
                node = 2 * node + 1;
                hi = mid;
            } else {
                self.bits[node] = false;
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }
}

impl SetReplacement for TreePlru {
    fn on_hit(&mut self, way: usize) {
        self.touch(way);
    }

    fn on_fill(&mut self, way: usize) {
        self.touch(way);
    }

    fn victim(&mut self) -> usize {
        if self.ways == 1 {
            return 0;
        }
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.bits[node] {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }

    fn save_state(&self) -> ReplacementState {
        ReplacementState::TreePlru {
            bits: self.bits.clone(),
        }
    }

    fn load_state(&mut self, state: ReplacementState) -> Result<(), String> {
        match state {
            ReplacementState::TreePlru { bits } => {
                if bits.len() != self.bits.len() {
                    return Err(format!(
                        "tree-PLRU bits: expected {} entries, got {}",
                        self.bits.len(),
                        bits.len()
                    ));
                }
                self.bits = bits;
                Ok(())
            }
            other => Err(format!(
                "policy is tree-PLRU, snapshot is {}",
                other.kind_name()
            )),
        }
    }
}

/// SRRIP with 2-bit re-reference prediction values.
#[derive(Debug)]
struct Srrip {
    rrpv: Vec<u8>,
}

const RRPV_MAX: u8 = 3; // 2-bit counters
const RRPV_LONG: u8 = RRPV_MAX - 1;

impl Srrip {
    fn new(ways: usize) -> Self {
        Srrip {
            rrpv: vec![RRPV_MAX; ways],
        }
    }
}

impl SetReplacement for Srrip {
    fn on_hit(&mut self, way: usize) {
        self.rrpv[way] = 0;
    }

    fn on_fill(&mut self, way: usize) {
        self.rrpv[way] = RRPV_LONG;
    }

    fn victim(&mut self) -> usize {
        loop {
            if let Some(way) = self.rrpv.iter().position(|&v| v == RRPV_MAX) {
                return way;
            }
            for v in &mut self.rrpv {
                *v += 1;
            }
        }
    }

    fn save_state(&self) -> ReplacementState {
        ReplacementState::Srrip {
            rrpv: self.rrpv.clone(),
        }
    }

    fn load_state(&mut self, state: ReplacementState) -> Result<(), String> {
        match state {
            ReplacementState::Srrip { rrpv } => {
                if rrpv.len() != self.rrpv.len() {
                    return Err(format!(
                        "SRRIP rrpv: expected {} entries, got {}",
                        self.rrpv.len(),
                        rrpv.len()
                    ));
                }
                if let Some(v) = rrpv.iter().find(|&&v| v > RRPV_MAX) {
                    return Err(format!("SRRIP rrpv value {v} exceeds max {RRPV_MAX}"));
                }
                self.rrpv = rrpv;
                Ok(())
            }
            other => Err(format!(
                "policy is SRRIP, snapshot is {}",
                other.kind_name()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(kind: ReplacementKind, ways: usize) -> Box<dyn SetReplacement> {
        let mut p = kind.build(ways);
        for w in 0..ways {
            p.on_fill(w);
        }
        p
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = filled(ReplacementKind::Lru, 4);
        assert_eq!(p.victim(), 0);
        p.on_hit(0);
        assert_eq!(p.victim(), 1);
        p.on_hit(1);
        p.on_hit(2);
        p.on_hit(3);
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn lru_refill_refreshes() {
        let mut p = filled(ReplacementKind::Lru, 2);
        p.on_fill(0);
        assert_eq!(p.victim(), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = filled(ReplacementKind::Fifo, 4);
        p.on_hit(0);
        p.on_hit(0);
        assert_eq!(p.victim(), 0, "hits must not refresh FIFO order");
        p.on_fill(0); // re-filling moves way 0 to the back
        assert_eq!(p.victim(), 1);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let mut a = filled(ReplacementKind::Random { seed: 42 }, 8);
        let mut b = filled(ReplacementKind::Random { seed: 42 }, 8);
        for _ in 0..100 {
            let (va, vb) = (a.victim(), b.victim());
            assert_eq!(va, vb);
            assert!(va < 8);
        }
    }

    #[test]
    fn tree_plru_victim_avoids_recent() {
        let mut p = filled(ReplacementKind::TreePlru, 4);
        let v1 = p.victim();
        p.on_hit(v1);
        let v2 = p.victim();
        assert_ne!(v1, v2, "just-touched way must not be the next victim");
    }

    #[test]
    fn tree_plru_cycles_through_all_ways() {
        // Repeatedly evicting and refilling must touch every way.
        let mut p = filled(ReplacementKind::TreePlru, 8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let v = p.victim();
            seen.insert(v);
            p.on_fill(v);
        }
        assert_eq!(seen.len(), 8, "PLRU must rotate over all ways: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_plru_rejects_odd_ways() {
        ReplacementKind::TreePlru.build(3);
    }

    #[test]
    fn srrip_prefers_distant_rrpv() {
        let mut p = ReplacementKind::Srrip.build(4);
        p.on_fill(0);
        p.on_fill(1);
        p.on_fill(2);
        p.on_fill(3);
        p.on_hit(2); // rrpv[2] = 0
        let v = p.victim();
        assert_ne!(v, 2, "hit way has the nearest re-reference prediction");
    }

    #[test]
    fn srrip_ages_until_victim_found() {
        let mut p = ReplacementKind::Srrip.build(2);
        p.on_fill(0);
        p.on_fill(1);
        p.on_hit(0);
        p.on_hit(1);
        // Both at rrpv 0; aging must still terminate and pick way 0 first.
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn single_way_sets_work_for_all_kinds() {
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::Fifo,
            ReplacementKind::Random { seed: 1 },
            ReplacementKind::TreePlru,
            ReplacementKind::Srrip,
        ] {
            let mut p = filled(kind, 1);
            assert_eq!(p.victim(), 0, "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        ReplacementKind::Lru.build(0);
    }

    #[test]
    fn state_round_trip_continues_victim_sequence() {
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::Fifo,
            ReplacementKind::Random { seed: 42 },
            ReplacementKind::TreePlru,
            ReplacementKind::Srrip,
        ] {
            let mut p = filled(kind, 4);
            // Advance into a non-trivial state.
            for step in 0..13 {
                let v = p.victim();
                p.on_fill(v);
                p.on_hit(step % 4);
            }
            let state = p.save_state();
            let mut q = filled(kind, 4);
            q.load_state(state).expect("same shape must load");
            for _ in 0..20 {
                let (vp, vq) = (p.victim(), q.victim());
                assert_eq!(vp, vq, "{kind}: restored policy must track original");
                p.on_fill(vp);
                q.on_fill(vq);
            }
        }
    }

    #[test]
    fn load_state_rejects_kind_and_shape_mismatch() {
        let mut lru = filled(ReplacementKind::Lru, 4);
        let fifo_state = filled(ReplacementKind::Fifo, 4).save_state();
        assert!(lru.load_state(fifo_state).is_err(), "kind mismatch");
        let wide = filled(ReplacementKind::Lru, 8).save_state();
        assert!(lru.load_state(wide).is_err(), "way-count mismatch");
        assert!(
            lru.load_state(ReplacementState::Lru {
                order: vec![0, 0, 1, 2],
            })
            .is_err(),
            "duplicate ways are not a permutation"
        );
        let mut srrip = filled(ReplacementKind::Srrip, 2);
        assert!(
            srrip
                .load_state(ReplacementState::Srrip { rrpv: vec![9, 0] })
                .is_err(),
            "out-of-range RRPV"
        );
        // A rejected load leaves the current state untouched.
        assert_eq!(
            srrip.save_state(),
            ReplacementState::Srrip { rrpv: vec![2, 2] }
        );
    }

    #[test]
    fn kind_display() {
        assert_eq!(ReplacementKind::Lru.to_string(), "LRU");
        assert_eq!(ReplacementKind::TreePlru.to_string(), "tree-PLRU");
        assert_eq!(ReplacementKind::default(), ReplacementKind::Lru);
    }
}

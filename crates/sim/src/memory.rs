//! Sparse flat backing store.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::addr::Address;
use crate::cache::Backing;

/// How uninitialized memory reads back.
///
/// Since the energy model prices bit values, what "cold" memory contains is
/// an experimental knob: all-zero memory flatters zero-preferring encodings,
/// while random memory is the adversarial baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FillPattern {
    /// Uninitialized lines read as all-zero words.
    #[default]
    Zero,
    /// Uninitialized lines read as deterministic pseudo-random words.
    Random {
        /// Seed for the per-line deterministic generator.
        seed: u64,
    },
}

/// A sparse, word-granular main memory.
///
/// Lines are materialized on first touch. Word and byte accessors are
/// provided for the workload layer, which executes real kernels against
/// this memory while recording the resulting trace.
///
/// # Example
///
/// ```
/// use cnt_sim::{Address, MainMemory};
///
/// let mut mem = MainMemory::new();
/// mem.store(Address::new(0x100), 4, 0xABCD);
/// assert_eq!(mem.load(Address::new(0x100), 4), 0xABCD);
/// assert_eq!(mem.load(Address::new(0x104), 4), 0);
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct MainMemory {
    /// Storage keyed by 64-byte-aligned chunk base address.
    chunks: HashMap<u64, Box<[u64; WORDS_PER_CHUNK]>>,
    fill: FillPattern,
}

const CHUNK_BYTES: u64 = 64;

/// Words in one materialized memory chunk.
pub const WORDS_PER_CHUNK: usize = (CHUNK_BYTES / 8) as usize;

/// Serializable image of a [`MainMemory`], with deterministic chunk
/// order. Produced by [`MainMemory::snapshot`] and consumed by
/// [`MainMemory::from_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySnapshot {
    /// The cold-read pattern.
    pub fill: FillPattern,
    /// `(chunk base, words)` pairs sorted by base address.
    pub chunks: Vec<(u64, Vec<u64>)>,
}

impl MainMemory {
    /// Creates an empty memory whose cold reads are zero.
    pub fn new() -> Self {
        MainMemory::with_fill(FillPattern::Zero)
    }

    /// Creates an empty memory with the given cold-read pattern.
    pub fn with_fill(fill: FillPattern) -> Self {
        MainMemory {
            chunks: HashMap::new(),
            fill,
        }
    }

    /// Number of materialized 64-byte chunks (the touched footprint).
    pub fn touched_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The cold-read pattern in effect.
    pub fn fill(&self) -> FillPattern {
        self.fill
    }

    /// Captures the full memory contents for checkpointing, with chunks
    /// sorted by base address so the same state always serializes to the
    /// same bytes (the backing `HashMap` iterates in arbitrary order).
    pub fn snapshot(&self) -> MemorySnapshot {
        let mut chunks: Vec<(u64, Vec<u64>)> = self
            .chunks
            .iter()
            .map(|(&base, words)| (base, words.to_vec()))
            .collect();
        chunks.sort_unstable_by_key(|&(base, _)| base);
        MemorySnapshot {
            fill: self.fill,
            chunks,
        }
    }

    /// Rebuilds a memory from a snapshot.
    ///
    /// # Errors
    ///
    /// Fails if a chunk base is misaligned or a chunk does not hold
    /// exactly [`WORDS_PER_CHUNK`] words. On error nothing is returned,
    /// so the caller's current memory is untouched.
    pub fn from_snapshot(snap: MemorySnapshot) -> Result<Self, String> {
        let mut chunks = HashMap::with_capacity(snap.chunks.len());
        for (base, words) in snap.chunks {
            if base % CHUNK_BYTES != 0 {
                return Err(format!(
                    "memory chunk base {base:#x} is not 64-byte aligned"
                ));
            }
            let words: Box<[u64; WORDS_PER_CHUNK]> = words
                .into_boxed_slice()
                .try_into()
                .map_err(|_| format!("memory chunk {base:#x} is not {WORDS_PER_CHUNK} words"))?;
            if chunks.insert(base, words).is_some() {
                return Err(format!("memory chunk {base:#x} appears twice"));
            }
        }
        Ok(MainMemory {
            chunks,
            fill: snap.fill,
        })
    }

    fn chunk_content(fill: FillPattern, base: u64) -> Box<[u64; WORDS_PER_CHUNK]> {
        match fill {
            FillPattern::Zero => Box::new([0; WORDS_PER_CHUNK]),
            FillPattern::Random { seed } => {
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ base.wrapping_mul(0xA076_1D64_78BD_642F));
                let mut words = [0u64; WORDS_PER_CHUNK];
                for w in &mut words {
                    *w = rng.gen();
                }
                Box::new(words)
            }
        }
    }

    fn chunk(&mut self, base: u64) -> &mut [u64; WORDS_PER_CHUNK] {
        let fill = self.fill;
        self.chunks
            .entry(base)
            .or_insert_with(|| Self::chunk_content(fill, base))
    }

    /// Reads one aligned 64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn read_word(&mut self, addr: Address) -> u64 {
        assert!(addr.is_aligned(8), "word read at unaligned {addr}");
        let base = addr.align_down(CHUNK_BYTES).value();
        let word = (addr.offset_in(CHUNK_BYTES) / 8) as usize;
        self.chunk(base)[word]
    }

    /// Writes one aligned 64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn write_word(&mut self, addr: Address, value: u64) {
        assert!(addr.is_aligned(8), "word write at unaligned {addr}");
        let base = addr.align_down(CHUNK_BYTES).value();
        let word = (addr.offset_in(CHUNK_BYTES) / 8) as usize;
        self.chunk(base)[word] = value;
    }

    /// Loads `width` bytes (1, 2, 4, or 8) from a naturally-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not one of 1/2/4/8 or `addr` is not aligned to
    /// `width`.
    pub fn load(&mut self, addr: Address, width: u8) -> u64 {
        check_access(addr, width);
        let word_addr = addr.align_down(8);
        let word = self.read_word(word_addr);
        extract(word, addr.offset_in(8), width)
    }

    /// Stores the low `width * 8` bits of `value` (width 1, 2, 4, or 8) to
    /// a naturally-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not one of 1/2/4/8 or `addr` is not aligned to
    /// `width`.
    pub fn store(&mut self, addr: Address, width: u8, value: u64) {
        check_access(addr, width);
        let word_addr = addr.align_down(8);
        let old = self.read_word(word_addr);
        self.write_word(word_addr, splice(old, addr.offset_in(8), width, value));
    }
}

impl Default for MainMemory {
    fn default() -> Self {
        MainMemory::new()
    }
}

impl fmt::Debug for MainMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MainMemory")
            .field("touched_chunks", &self.chunks.len())
            .field("fill", &self.fill)
            .finish()
    }
}

impl Backing for MainMemory {
    fn load_line(&mut self, base: Address, buf: &mut [u64]) {
        debug_assert!(base.is_aligned(buf.len() as u64 * 8));
        for (i, word) in buf.iter_mut().enumerate() {
            *word = self.read_word(base + i as u64 * 8);
        }
    }

    fn store_line(&mut self, base: Address, data: &[u64]) {
        debug_assert!(base.is_aligned(data.len() as u64 * 8));
        for (i, &word) in data.iter().enumerate() {
            self.write_word(base + i as u64 * 8, word);
        }
    }

    fn store_word(&mut self, addr: Address, value: u64) {
        self.write_word(addr, value);
    }
}

pub(crate) fn check_access(addr: Address, width: u8) {
    assert!(
        matches!(width, 1 | 2 | 4 | 8),
        "access width must be 1, 2, 4 or 8 bytes, got {width}"
    );
    assert!(
        addr.is_aligned(u64::from(width)),
        "{width}-byte access at unaligned {addr}"
    );
}

/// Extracts `width` bytes starting at byte offset `offset` from `word`.
pub(crate) fn extract(word: u64, offset: u64, width: u8) -> u64 {
    let shift = offset * 8;
    let mask = width_mask(width);
    (word >> shift) & mask
}

/// Replaces `width` bytes at byte offset `offset` in `word` with `value`.
pub(crate) fn splice(word: u64, offset: u64, width: u8, value: u64) -> u64 {
    let shift = offset * 8;
    let mask = width_mask(width);
    (word & !(mask << shift)) | ((value & mask) << shift)
}

fn width_mask(width: u8) -> u64 {
    match width {
        8 => u64::MAX,
        w => (1u64 << (u64::from(w) * 8)) - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_reads_zero() {
        let mut mem = MainMemory::new();
        assert_eq!(mem.load(Address::new(0x5000), 8), 0);
    }

    #[test]
    fn random_fill_is_deterministic() {
        let mut a = MainMemory::with_fill(FillPattern::Random { seed: 3 });
        let mut b = MainMemory::with_fill(FillPattern::Random { seed: 3 });
        let mut c = MainMemory::with_fill(FillPattern::Random { seed: 4 });
        let addr = Address::new(0x42 * 64);
        assert_eq!(a.read_word(addr), b.read_word(addr));
        assert_ne!(a.read_word(addr), c.read_word(addr));
    }

    #[test]
    fn store_then_load_round_trips_all_widths() {
        let mut mem = MainMemory::new();
        mem.store(Address::new(0x100), 1, 0xAB);
        mem.store(Address::new(0x102), 2, 0xCDEF);
        mem.store(Address::new(0x104), 4, 0x1234_5678);
        mem.store(Address::new(0x108), 8, 0x9ABC_DEF0_1122_3344);
        assert_eq!(mem.load(Address::new(0x100), 1), 0xAB);
        assert_eq!(mem.load(Address::new(0x102), 2), 0xCDEF);
        assert_eq!(mem.load(Address::new(0x104), 4), 0x1234_5678);
        assert_eq!(mem.load(Address::new(0x108), 8), 0x9ABC_DEF0_1122_3344);
    }

    #[test]
    fn narrow_store_preserves_neighbors() {
        let mut mem = MainMemory::new();
        mem.store(Address::new(0x200), 8, u64::MAX);
        mem.store(Address::new(0x202), 2, 0);
        assert_eq!(mem.load(Address::new(0x200), 8), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        MainMemory::new().load(Address::new(0x101), 4);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn bad_width_panics() {
        MainMemory::new().load(Address::new(0x100), 3);
    }

    #[test]
    fn line_backing_round_trip() {
        let mut mem = MainMemory::new();
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        mem.store_line(Address::new(0x400), &data);
        let mut buf = [0u64; 8];
        mem.load_line(Address::new(0x400), &mut buf);
        assert_eq!(buf, data);
        // And word-granular view agrees.
        assert_eq!(mem.read_word(Address::new(0x418)), 4);
    }

    #[test]
    fn footprint_tracks_touched_chunks() {
        let mut mem = MainMemory::new();
        assert_eq!(mem.touched_chunks(), 0);
        mem.store(Address::new(0), 8, 1);
        mem.store(Address::new(8), 8, 1); // same chunk
        mem.store(Address::new(64), 8, 1); // new chunk
        assert_eq!(mem.touched_chunks(), 2);
    }

    #[test]
    fn snapshot_round_trips_and_orders_chunks() {
        let mut mem = MainMemory::with_fill(FillPattern::Random { seed: 5 });
        // Touch chunks in scrambled order.
        for base in [0x1C0u64, 0x000, 0x300, 0x080] {
            mem.store(Address::new(base), 8, base ^ 0xFF);
        }
        let snap = mem.snapshot();
        let bases: Vec<u64> = snap.chunks.iter().map(|&(b, _)| b).collect();
        assert_eq!(bases, vec![0x000, 0x080, 0x1C0, 0x300], "sorted by base");
        assert_eq!(snap, mem.snapshot(), "snapshot is deterministic");
        let mut back = MainMemory::from_snapshot(snap).expect("valid snapshot");
        for base in [0x1C0u64, 0x000, 0x300, 0x080] {
            assert_eq!(back.load(Address::new(base), 8), base ^ 0xFF);
        }
        assert_eq!(back.fill(), FillPattern::Random { seed: 5 });
        assert_eq!(back.touched_chunks(), 4);
    }

    #[test]
    fn from_snapshot_rejects_malformed_chunks() {
        let good = |base| (base, vec![0u64; WORDS_PER_CHUNK]);
        let misaligned = MemorySnapshot {
            fill: FillPattern::Zero,
            chunks: vec![good(0), (33, vec![0; WORDS_PER_CHUNK])],
        };
        assert!(MainMemory::from_snapshot(misaligned).is_err());
        let short = MemorySnapshot {
            fill: FillPattern::Zero,
            chunks: vec![(64, vec![0; 3])],
        };
        assert!(MainMemory::from_snapshot(short).is_err());
        let dup = MemorySnapshot {
            fill: FillPattern::Zero,
            chunks: vec![good(64), good(64)],
        };
        assert!(MainMemory::from_snapshot(dup).is_err());
    }

    #[test]
    fn splice_and_extract_are_inverse() {
        let word = 0x1122_3344_5566_7788u64;
        for (offset, width) in [(0u64, 1u8), (2, 2), (4, 4), (0, 8), (7, 1)] {
            let v = extract(word, offset, width);
            assert_eq!(splice(word, offset, width, v), word);
        }
    }
}

//! Cache access statistics.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Hit/miss/traffic counters for one cache.
///
/// # Example
///
/// ```
/// use cnt_sim::CacheStats;
///
/// let mut s = CacheStats::default();
/// s.record_read(true);
/// s.record_read(false);
/// s.record_write(true);
/// assert_eq!(s.accesses(), 3);
/// assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand reads that hit.
    pub read_hits: u64,
    /// Demand reads that missed.
    pub read_misses: u64,
    /// Demand writes that hit.
    pub write_hits: u64,
    /// Demand writes that missed.
    pub write_misses: u64,
    /// Lines fetched from the backing.
    pub fills: u64,
    /// Valid lines displaced (dirty or clean).
    pub evictions: u64,
    /// Dirty lines written back to the backing.
    pub writebacks: u64,
    /// Words written through to the backing (write-through modes only).
    pub writethroughs: u64,
    /// Lines fetched by the hardware prefetcher (also counted in `fills`).
    pub prefetch_fills: u64,
}

impl CacheStats {
    /// Records a demand read.
    pub fn record_read(&mut self, hit: bool) {
        if hit {
            self.read_hits += 1;
        } else {
            self.read_misses += 1;
        }
    }

    /// Records a demand write.
    pub fn record_write(&mut self, hit: bool) {
        if hit {
            self.write_hits += 1;
        } else {
            self.write_misses += 1;
        }
    }

    /// Total demand reads.
    pub fn reads(&self) -> u64 {
        self.read_hits + self.read_misses
    }

    /// Total demand writes.
    pub fn writes(&self) -> u64 {
        self.write_hits + self.write_misses
    }

    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Hit fraction over all demand accesses.
    ///
    /// Returns `0.0` when there were no accesses: every rate helper here
    /// is defined to be finite so derived values can always be rendered
    /// and serialized (real `serde_json` rejects non-finite floats).
    pub fn hit_rate(&self) -> f64 {
        Self::rate(self.hits(), self.accesses())
    }

    /// Miss fraction over all demand accesses (`0.0` if there were none;
    /// see [`hit_rate`](Self::hit_rate)).
    pub fn miss_rate(&self) -> f64 {
        Self::rate(self.misses(), self.accesses())
    }

    /// Fraction of demand accesses that are writes (`0.0` if none; see
    /// [`hit_rate`](Self::hit_rate)).
    pub fn write_fraction(&self) -> f64 {
        Self::rate(self.writes(), self.accesses())
    }

    /// `part / whole` as a fraction, defined as `0.0` for an empty whole
    /// so a rate is always finite.
    fn rate(part: u64, whole: u64) -> f64 {
        if whole == 0 {
            0.0
        } else {
            part as f64 / whole as f64
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;
    fn add(mut self, rhs: CacheStats) -> CacheStats {
        self += rhs;
        self
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.read_hits += rhs.read_hits;
        self.read_misses += rhs.read_misses;
        self.write_hits += rhs.write_hits;
        self.write_misses += rhs.write_misses;
        self.fills += rhs.fills;
        self.evictions += rhs.evictions;
        self.writebacks += rhs.writebacks;
        self.writethroughs += rhs.writethroughs;
        self.prefetch_fills += rhs.prefetch_fills;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses ({} rd / {} wr), {:.2}% hits, {} fills, {} evictions, {} writebacks",
            self.accesses(),
            self.reads(),
            self.writes(),
            self.hit_rate() * 100.0,
            self.fills,
            self.evictions,
            self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = CacheStats::default();
        for _ in 0..3 {
            s.record_read(true);
        }
        s.record_read(false);
        s.record_write(false);
        assert_eq!(s.reads(), 4);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.hits(), 3);
        assert_eq!(s.misses(), 2);
        assert!((s.miss_rate() - 0.4).abs() < 1e-12);
        assert!((s.write_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn addition_is_componentwise() {
        let mut a = CacheStats::default();
        a.record_read(true);
        a.fills = 2;
        let mut b = CacheStats::default();
        b.record_write(false);
        b.writebacks = 1;
        let c = a.clone() + b;
        assert_eq!(c.read_hits, 1);
        assert_eq!(c.write_misses, 1);
        assert_eq!(c.fills, 2);
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn empty_rates_are_zero() {
        // An idle cache must report finite rates: `NaN` used to leak into
        // `Display` ("NaN% hits") and break JSON serialization.
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.write_fraction(), 0.0);
        assert!(s.to_string().contains("0.00% hits"));
    }

    #[test]
    fn display_has_counts() {
        let mut s = CacheStats::default();
        s.record_read(true);
        let text = s.to_string();
        assert!(text.contains("1 accesses"));
        assert!(text.contains("100.00% hits"));
    }
}

//! Trace-driven set-associative cache simulator substrate for the CNT-Cache
//! reproduction.
//!
//! This crate is the *substrate* the CNT-Cache contribution sits on: a
//! functional, data-carrying cache model. Unlike a hit/miss-only simulator,
//! every [`CacheLine`] stores its actual words, because the whole point of
//! the paper is that dynamic energy depends on the *values* of the bits
//! moving through the SRAM array. The energy layer observes raw array
//! activity through the [`ArrayObserver`] trait without this crate knowing
//! anything about joules.
//!
//! # Architecture
//!
//! * [`Address`], [`CacheGeometry`] — address arithmetic and validated
//!   cache shapes,
//! * [`CacheLine`], [`CacheSet`] — data-carrying storage with pluggable
//!   [`replacement`] policies,
//! * [`Cache`] — a write-back, write-allocate cache over any [`Backing`]
//!   (main memory or a lower cache level),
//! * [`MainMemory`] — a sparse flat backing store,
//! * [`CacheHierarchy`] — split L1I/L1D over an optional unified L2,
//! * [`trace`] — the [`MemoryAccess`](trace::MemoryAccess) record format
//!   produced by the workload crate.
//!
//! # Example
//!
//! ```
//! use cnt_sim::{Address, Cache, CacheGeometry, MainMemory, ReplacementKind};
//!
//! let geometry = CacheGeometry::new(4096, 64, 4)?;
//! let mut cache = Cache::new("L1D", geometry, ReplacementKind::Lru);
//! let mut memory = MainMemory::new();
//!
//! cache.write(Address::new(0x1000), 8, 0xDEAD_BEEF, &mut memory, &mut ())?;
//! let value = cache.read(Address::new(0x1000), 8, &mut memory, &mut ())?;
//! assert_eq!(value, 0xDEAD_BEEF);
//! assert_eq!(cache.stats().write_misses, 1);
//! assert_eq!(cache.stats().read_hits, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cache;
mod config;
mod hierarchy;
mod line;
mod memory;
pub mod replacement;
mod set;
mod stats;
pub mod trace;

pub use addr::{Address, AddressParts};
pub use cache::{
    AccessError, AccessOutcome, ArrayObserver, Backing, Cache, CacheLevel, CacheSnapshot,
    LineLocation, PrefetchPolicy, WriteMode,
};
pub use config::{CacheGeometry, GeometryError};
pub use hierarchy::{CacheHierarchy, HierarchyConfig};
pub use line::CacheLine;
pub use memory::{FillPattern, MainMemory, MemorySnapshot};
pub use replacement::{ReplacementKind, ReplacementState};
pub use set::CacheSet;
pub use stats::CacheStats;

//! The write-back, write-allocate set-associative cache.

use std::error::Error;
use std::fmt;

use crate::addr::Address;
use crate::config::CacheGeometry;
use crate::line::CacheLine;
use crate::memory::{check_access, extract, splice};
use crate::replacement::{ReplacementKind, ReplacementState};
use crate::set::CacheSet;
use crate::stats::CacheStats;

/// Serializable image of a cache's mutable state: every line
/// (set-major, way-minor), per-set replacement state, and statistics.
/// The shape itself (geometry, write mode, prefetch policy) is *not*
/// captured — a snapshot restores only into a cache built with the same
/// configuration, and [`Cache::restore`] rejects shape mismatches.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CacheSnapshot {
    /// All lines, flattened as `set * ways + way`.
    pub lines: Vec<CacheLine>,
    /// One replacement-policy state per set.
    pub replacement: Vec<ReplacementState>,
    /// Accumulated statistics at capture time.
    pub stats: CacheStats,
}

/// Where a line lives inside the cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineLocation {
    /// The set index.
    pub set: u64,
    /// The way within the set.
    pub way: u32,
}

impl fmt::Display for LineLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set {} way {}", self.set, self.way)
    }
}

/// Raw SRAM-array activity, reported as it happens.
///
/// The energy layer implements this to price every bit that moves through
/// the array; the default methods do nothing, and `()` is the no-op
/// observer.
pub trait ArrayObserver {
    /// A word was read out of the array (demand load portion of a hit).
    fn word_read(&mut self, loc: LineLocation, word_index: usize, value: u64) {
        let _ = (loc, word_index, value);
    }

    /// A word in the array was overwritten (demand store portion of a hit).
    fn word_written(&mut self, loc: LineLocation, word_index: usize, old: u64, new: u64) {
        let _ = (loc, word_index, old, new);
    }

    /// A whole line was written into the array after a miss.
    fn line_filled(&mut self, loc: LineLocation, base: Address, data: &[u64]) {
        let _ = (loc, base, data);
    }

    /// A line left the array (eviction or flush). `dirty` lines were read
    /// out for write-back; clean lines just dropped.
    fn line_evicted(&mut self, loc: LineLocation, base: Address, data: &[u64], dirty: bool) {
        let _ = (loc, base, data, dirty);
    }
}

impl ArrayObserver for () {}

/// Anything a cache can fetch lines from and spill lines to: main memory or
/// a lower cache level.
pub trait Backing {
    /// Reads one line at `base` into `buf`.
    fn load_line(&mut self, base: Address, buf: &mut [u64]);
    /// Writes one line of `data` at `base`.
    fn store_line(&mut self, base: Address, data: &[u64]);
    /// Writes a single aligned 64-bit word (used by write-through caches).
    fn store_word(&mut self, addr: Address, value: u64);
}

/// Hardware prefetching performed by the cache itself.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum PrefetchPolicy {
    /// No prefetching (the default).
    #[default]
    None,
    /// On every demand miss, also fetch the next sequential line if it is
    /// not already resident.
    NextLine,
}

impl fmt::Display for PrefetchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefetchPolicy::None => f.write_str("none"),
            PrefetchPolicy::NextLine => f.write_str("next-line"),
        }
    }
}

/// How demand writes interact with the array and the backing.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize, Default,
)]
pub enum WriteMode {
    /// Write-back, write-allocate (the default): stores dirty the line and
    /// reach the backing only on eviction.
    #[default]
    WriteBack,
    /// Write-through, write-allocate: stores update the (clean) line and
    /// the backing word immediately.
    WriteThrough,
    /// Write-through, no-allocate (write-around): store misses bypass the
    /// array entirely; hits behave like [`WriteMode::WriteThrough`].
    WriteThroughNoAllocate,
}

impl std::fmt::Display for WriteMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteMode::WriteBack => f.write_str("write-back"),
            WriteMode::WriteThrough => f.write_str("write-through"),
            WriteMode::WriteThroughNoAllocate => f.write_str("write-through/no-allocate"),
        }
    }
}

/// Errors for malformed demand accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AccessError {
    /// Width was not 1, 2, 4 or 8 bytes.
    BadWidth {
        /// The offending width.
        width: u8,
    },
    /// The address was not naturally aligned to the access width.
    Unaligned {
        /// The offending address.
        addr: Address,
        /// The access width.
        width: u8,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::BadWidth { width } => {
                write!(f, "access width must be 1, 2, 4 or 8 bytes, got {width}")
            }
            AccessError::Unaligned { addr, width } => {
                write!(f, "{width}-byte access at unaligned address {addr}")
            }
        }
    }
}

impl Error for AccessError {}

/// What one demand access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The value read (for reads) or written (for writes).
    pub value: u64,
    /// `true` if the access hit.
    pub hit: bool,
    /// Where the line now lives. `None` only for write-around stores
    /// ([`WriteMode::WriteThroughNoAllocate`] misses), which never touch
    /// the array.
    pub location: Option<LineLocation>,
    /// If a valid line was evicted to make room, its base address and
    /// whether it was dirty (written back).
    pub evicted: Option<(Address, bool)>,
}

/// A write-back, write-allocate set-associative cache carrying real data.
///
/// See the [crate-level example](crate) for typical use. All demand traffic
/// goes through [`read`](Cache::read) / [`write`](Cache::write) (or their
/// `_outcome` variants), which transparently fetch missing lines from the
/// [`Backing`] and spill dirty victims back to it. Raw array activity is
/// reported to the supplied [`ArrayObserver`].
pub struct Cache {
    name: String,
    geometry: CacheGeometry,
    write_mode: WriteMode,
    prefetch: PrefetchPolicy,
    sets: Vec<CacheSet>,
    stats: CacheStats,
    scratch: Vec<u64>,
}

impl Cache {
    /// Creates an empty write-back, write-allocate cache.
    pub fn new(
        name: impl Into<String>,
        geometry: CacheGeometry,
        replacement: ReplacementKind,
    ) -> Self {
        let ways = geometry.associativity() as usize;
        let words = geometry.words_per_line();
        let sets = (0..geometry.num_sets())
            .map(|i| CacheSet::new(ways, words, replacement, i))
            .collect();
        Cache {
            name: name.into(),
            geometry,
            write_mode: WriteMode::WriteBack,
            prefetch: PrefetchPolicy::None,
            sets,
            stats: CacheStats::default(),
            scratch: vec![0; words],
        }
    }

    /// Sets the prefetch policy (chainable at construction time).
    pub fn with_prefetch(mut self, policy: PrefetchPolicy) -> Self {
        self.prefetch = policy;
        self
    }

    /// The prefetch policy in effect.
    pub fn prefetch(&self) -> PrefetchPolicy {
        self.prefetch
    }

    /// Sets the write mode (chainable at construction time).
    ///
    /// ```
    /// use cnt_sim::{Cache, CacheGeometry, ReplacementKind, WriteMode};
    ///
    /// let cache = Cache::new("L1D", CacheGeometry::new(4096, 64, 2)?, ReplacementKind::Lru)
    ///     .with_write_mode(WriteMode::WriteThrough);
    /// assert_eq!(cache.write_mode(), WriteMode::WriteThrough);
    /// # Ok::<(), cnt_sim::GeometryError>(())
    /// ```
    pub fn with_write_mode(mut self, mode: WriteMode) -> Self {
        self.write_mode = mode;
        self
    }

    /// The write mode in effect.
    pub fn write_mode(&self) -> WriteMode {
        self.write_mode
    }

    /// The cache's display name (e.g. `"L1D"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cache's shape.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics to zero.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Consumes the cache, returning its accumulated statistics without
    /// copying them (for end-of-run report assembly).
    pub fn into_stats(self) -> CacheStats {
        self.stats
    }

    /// Reads `width` bytes at `addr`, returning the zero-extended value.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for a bad width or unaligned address.
    pub fn read(
        &mut self,
        addr: Address,
        width: u8,
        lower: &mut dyn Backing,
        observer: &mut dyn ArrayObserver,
    ) -> Result<u64, AccessError> {
        self.read_outcome(addr, width, lower, observer)
            .map(|o| o.value)
    }

    /// Reads `width` bytes at `addr` with full outcome detail.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for a bad width or unaligned address.
    pub fn read_outcome(
        &mut self,
        addr: Address,
        width: u8,
        lower: &mut dyn Backing,
        observer: &mut dyn ArrayObserver,
    ) -> Result<AccessOutcome, AccessError> {
        validate(addr, width)?;
        let (location, hit, evicted) = self.ensure_line(addr, lower, observer);
        self.stats.record_read(hit);
        let word_index = (addr.offset_in(u64::from(self.geometry.line_bytes())) / 8) as usize;
        let set = &mut self.sets[location.set as usize];
        set.touch_hit(location.way as usize);
        let word = set.line(location.way as usize).read_word(word_index);
        observer.word_read(location, word_index, word);
        let value = extract(word, addr.offset_in(8), width);
        if !hit {
            self.maybe_prefetch(addr, lower, observer);
        }
        Ok(AccessOutcome {
            value,
            hit,
            location: Some(location),
            evicted,
        })
    }

    /// Writes the low `width * 8` bits of `value` at `addr`.
    ///
    /// Sub-word writes are modeled as read-modify-write of the containing
    /// 64-bit word; the observer sees a single [`ArrayObserver::word_written`]
    /// with the old and new word.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for a bad width or unaligned address.
    pub fn write(
        &mut self,
        addr: Address,
        width: u8,
        value: u64,
        lower: &mut dyn Backing,
        observer: &mut dyn ArrayObserver,
    ) -> Result<(), AccessError> {
        self.write_outcome(addr, width, value, lower, observer)
            .map(|_| ())
    }

    /// Writes with full outcome detail.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for a bad width or unaligned address.
    pub fn write_outcome(
        &mut self,
        addr: Address,
        width: u8,
        value: u64,
        lower: &mut dyn Backing,
        observer: &mut dyn ArrayObserver,
    ) -> Result<AccessOutcome, AccessError> {
        validate(addr, width)?;
        let word_addr = addr.align_down(8);

        // Write-around: a miss under no-allocate bypasses the array.
        if self.write_mode == WriteMode::WriteThroughNoAllocate {
            let parts = self.geometry.split(addr);
            if self.sets[parts.set as usize].find(parts.tag).is_none() {
                self.stats.record_write(false);
                self.stats.writethroughs += 1;
                // Sub-word stores read-modify-write the backing word; the
                // line-granular Backing supplies it via a line read.
                let new = if width == 8 {
                    value
                } else {
                    let base = addr.align_down(u64::from(self.geometry.line_bytes()));
                    lower.load_line(base, &mut self.scratch);
                    let word_index =
                        (addr.offset_in(u64::from(self.geometry.line_bytes())) / 8) as usize;
                    splice(self.scratch[word_index], addr.offset_in(8), width, value)
                };
                lower.store_word(word_addr, new);
                return Ok(AccessOutcome {
                    value,
                    hit: false,
                    location: None,
                    evicted: None,
                });
            }
        }

        let (location, hit, evicted) = self.ensure_line(addr, lower, observer);
        self.stats.record_write(hit);
        let word_index = (addr.offset_in(u64::from(self.geometry.line_bytes())) / 8) as usize;
        let set = &mut self.sets[location.set as usize];
        set.touch_hit(location.way as usize);
        let line = set.line_mut(location.way as usize);
        let old = line.read_word(word_index);
        let new = splice(old, addr.offset_in(8), width, value);
        line.write_word(word_index, new);
        observer.word_written(location, word_index, old, new);
        if self.write_mode != WriteMode::WriteBack {
            // The backing word is updated immediately; the line stays clean.
            line.mark_clean();
            lower.store_word(word_addr, new);
            self.stats.writethroughs += 1;
        }
        if !hit {
            self.maybe_prefetch(addr, lower, observer);
        }
        Ok(AccessOutcome {
            value,
            hit,
            location: Some(location),
            evicted,
        })
    }

    /// Issues the configured prefetch after a demand miss. Runs after the
    /// demand word has been serviced, so a prefetch that conflicts with
    /// the demand line cannot corrupt the in-flight access.
    fn maybe_prefetch(
        &mut self,
        demand_addr: Address,
        lower: &mut dyn Backing,
        observer: &mut dyn ArrayObserver,
    ) {
        if self.prefetch != PrefetchPolicy::NextLine {
            return;
        }
        let line_bytes = u64::from(self.geometry.line_bytes());
        let next = demand_addr.align_down(line_bytes) + line_bytes;
        let parts = self.geometry.split(next);
        if self.sets[parts.set as usize].find(parts.tag).is_some() {
            return; // already resident
        }
        let _ = self.ensure_line(next, lower, observer);
        self.stats.prefetch_fills += 1;
    }

    /// Brings the line containing `addr` into the cache, evicting if needed.
    fn ensure_line(
        &mut self,
        addr: Address,
        lower: &mut dyn Backing,
        observer: &mut dyn ArrayObserver,
    ) -> (LineLocation, bool, Option<(Address, bool)>) {
        let parts = self.geometry.split(addr);
        let set_index = parts.set as usize;
        if let Some(way) = self.sets[set_index].find(parts.tag) {
            let loc = LineLocation {
                set: parts.set,
                way: way as u32,
            };
            return (loc, true, None);
        }

        // Miss: choose a target way, evict whatever lives there.
        let way = self.sets[set_index].fill_target();
        let loc = LineLocation {
            set: parts.set,
            way: way as u32,
        };
        let mut evicted = None;
        {
            let victim_base;
            let victim_dirty;
            {
                let line = self.sets[set_index].line(way);
                if line.is_valid() {
                    victim_base = Some(self.geometry.line_base(line.tag(), parts.set));
                    victim_dirty = line.is_dirty();
                } else {
                    victim_base = None;
                    victim_dirty = false;
                }
            }
            if let Some(base) = victim_base {
                let line = self.sets[set_index].line(way);
                observer.line_evicted(loc, base, line.as_words(), victim_dirty);
                if victim_dirty {
                    lower.store_line(base, line.as_words());
                    self.stats.writebacks += 1;
                }
                self.stats.evictions += 1;
                evicted = Some((base, victim_dirty));
            }
        }

        // Fetch the new line from the backing and install it.
        let base = self.geometry.line_base(parts.tag, parts.set);
        lower.load_line(base, &mut self.scratch);
        let set = &mut self.sets[set_index];
        set.line_mut(way).fill(parts.tag, &self.scratch);
        set.touch_fill(way);
        self.stats.fills += 1;
        observer.line_filled(loc, base, &self.scratch);
        (loc, false, evicted)
    }

    /// Writes every dirty line back to the backing (without invalidating),
    /// returning the number of lines written back.
    pub fn flush(&mut self, lower: &mut dyn Backing, observer: &mut dyn ArrayObserver) -> usize {
        let mut written = 0;
        for set_index in 0..self.sets.len() {
            for way in 0..self.sets[set_index].ways() {
                let (base, dirty);
                {
                    let line = self.sets[set_index].line(way);
                    if !line.is_valid() || !line.is_dirty() {
                        continue;
                    }
                    base = self.geometry.line_base(line.tag(), set_index as u64);
                    dirty = true;
                }
                let loc = LineLocation {
                    set: set_index as u64,
                    way: way as u32,
                };
                let line = self.sets[set_index].line(way);
                observer.line_evicted(loc, base, line.as_words(), dirty);
                lower.store_line(base, line.as_words());
                self.sets[set_index].line_mut(way).mark_clean();
                written += 1;
            }
        }
        self.stats.writebacks += written as u64;
        written
    }

    /// Looks up the line containing `addr` without disturbing replacement
    /// state or statistics.
    pub fn peek(&self, addr: Address) -> Option<&CacheLine> {
        let parts = self.geometry.split(addr);
        let set = &self.sets[parts.set as usize];
        set.find(parts.tag).map(|way| set.line(way))
    }

    /// The location of the (valid) line containing `addr`, without
    /// disturbing replacement state or statistics.
    pub fn find(&self, addr: Address) -> Option<LineLocation> {
        let parts = self.geometry.split(addr);
        self.sets[parts.set as usize]
            .find(parts.tag)
            .map(|way| LineLocation {
                set: parts.set,
                way: way as u32,
            })
    }

    /// Direct access to a line by location (e.g. for the encoding layer).
    ///
    /// # Panics
    ///
    /// Panics if the location is out of range.
    pub fn line_at(&self, loc: LineLocation) -> &CacheLine {
        self.sets[loc.set as usize].line(loc.way as usize)
    }

    /// Mutable access to a line by location.
    ///
    /// # Panics
    ///
    /// Panics if the location is out of range.
    pub fn line_at_mut(&mut self, loc: LineLocation) -> &mut CacheLine {
        self.sets[loc.set as usize].line_mut(loc.way as usize)
    }

    /// The base address of the (valid) line at `loc`.
    ///
    /// # Panics
    ///
    /// Panics if the location is out of range.
    pub fn line_base_at(&self, loc: LineLocation) -> Address {
        let line = self.line_at(loc);
        self.geometry.line_base(line.tag(), loc.set)
    }

    /// Captures lines, replacement state, and statistics for
    /// checkpointing.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            lines: self
                .sets
                .iter()
                .flat_map(|set| (0..set.ways()).map(|w| set.line(w).clone()))
                .collect(),
            replacement: self.sets.iter().map(|s| s.replacement_state()).collect(),
            stats: self.stats.clone(),
        }
    }

    /// Restores state captured with [`snapshot`](Self::snapshot) from a
    /// cache of identical configuration.
    ///
    /// # Errors
    ///
    /// Fails — leaving this cache untouched — if the snapshot's shape
    /// does not match this cache (line/set counts, words per line) or a
    /// replacement state does not fit its set's policy.
    pub fn restore(&mut self, snap: CacheSnapshot) -> Result<(), String> {
        let ways = self.geometry.associativity() as usize;
        let sets = self.geometry.num_sets() as usize;
        let words = self.geometry.words_per_line();
        if snap.lines.len() != sets * ways {
            return Err(format!(
                "snapshot has {} lines, cache holds {}",
                snap.lines.len(),
                sets * ways
            ));
        }
        if snap.replacement.len() != sets {
            return Err(format!(
                "snapshot has {} replacement states, cache has {sets} sets",
                snap.replacement.len()
            ));
        }
        if let Some(bad) = snap.lines.iter().position(|l| l.words() != words) {
            return Err(format!(
                "snapshot line {bad} holds {} words, lines here hold {words}",
                snap.lines[bad].words()
            ));
        }
        // Apply replacement state first, keeping rollback copies so a
        // mismatch partway through cannot leave a half-restored cache
        // (the saved copies are valid by construction, so re-applying
        // them cannot fail).
        let rollback: Vec<ReplacementState> =
            self.sets.iter().map(|s| s.replacement_state()).collect();
        for (index, state) in snap.replacement.into_iter().enumerate() {
            if let Err(err) = self.sets[index].load_replacement_state(state) {
                for (set, saved) in self.sets.iter_mut().zip(rollback) {
                    set.load_replacement_state(saved)
                        .expect("rollback state came from these sets");
                }
                return Err(format!("set {index}: {err}"));
            }
        }
        let mut lines = snap.lines.into_iter();
        for set in &mut self.sets {
            for way in 0..ways {
                *set.line_mut(way) = lines.next().expect("length checked above");
            }
        }
        self.stats = snap.stats;
        Ok(())
    }

    /// Iterates over all valid lines as `(location, line)`.
    pub fn valid_lines(&self) -> impl Iterator<Item = (LineLocation, &CacheLine)> {
        self.sets.iter().enumerate().flat_map(|(s, set)| {
            set.iter().filter(|(_, l)| l.is_valid()).map(move |(w, l)| {
                (
                    LineLocation {
                        set: s as u64,
                        way: w as u32,
                    },
                    l,
                )
            })
        })
    }
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("name", &self.name)
            .field("geometry", &self.geometry)
            .field("stats", &self.stats)
            .finish()
    }
}

fn validate(addr: Address, width: u8) -> Result<(), AccessError> {
    if !matches!(width, 1 | 2 | 4 | 8) {
        return Err(AccessError::BadWidth { width });
    }
    if !addr.is_aligned(u64::from(width)) {
        return Err(AccessError::Unaligned { addr, width });
    }
    // The checked invariants imply the access cannot straddle a word, and
    // therefore cannot straddle a line either.
    check_access(addr, width);
    Ok(())
}

/// Adapts a [`Cache`] plus its own backing into a [`Backing`] for an upper
/// cache level, enabling multi-level hierarchies.
///
/// Line transfers between levels go through the lower cache's demand path
/// at line granularity, so lower-level statistics and observers see them.
pub struct CacheLevel<'a> {
    /// The lower-level cache.
    pub cache: &'a mut Cache,
    /// Whatever backs the lower-level cache.
    pub lower: &'a mut dyn Backing,
    /// Observer for the lower-level cache's array activity.
    pub observer: &'a mut dyn ArrayObserver,
}

impl Backing for CacheLevel<'_> {
    fn load_line(&mut self, base: Address, buf: &mut [u64]) {
        // Ensure presence, then copy the whole line out of the lower array.
        let (loc, hit, _) = self.cache.ensure_line(base, self.lower, self.observer);
        self.cache.stats.record_read(hit);
        self.cache.sets[loc.set as usize].touch_hit(loc.way as usize);
        let line = self.cache.line_at(loc);
        let words = line.as_words();
        buf.copy_from_slice(words);
        for (i, &w) in words.iter().enumerate() {
            self.observer.word_read(loc, i, w);
        }
    }

    fn store_line(&mut self, base: Address, data: &[u64]) {
        let (loc, hit, _) = self.cache.ensure_line(base, self.lower, self.observer);
        self.cache.stats.record_write(hit);
        self.cache.sets[loc.set as usize].touch_hit(loc.way as usize);
        let line = self.cache.line_at_mut(loc);
        assert_eq!(data.len(), line.words(), "write size mismatch");
        for (i, &n) in data.iter().enumerate() {
            // write_word hands back the replaced word, so the observer
            // sees the old/new pair without a scratch copy of the line.
            let old = line.write_word(i, n);
            self.observer.word_written(loc, i, old, n);
        }
    }

    fn store_word(&mut self, addr: Address, value: u64) {
        self.cache
            .write(addr, 8, value, self.lower, self.observer)
            .expect("aligned word store through a cache level cannot fail");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MainMemory;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        let g = CacheGeometry::new(512, 64, 2).expect("valid geometry");
        Cache::new("t", g, ReplacementKind::Lru)
    }

    #[test]
    fn read_your_own_write() {
        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        cache
            .write(Address::new(0x40), 8, 0x1234, &mut mem, &mut ())
            .expect("write ok");
        let v = cache
            .read(Address::new(0x40), 8, &mut mem, &mut ())
            .expect("read ok");
        assert_eq!(v, 0x1234);
    }

    #[test]
    fn miss_then_hit_statistics() {
        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        cache
            .read(Address::new(0), 8, &mut mem, &mut ())
            .expect("ok");
        cache
            .read(Address::new(8), 8, &mut mem, &mut ())
            .expect("ok");
        let s = cache.stats();
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.fills, 1);
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        // Three lines mapping to set 0 in a 2-way cache: 0x000, 0x100, 0x200.
        cache
            .write(Address::new(0x000), 8, 0xAA, &mut mem, &mut ())
            .expect("ok");
        cache
            .read(Address::new(0x100), 8, &mut mem, &mut ())
            .expect("ok");
        let out = cache
            .read_outcome(Address::new(0x200), 8, &mut mem, &mut ())
            .expect("ok");
        assert_eq!(out.evicted, Some((Address::new(0x000), true)));
        assert_eq!(cache.stats().writebacks, 1);
        // The dirty value must have landed in memory.
        assert_eq!(mem.load(Address::new(0x000), 8), 0xAA);
        // And reading it again pulls it back correctly.
        let v = cache
            .read(Address::new(0x000), 8, &mut mem, &mut ())
            .expect("ok");
        assert_eq!(v, 0xAA);
    }

    #[test]
    fn clean_eviction_skips_writeback() {
        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        cache
            .read(Address::new(0x000), 8, &mut mem, &mut ())
            .expect("ok");
        cache
            .read(Address::new(0x100), 8, &mut mem, &mut ())
            .expect("ok");
        let out = cache
            .read_outcome(Address::new(0x200), 8, &mut mem, &mut ())
            .expect("ok");
        assert_eq!(out.evicted, Some((Address::new(0x000), false)));
        assert_eq!(cache.stats().writebacks, 0);
    }

    #[test]
    fn sub_word_write_merges() {
        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        mem.store(Address::new(0x40), 8, 0xFFFF_FFFF_FFFF_FFFF);
        cache
            .write(Address::new(0x42), 2, 0, &mut mem, &mut ())
            .expect("ok");
        let v = cache
            .read(Address::new(0x40), 8, &mut mem, &mut ())
            .expect("ok");
        assert_eq!(v, 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn narrow_reads_extract() {
        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        mem.store(Address::new(0x40), 8, 0x8877_6655_4433_2211);
        assert_eq!(
            cache
                .read(Address::new(0x41), 1, &mut mem, &mut ())
                .unwrap(),
            0x22
        );
        assert_eq!(
            cache
                .read(Address::new(0x44), 4, &mut mem, &mut ())
                .unwrap(),
            0x8877_6655
        );
    }

    #[test]
    fn rejects_bad_accesses() {
        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        assert!(matches!(
            cache.read(Address::new(1), 8, &mut mem, &mut ()),
            Err(AccessError::Unaligned { .. })
        ));
        assert!(matches!(
            cache.read(Address::new(0), 3, &mut mem, &mut ()),
            Err(AccessError::BadWidth { .. })
        ));
    }

    #[test]
    fn flush_writes_all_dirty_lines() {
        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        cache
            .write(Address::new(0x00), 8, 1, &mut mem, &mut ())
            .expect("ok");
        cache
            .write(Address::new(0x40), 8, 2, &mut mem, &mut ())
            .expect("ok");
        cache
            .read(Address::new(0x80), 8, &mut mem, &mut ())
            .expect("ok");
        let written = cache.flush(&mut mem, &mut ());
        assert_eq!(written, 2);
        assert_eq!(mem.load(Address::new(0x00), 8), 1);
        assert_eq!(mem.load(Address::new(0x40), 8), 2);
        // Flushed lines stay resident and clean; a second flush is a no-op.
        assert_eq!(cache.flush(&mut mem, &mut ()), 0);
    }

    #[test]
    fn next_line_prefetch_fills_ahead() {
        let g = CacheGeometry::new(4096, 64, 2).expect("valid");
        let mut cache =
            Cache::new("t", g, ReplacementKind::Lru).with_prefetch(PrefetchPolicy::NextLine);
        let mut mem = MainMemory::new();
        mem.store(Address::new(0x40), 8, 99);
        cache
            .read(Address::new(0x00), 8, &mut mem, &mut ())
            .expect("miss");
        assert_eq!(cache.stats().prefetch_fills, 1);
        assert!(
            cache.peek(Address::new(0x40)).is_some(),
            "next line resident"
        );
        // The subsequent sequential access hits thanks to the prefetch.
        let v = cache
            .read(Address::new(0x40), 8, &mut mem, &mut ())
            .expect("hit");
        assert_eq!(v, 99);
        assert_eq!(cache.stats().read_hits, 1);
        // Hitting again issues no further prefetch.
        cache
            .read(Address::new(0x40), 8, &mut mem, &mut ())
            .expect("hit");
        assert_eq!(cache.stats().prefetch_fills, 1);
    }

    #[test]
    fn prefetch_never_corrupts_the_demand_access() {
        // Demand line and its next line map to the same 1-way set in a
        // direct-mapped cache with a single set... use 1 set x 1 way so
        // the prefetch immediately evicts the demand line. The demand
        // value must still be correct.
        let g = CacheGeometry::new(64, 64, 1).expect("valid");
        let mut cache =
            Cache::new("t", g, ReplacementKind::Lru).with_prefetch(PrefetchPolicy::NextLine);
        let mut mem = MainMemory::new();
        mem.store(Address::new(0x00), 8, 7);
        let v = cache
            .read(Address::new(0x00), 8, &mut mem, &mut ())
            .expect("ok");
        assert_eq!(v, 7, "prefetch eviction must not affect the demand value");
        // The prefetched line displaced the demand line.
        assert!(cache.peek(Address::new(0x00)).is_none());
        assert!(cache.peek(Address::new(0x40)).is_some());
    }

    #[test]
    fn prefetch_preserves_dirty_data_through_conflicts() {
        let g = CacheGeometry::new(64, 64, 1).expect("valid");
        let mut cache =
            Cache::new("t", g, ReplacementKind::Lru).with_prefetch(PrefetchPolicy::NextLine);
        let mut mem = MainMemory::new();
        cache
            .write(Address::new(0x00), 8, 0xAB, &mut mem, &mut ())
            .expect("ok");
        // The write missed, the prefetch of 0x40 evicted the dirty line,
        // which must have been written back.
        assert_eq!(mem.load(Address::new(0x00), 8), 0xAB);
        assert_eq!(
            cache
                .read(Address::new(0x00), 8, &mut mem, &mut ())
                .expect("ok"),
            0xAB
        );
    }

    #[test]
    fn write_through_keeps_lines_clean_and_memory_fresh() {
        let g = CacheGeometry::new(512, 64, 2).expect("valid");
        let mut cache =
            Cache::new("t", g, ReplacementKind::Lru).with_write_mode(WriteMode::WriteThrough);
        let mut mem = MainMemory::new();
        cache
            .write(Address::new(0x40), 8, 0xAB, &mut mem, &mut ())
            .expect("ok");
        // Memory already has the value, no flush needed.
        assert_eq!(mem.load(Address::new(0x40), 8), 0xAB);
        assert_eq!(cache.stats().writethroughs, 1);
        // The resident line is clean: evicting it writes nothing back.
        let line = cache.peek(Address::new(0x40)).expect("resident");
        assert!(!line.is_dirty());
        assert_eq!(cache.flush(&mut mem, &mut ()), 0);
        // Sub-word write-through merges correctly.
        cache
            .write(Address::new(0x42), 2, 0xFFFF, &mut mem, &mut ())
            .expect("ok");
        assert_eq!(mem.load(Address::new(0x40), 8), 0xFFFF_00AB);
    }

    #[test]
    fn write_around_misses_bypass_the_array() {
        let g = CacheGeometry::new(512, 64, 2).expect("valid");
        let mut cache = Cache::new("t", g, ReplacementKind::Lru)
            .with_write_mode(WriteMode::WriteThroughNoAllocate);
        let mut mem = MainMemory::new();
        let out = cache
            .write_outcome(Address::new(0x40), 8, 7, &mut mem, &mut ())
            .expect("ok");
        assert!(!out.hit);
        assert_eq!(out.location, None, "write-around must not allocate");
        assert_eq!(mem.load(Address::new(0x40), 8), 7);
        assert!(cache.peek(Address::new(0x40)).is_none());
        assert_eq!(cache.stats().fills, 0);
        // A read allocates; subsequent write hits update the line in place.
        let v = cache
            .read(Address::new(0x40), 8, &mut mem, &mut ())
            .expect("ok");
        assert_eq!(v, 7);
        let out = cache
            .write_outcome(Address::new(0x40), 8, 9, &mut mem, &mut ())
            .expect("ok");
        assert!(out.hit);
        assert!(out.location.is_some());
        assert_eq!(mem.load(Address::new(0x40), 8), 9);
        assert_eq!(
            cache
                .read(Address::new(0x40), 8, &mut mem, &mut ())
                .expect("ok"),
            9
        );
    }

    #[test]
    fn write_around_sub_word_miss_merges_with_memory() {
        let g = CacheGeometry::new(512, 64, 2).expect("valid");
        let mut cache = Cache::new("t", g, ReplacementKind::Lru)
            .with_write_mode(WriteMode::WriteThroughNoAllocate);
        let mut mem = MainMemory::new();
        mem.store(Address::new(0x40), 8, 0x1111_2222_3333_4444);
        cache
            .write(Address::new(0x42), 2, 0xAAAA, &mut mem, &mut ())
            .expect("ok");
        assert_eq!(mem.load(Address::new(0x40), 8), 0x1111_2222_AAAA_4444);
    }

    #[test]
    fn observer_sees_array_activity() {
        #[derive(Default)]
        struct Counter {
            reads: usize,
            writes: usize,
            fills: usize,
            evictions: usize,
        }
        impl ArrayObserver for Counter {
            fn word_read(&mut self, _: LineLocation, _: usize, _: u64) {
                self.reads += 1;
            }
            fn word_written(&mut self, _: LineLocation, _: usize, _: u64, _: u64) {
                self.writes += 1;
            }
            fn line_filled(&mut self, _: LineLocation, _: Address, _: &[u64]) {
                self.fills += 1;
            }
            fn line_evicted(&mut self, _: LineLocation, _: Address, _: &[u64], _: bool) {
                self.evictions += 1;
            }
        }

        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        let mut obs = Counter::default();
        cache
            .write(Address::new(0x000), 8, 1, &mut mem, &mut obs)
            .expect("ok");
        cache
            .read(Address::new(0x100), 8, &mut mem, &mut obs)
            .expect("ok");
        cache
            .read(Address::new(0x200), 8, &mut mem, &mut obs)
            .expect("ok");
        assert_eq!(obs.fills, 3);
        assert_eq!(obs.writes, 1);
        assert_eq!(obs.reads, 2);
        assert_eq!(obs.evictions, 1);
    }

    #[test]
    fn peek_does_not_disturb() {
        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        assert!(cache.peek(Address::new(0)).is_none());
        cache
            .read(Address::new(0), 8, &mut mem, &mut ())
            .expect("ok");
        let before = cache.stats().clone();
        assert!(cache.peek(Address::new(0)).is_some());
        assert_eq!(cache.stats(), &before);
    }

    #[test]
    fn valid_lines_iterates_everything() {
        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        for i in 0..4u64 {
            cache
                .read(Address::new(i * 64), 8, &mut mem, &mut ())
                .expect("ok");
        }
        assert_eq!(cache.valid_lines().count(), 4);
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Run a workload, snapshot halfway, finish, then restore into a
        // fresh cache and replay the second half: stats and contents
        // must match the uninterrupted run exactly.
        let accesses: Vec<(u64, bool)> = (0..200)
            .map(|i: u64| {
                (
                    (i.wrapping_mul(0x61C8_8647) % 0x800) & !7,
                    i.is_multiple_of(3),
                )
            })
            .collect();
        let run = |cache: &mut Cache, mem: &mut MainMemory, slice: &[(u64, bool)]| {
            for &(addr, is_write) in slice {
                if is_write {
                    cache
                        .write(Address::new(addr), 8, addr ^ 0x55, mem, &mut ())
                        .unwrap();
                } else {
                    cache.read(Address::new(addr), 8, mem, &mut ()).unwrap();
                }
            }
        };
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::Random { seed: 7 },
            ReplacementKind::Srrip,
        ] {
            let g = CacheGeometry::new(512, 64, 2).expect("valid geometry");
            let mut full = Cache::new("t", g, kind);
            let mut full_mem = MainMemory::new();
            run(&mut full, &mut full_mem, &accesses[..100]);
            let cache_snap = full.snapshot();
            let mem_snap = full_mem.snapshot();
            run(&mut full, &mut full_mem, &accesses[100..]);

            let mut resumed = Cache::new("t", g, kind);
            resumed.restore(cache_snap).expect("same shape restores");
            let mut resumed_mem = MainMemory::from_snapshot(mem_snap).expect("valid");
            run(&mut resumed, &mut resumed_mem, &accesses[100..]);

            assert_eq!(resumed.stats(), full.stats(), "{kind}");
            assert_eq!(resumed.snapshot().lines, full.snapshot().lines, "{kind}");
            assert_eq!(resumed_mem.snapshot(), full_mem.snapshot(), "{kind}");
        }
    }

    #[test]
    fn restore_rejects_mismatched_shapes_untouched() {
        let mut cache = small_cache();
        let mut mem = MainMemory::new();
        cache.read(Address::new(0), 8, &mut mem, &mut ()).unwrap();
        let before = cache.snapshot();

        let other = Cache::new(
            "o",
            CacheGeometry::new(1024, 64, 4).expect("valid"),
            ReplacementKind::Lru,
        );
        assert!(cache.restore(other.snapshot()).is_err(), "wrong shape");

        // Same shape, wrong policy kind inside.
        let fifo = Cache::new(
            "f",
            CacheGeometry::new(512, 64, 2).expect("valid"),
            ReplacementKind::Fifo,
        );
        assert!(cache.restore(fifo.snapshot()).is_err(), "wrong policy");

        // Every rejection left the cache exactly as it was.
        assert_eq!(cache.snapshot().lines, before.lines);
        assert_eq!(cache.snapshot().stats, before.stats);
        assert_eq!(cache.snapshot().replacement, before.replacement);
    }

    #[test]
    fn two_level_read_through() {
        let g1 = CacheGeometry::new(256, 64, 2).expect("ok");
        let g2 = CacheGeometry::new(1024, 64, 4).expect("ok");
        let mut l1 = Cache::new("L1", g1, ReplacementKind::Lru);
        let mut l2 = Cache::new("L2", g2, ReplacementKind::Lru);
        let mut mem = MainMemory::new();
        mem.store(Address::new(0x40), 8, 777);

        let mut level2 = CacheLevel {
            cache: &mut l2,
            lower: &mut mem,
            observer: &mut (),
        };
        let v = l1
            .read(Address::new(0x40), 8, &mut level2, &mut ())
            .expect("ok");
        assert_eq!(v, 777);
        assert_eq!(l1.stats().read_misses, 1);
        assert_eq!(l2.stats().read_misses, 1);

        // A second L1 miss to a conflicting line hits in L2.
        let _ = l1
            .read(
                Address::new(0x140),
                8,
                &mut CacheLevel {
                    cache: &mut l2,
                    lower: &mut mem,
                    observer: &mut (),
                },
                &mut (),
            )
            .expect("ok");
        let v = l1
            .read(
                Address::new(0x40),
                8,
                &mut CacheLevel {
                    cache: &mut l2,
                    lower: &mut mem,
                    observer: &mut (),
                },
                &mut (),
            )
            .expect("ok");
        assert_eq!(v, 777);
    }

    #[test]
    fn write_through_l1_over_l2_routes_word_stores() {
        // A write-through L1 sends store_word() into the L2 level adapter,
        // which must route it through L2's own demand path.
        let g1 = CacheGeometry::new(128, 64, 1).expect("ok");
        let g2 = CacheGeometry::new(512, 64, 2).expect("ok");
        let mut l1 =
            Cache::new("L1", g1, ReplacementKind::Lru).with_write_mode(WriteMode::WriteThrough);
        let mut l2 = Cache::new("L2", g2, ReplacementKind::Lru);
        let mut mem = MainMemory::new();

        l1.write(
            Address::new(0x40),
            8,
            123,
            &mut CacheLevel {
                cache: &mut l2,
                lower: &mut mem,
                observer: &mut (),
            },
            &mut (),
        )
        .expect("ok");

        // The word reached L2 (dirty there, write-back L2) but not memory.
        assert_eq!(l1.stats().writethroughs, 1);
        assert!(l2.stats().writes() >= 1, "L2 saw the write-through");
        l2.flush(&mut mem, &mut ());
        assert_eq!(mem.load(Address::new(0x40), 8), 123);
        // And L1's copy stays clean and coherent.
        let v = l1
            .read(
                Address::new(0x40),
                8,
                &mut CacheLevel {
                    cache: &mut l2,
                    lower: &mut mem,
                    observer: &mut (),
                },
                &mut (),
            )
            .expect("ok");
        assert_eq!(v, 123);
        assert_eq!(
            l1.flush(
                &mut CacheLevel {
                    cache: &mut l2,
                    lower: &mut mem,
                    observer: &mut (),
                },
                &mut ()
            ),
            0,
            "write-through L1 has no dirty lines"
        );
    }

    #[test]
    fn two_level_writeback_lands_in_l2_then_memory() {
        let g1 = CacheGeometry::new(128, 64, 1).expect("ok"); // 2 sets, direct mapped
        let g2 = CacheGeometry::new(512, 64, 2).expect("ok");
        let mut l1 = Cache::new("L1", g1, ReplacementKind::Lru);
        let mut l2 = Cache::new("L2", g2, ReplacementKind::Lru);
        let mut mem = MainMemory::new();

        // Dirty line at 0x000, then conflict-evict it via 0x080 (same L1 set).
        l1.write(
            Address::new(0x000),
            8,
            42,
            &mut CacheLevel {
                cache: &mut l2,
                lower: &mut mem,
                observer: &mut (),
            },
            &mut (),
        )
        .expect("ok");
        l1.read(
            Address::new(0x080),
            8,
            &mut CacheLevel {
                cache: &mut l2,
                lower: &mut mem,
                observer: &mut (),
            },
            &mut (),
        )
        .expect("ok");

        // The dirty data now lives in L2 (write hit there), not yet memory.
        assert_eq!(l2.stats().write_hits + l2.stats().write_misses, 1);
        // Flush L2 to memory and verify.
        l2.flush(&mut mem, &mut ());
        assert_eq!(mem.load(Address::new(0x000), 8), 42);
    }
}

//! Data-carrying cache lines.

use serde::{Deserialize, Serialize};

/// One cache line: tag, state bits, and the actual stored words.
///
/// The simulator stores real data because the CNT-Cache energy model prices
/// individual bit values; a hit/miss-only model could not reproduce the
/// paper.
///
/// # Example
///
/// ```
/// use cnt_sim::CacheLine;
///
/// let mut line = CacheLine::new_invalid(8);
/// line.fill(0x42, &[1, 2, 3, 4, 5, 6, 7, 8]);
/// assert!(line.is_valid());
/// assert_eq!(line.read_word(2), 3);
/// let old = line.write_word(2, 0xFF);
/// assert_eq!(old, 3);
/// assert!(line.is_dirty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLine {
    tag: u64,
    valid: bool,
    dirty: bool,
    data: Box<[u64]>,
}

impl CacheLine {
    /// Creates an invalid line holding `words` zeroed 64-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn new_invalid(words: usize) -> Self {
        assert!(words > 0, "a cache line must hold at least one word");
        CacheLine {
            tag: 0,
            valid: false,
            dirty: false,
            data: vec![0; words].into_boxed_slice(),
        }
    }

    /// The stored tag. Only meaningful while [`is_valid`](Self::is_valid).
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// `true` if the line holds live data.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// `true` if the line has been written since it was filled.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Number of 64-bit words in the line.
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// The stored words.
    pub fn as_words(&self) -> &[u64] {
        &self.data
    }

    /// Mutable view of the stored words, bypassing the dirty flag.
    ///
    /// For modelling *physical* effects that are not architectural
    /// writes (fault injection, in-place re-encoding). Architectural
    /// stores must go through [`write_word`](Self::write_word) /
    /// [`write_all`](Self::write_all) so the line is marked dirty.
    pub fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Installs new contents, making the line valid and clean.
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different length than the line.
    pub fn fill(&mut self, tag: u64, data: &[u64]) {
        assert_eq!(data.len(), self.data.len(), "fill size mismatch");
        self.tag = tag;
        self.valid = true;
        self.dirty = false;
        self.data.copy_from_slice(data);
    }

    /// Invalidates the line, returning whether it was dirty.
    pub fn invalidate(&mut self) -> bool {
        let was_dirty = self.valid && self.dirty;
        self.valid = false;
        self.dirty = false;
        was_dirty
    }

    /// Reads one stored word.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of bounds or the line is invalid (debug only
    /// for validity).
    pub fn read_word(&self, word: usize) -> u64 {
        debug_assert!(self.valid, "reading an invalid line");
        self.data[word]
    }

    /// Writes one stored word, marking the line dirty; returns the old word.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of bounds or the line is invalid (debug only
    /// for validity).
    pub fn write_word(&mut self, word: usize, value: u64) -> u64 {
        debug_assert!(self.valid, "writing an invalid line");
        let old = self.data[word];
        self.data[word] = value;
        self.dirty = true;
        old
    }

    /// Overwrites the entire payload, marking the line dirty.
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different length than the line.
    pub fn write_all(&mut self, data: &[u64]) {
        assert_eq!(data.len(), self.data.len(), "write size mismatch");
        debug_assert!(self.valid, "writing an invalid line");
        self.data.copy_from_slice(data);
        self.dirty = true;
    }

    /// Marks the line clean (after a write-back).
    pub fn mark_clean(&mut self) {
        self.dirty = false;
    }

    /// Number of `1` bits in the stored payload.
    pub fn popcount(&self) -> u32 {
        self.data.iter().map(|w| w.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_line_is_invalid_and_clean() {
        let line = CacheLine::new_invalid(4);
        assert!(!line.is_valid());
        assert!(!line.is_dirty());
        assert_eq!(line.words(), 4);
        assert_eq!(line.popcount(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_word_line_panics() {
        CacheLine::new_invalid(0);
    }

    #[test]
    fn fill_makes_valid_and_clean() {
        let mut line = CacheLine::new_invalid(2);
        line.fill(7, &[0xFF, 0x1]);
        assert!(line.is_valid());
        assert!(!line.is_dirty());
        assert_eq!(line.tag(), 7);
        assert_eq!(line.as_words(), &[0xFF, 0x1]);
        assert_eq!(line.popcount(), 9);
    }

    #[test]
    fn write_marks_dirty_and_returns_old() {
        let mut line = CacheLine::new_invalid(2);
        line.fill(0, &[10, 20]);
        let old = line.write_word(1, 99);
        assert_eq!(old, 20);
        assert!(line.is_dirty());
        assert_eq!(line.read_word(1), 99);
        line.mark_clean();
        assert!(!line.is_dirty());
    }

    #[test]
    fn write_all_replaces_payload() {
        let mut line = CacheLine::new_invalid(3);
        line.fill(0, &[0, 0, 0]);
        line.write_all(&[1, 2, 3]);
        assert_eq!(line.as_words(), &[1, 2, 3]);
        assert!(line.is_dirty());
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut line = CacheLine::new_invalid(1);
        line.fill(0, &[1]);
        assert!(!line.invalidate(), "clean line");
        line.fill(0, &[1]);
        line.write_word(0, 2);
        assert!(line.invalidate(), "dirty line");
        assert!(!line.is_valid());
    }

    #[test]
    #[should_panic(expected = "fill size mismatch")]
    fn fill_size_mismatch_panics() {
        CacheLine::new_invalid(2).fill(0, &[1]);
    }
}

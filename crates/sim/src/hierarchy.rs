//! A split-L1 / optional-unified-L2 cache hierarchy.
//!
//! The hierarchy is a convenience wrapper used by examples and miss-rate
//! studies. The CNT-Cache energy experiments meter individual caches
//! directly (see the `cnt-cache` crate), so hierarchy traffic here is not
//! observed for energy.

use serde::{Deserialize, Serialize};

use crate::cache::{AccessError, Cache, CacheLevel};
use crate::config::CacheGeometry;
use crate::memory::MainMemory;
use crate::replacement::ReplacementKind;
use crate::stats::CacheStats;
use crate::trace::{AccessKind, MemoryAccess};

/// Geometry and policy for a [`CacheHierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 instruction-cache geometry.
    pub l1i: CacheGeometry,
    /// L1 data-cache geometry.
    pub l1d: CacheGeometry,
    /// Optional unified L2 geometry.
    pub l2: Option<CacheGeometry>,
    /// Replacement policy used at every level.
    pub replacement: ReplacementKind,
}

impl HierarchyConfig {
    /// A typical embedded configuration: 16 KiB L1I + 32 KiB L1D (both
    /// 64 B lines) over a 256 KiB 8-way L2, all LRU.
    ///
    /// # Panics
    ///
    /// Never panics; the constants are statically valid.
    pub fn typical() -> Self {
        HierarchyConfig {
            l1i: CacheGeometry::new(16 * 1024, 64, 4).expect("static geometry"),
            l1d: CacheGeometry::new(32 * 1024, 64, 8).expect("static geometry"),
            l2: Some(CacheGeometry::new(256 * 1024, 64, 8).expect("static geometry")),
            replacement: ReplacementKind::Lru,
        }
    }
}

/// Split L1I/L1D over an optional unified L2 over main memory.
///
/// # Example
///
/// ```
/// use cnt_sim::{CacheHierarchy, HierarchyConfig};
/// use cnt_sim::trace::MemoryAccess;
/// use cnt_sim::Address;
///
/// let mut h = CacheHierarchy::new(HierarchyConfig::typical());
/// h.access(&MemoryAccess::write(Address::new(0x1000), 8, 5))?;
/// let v = h.access(&MemoryAccess::read(Address::new(0x1000), 8))?;
/// assert_eq!(v, 5);
/// assert_eq!(h.l1d_stats().read_hits, 1);
/// # Ok::<(), cnt_sim::AccessError>(())
/// ```
#[derive(Debug)]
pub struct CacheHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Option<Cache>,
    memory: MainMemory,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy over zero-filled memory.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheHierarchy::with_memory(config, MainMemory::new())
    }

    /// Creates a hierarchy over pre-populated memory.
    pub fn with_memory(config: HierarchyConfig, memory: MainMemory) -> Self {
        CacheHierarchy {
            l1i: Cache::new("L1I", config.l1i, config.replacement),
            l1d: Cache::new("L1D", config.l1d, config.replacement),
            l2: config.l2.map(|g| Cache::new("L2", g, config.replacement)),
            memory,
        }
    }

    /// Performs one demand access, returning the loaded value (stores and
    /// instruction fetches return the value seen at the access site).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for malformed accesses.
    pub fn access(&mut self, access: &MemoryAccess) -> Result<u64, AccessError> {
        let (l1, is_write) = match access.kind {
            AccessKind::InstrFetch => (&mut self.l1i, false),
            AccessKind::Read => (&mut self.l1d, false),
            AccessKind::Write => (&mut self.l1d, true),
        };
        match &mut self.l2 {
            Some(l2) => {
                let mut level2 = CacheLevel {
                    cache: l2,
                    lower: &mut self.memory,
                    observer: &mut (),
                };
                if is_write {
                    l1.write(
                        access.addr,
                        access.width,
                        access.value,
                        &mut level2,
                        &mut (),
                    )?;
                    Ok(access.value)
                } else {
                    l1.read(access.addr, access.width, &mut level2, &mut ())
                }
            }
            None => {
                if is_write {
                    l1.write(
                        access.addr,
                        access.width,
                        access.value,
                        &mut self.memory,
                        &mut (),
                    )?;
                    Ok(access.value)
                } else {
                    l1.read(access.addr, access.width, &mut self.memory, &mut ())
                }
            }
        }
    }

    /// Runs a whole trace, returning the number of accesses performed.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first [`AccessError`].
    pub fn run<'a, I>(&mut self, trace: I) -> Result<usize, AccessError>
    where
        I: IntoIterator<Item = &'a MemoryAccess>,
    {
        let mut n = 0;
        for access in trace {
            self.access(access)?;
            n += 1;
        }
        Ok(n)
    }

    /// Writes all dirty lines at every level back to memory.
    pub fn flush_all(&mut self) {
        match &mut self.l2 {
            Some(l2) => {
                {
                    // Explicit reborrow so `l2` survives the scope.
                    let mut level2 = CacheLevel {
                        cache: &mut *l2,
                        lower: &mut self.memory,
                        observer: &mut (),
                    };
                    self.l1d.flush(&mut level2, &mut ());
                    self.l1i.flush(&mut level2, &mut ());
                }
                l2.flush(&mut self.memory, &mut ());
            }
            None => {
                self.l1d.flush(&mut self.memory, &mut ());
                self.l1i.flush(&mut self.memory, &mut ());
            }
        }
    }

    /// L1 instruction-cache statistics.
    pub fn l1i_stats(&self) -> &CacheStats {
        self.l1i.stats()
    }

    /// L1 data-cache statistics.
    pub fn l1d_stats(&self) -> &CacheStats {
        self.l1d.stats()
    }

    /// L2 statistics, if an L2 is configured.
    pub fn l2_stats(&self) -> Option<&CacheStats> {
        self.l2.as_ref().map(|c| c.stats())
    }

    /// Direct access to the backing memory (e.g. to verify results after
    /// [`flush_all`](Self::flush_all)).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;

    #[test]
    fn ifetch_routes_to_l1i() {
        let mut h = CacheHierarchy::new(HierarchyConfig::typical());
        h.access(&MemoryAccess::ifetch(Address::new(0x100)))
            .expect("ok");
        h.access(&MemoryAccess::ifetch(Address::new(0x100)))
            .expect("ok");
        assert_eq!(h.l1i_stats().accesses(), 2);
        assert_eq!(h.l1i_stats().read_hits, 1);
        assert_eq!(h.l1d_stats().accesses(), 0);
    }

    #[test]
    fn data_round_trip_through_two_levels() {
        let mut h = CacheHierarchy::new(HierarchyConfig::typical());
        h.access(&MemoryAccess::write(Address::new(0x2000), 8, 0xABC))
            .expect("ok");
        let v = h
            .access(&MemoryAccess::read(Address::new(0x2000), 8))
            .expect("ok");
        assert_eq!(v, 0xABC);
    }

    #[test]
    fn flush_propagates_to_memory() {
        let mut h = CacheHierarchy::new(HierarchyConfig::typical());
        h.access(&MemoryAccess::write(Address::new(0x3000), 8, 77))
            .expect("ok");
        h.flush_all();
        assert_eq!(h.memory_mut().load(Address::new(0x3000), 8), 77);
    }

    #[test]
    fn works_without_l2() {
        let mut config = HierarchyConfig::typical();
        config.l2 = None;
        let mut h = CacheHierarchy::new(config);
        h.access(&MemoryAccess::write(Address::new(0x40), 8, 5))
            .expect("ok");
        let v = h
            .access(&MemoryAccess::read(Address::new(0x40), 8))
            .expect("ok");
        assert_eq!(v, 5);
        assert!(h.l2_stats().is_none());
        h.flush_all();
        assert_eq!(h.memory_mut().load(Address::new(0x40), 8), 5);
    }

    #[test]
    fn run_executes_whole_trace() {
        let mut h = CacheHierarchy::new(HierarchyConfig::typical());
        let trace = [
            MemoryAccess::write(Address::new(0x0), 8, 1),
            MemoryAccess::read(Address::new(0x0), 8),
            MemoryAccess::ifetch(Address::new(0x1000)),
        ];
        let n = h.run(trace.iter()).expect("ok");
        assert_eq!(n, 3);
        assert_eq!(h.l1d_stats().accesses(), 2);
        assert_eq!(h.l1i_stats().accesses(), 1);
    }
}

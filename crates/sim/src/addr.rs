//! Byte addresses and their decomposition into cache coordinates.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A byte address in the simulated physical address space.
///
/// `Address` is a newtype over `u64` so byte addresses cannot be confused
/// with word indices, set indices, or tags.
///
/// # Example
///
/// ```
/// use cnt_sim::Address;
///
/// let a = Address::new(0x1000);
/// assert_eq!((a + 8).value(), 0x1008);
/// assert_eq!(format!("{a:#x}"), "0x1000");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte offset.
    pub const fn new(value: u64) -> Self {
        Address(value)
    }

    /// The raw byte offset.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Aligns the address down to a multiple of `alignment`.
    ///
    /// # Panics
    ///
    /// Panics if `alignment` is not a power of two.
    pub fn align_down(self, alignment: u64) -> Address {
        assert!(
            alignment.is_power_of_two(),
            "alignment must be a power of two"
        );
        Address(self.0 & !(alignment - 1))
    }

    /// Returns `true` if the address is a multiple of `alignment`.
    ///
    /// # Panics
    ///
    /// Panics if `alignment` is not a power of two.
    pub fn is_aligned(self, alignment: u64) -> bool {
        assert!(
            alignment.is_power_of_two(),
            "alignment must be a power of two"
        );
        self.0 & (alignment - 1) == 0
    }

    /// Offset within an `alignment`-sized block.
    ///
    /// # Panics
    ///
    /// Panics if `alignment` is not a power of two.
    pub fn offset_in(self, alignment: u64) -> u64 {
        assert!(
            alignment.is_power_of_two(),
            "alignment must be a power of two"
        );
        self.0 & (alignment - 1)
    }
}

impl From<u64> for Address {
    fn from(value: u64) -> Self {
        Address(value)
    }
}

impl From<Address> for u64 {
    fn from(addr: Address) -> u64 {
        addr.0
    }
}

impl Add<u64> for Address {
    type Output = Address;
    fn add(self, rhs: u64) -> Address {
        Address(self.0 + rhs)
    }
}

impl AddAssign<u64> for Address {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Address> for Address {
    type Output = u64;
    fn sub(self, rhs: Address) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// An address decomposed against a [`CacheGeometry`](crate::CacheGeometry):
/// tag, set index, and byte offset within the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddressParts {
    /// The tag bits (address above set index and offset).
    pub tag: u64,
    /// The set index.
    pub set: u64,
    /// The byte offset within the cache line.
    pub offset: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_helpers() {
        let a = Address::new(0x1234);
        assert_eq!(a.align_down(0x100).value(), 0x1200);
        assert_eq!(a.offset_in(0x100), 0x34);
        assert!(Address::new(0x400).is_aligned(0x400));
        assert!(!Address::new(0x401).is_aligned(2));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_down_rejects_non_power_of_two() {
        Address::new(0).align_down(3);
    }

    #[test]
    fn arithmetic() {
        let mut a = Address::new(10);
        a += 6;
        assert_eq!(a, Address::new(16));
        assert_eq!(a - Address::new(6), 10);
        assert_eq!((a + 4).value(), 20);
    }

    #[test]
    fn conversions_and_formatting() {
        let a: Address = 0xABCDu64.into();
        let v: u64 = a.into();
        assert_eq!(v, 0xABCD);
        assert_eq!(format!("{a}"), "0xabcd");
        assert_eq!(format!("{a:x}"), "abcd");
        assert_eq!(format!("{a:X}"), "ABCD");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Address::new(1) < Address::new(2));
        assert_eq!(Address::default(), Address::new(0));
    }
}

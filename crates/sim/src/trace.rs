//! Memory-access traces: the interchange format between the workload crate
//! and the cache layers.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::addr::Address;

/// Errors produced when parsing the text trace format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseTraceError {
    /// A line did not have the expected field count.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
        /// Number of whitespace-separated fields found.
        fields: usize,
    },
    /// The access kind letter was not `R`, `W`, or `I`.
    BadKind {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Which field (`"addr"`, `"width"`, `"value"`).
        field: &'static str,
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::BadFieldCount { line, fields } => {
                write!(
                    f,
                    "line {line}: expected `KIND ADDR WIDTH [VALUE]`, got {fields} fields"
                )
            }
            ParseTraceError::BadKind { line, token } => {
                write!(
                    f,
                    "line {line}: access kind must be R, W or I, got `{token}`"
                )
            }
            ParseTraceError::BadNumber { line, field, token } => {
                write!(f, "line {line}: cannot parse {field} from `{token}`")
            }
        }
    }
}

impl Error for ParseTraceError {}

/// The kind of one demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// An instruction fetch (routed to the I-cache by a hierarchy).
    InstrFetch,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("R"),
            AccessKind::Write => f.write_str("W"),
            AccessKind::InstrFetch => f.write_str("I"),
        }
    }
}

/// One demand access with its data payload.
///
/// Writes carry the stored value because the CNT-Cache energy model prices
/// the actual bits; reads carry no value (the simulator supplies it from
/// its own state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// The access kind.
    pub kind: AccessKind,
    /// Target byte address (naturally aligned to `width`).
    pub addr: Address,
    /// Access width in bytes (1, 2, 4 or 8).
    pub width: u8,
    /// For writes, the stored value (low `width * 8` bits significant).
    pub value: u64,
}

impl MemoryAccess {
    /// A data load.
    pub fn read(addr: Address, width: u8) -> Self {
        MemoryAccess {
            kind: AccessKind::Read,
            addr,
            width,
            value: 0,
        }
    }

    /// A data store of `value`.
    pub fn write(addr: Address, width: u8, value: u64) -> Self {
        MemoryAccess {
            kind: AccessKind::Write,
            addr,
            width,
            value,
        }
    }

    /// An instruction fetch (modeled as an 8-byte read).
    pub fn ifetch(addr: Address) -> Self {
        MemoryAccess {
            kind: AccessKind::InstrFetch,
            addr,
            width: 8,
            value: 0,
        }
    }

    /// `true` if this access writes.
    pub fn is_write(&self) -> bool {
        self.kind == AccessKind::Write
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AccessKind::Write => write!(f, "W{} {} = {:#x}", self.width, self.addr, self.value),
            k => write!(f, "{k}{} {}", self.width, self.addr),
        }
    }
}

/// An ordered sequence of accesses plus summary helpers.
///
/// # Example
///
/// ```
/// use cnt_sim::trace::{MemoryAccess, Trace};
/// use cnt_sim::Address;
///
/// let mut trace = Trace::new();
/// trace.push(MemoryAccess::write(Address::new(0x10), 8, 7));
/// trace.push(MemoryAccess::read(Address::new(0x10), 8));
/// assert_eq!(trace.len(), 2);
/// assert!((trace.write_fraction() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    accesses: Vec<MemoryAccess>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one access.
    pub fn push(&mut self, access: MemoryAccess) {
        self.accesses.push(access);
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// `true` if the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Iterates over the accesses in order.
    pub fn iter(&self) -> std::slice::Iter<'_, MemoryAccess> {
        self.accesses.iter()
    }

    /// The accesses as a slice.
    pub fn as_slice(&self) -> &[MemoryAccess] {
        &self.accesses
    }

    /// Fraction of accesses that are writes (`NaN` if empty).
    pub fn write_fraction(&self) -> f64 {
        let writes = self.accesses.iter().filter(|a| a.is_write()).count();
        writes as f64 / self.accesses.len() as f64
    }

    /// Number of distinct 64-byte-aligned blocks touched.
    pub fn footprint_blocks(&self) -> usize {
        let blocks: BTreeSet<u64> = self
            .accesses
            .iter()
            .map(|a| a.addr.align_down(64).value())
            .collect();
        blocks.len()
    }

    /// Serializes to the line-oriented text format:
    /// `KIND ADDR WIDTH [VALUE]` per access, hex addresses/values,
    /// `#`-prefixed comment lines. The Dinero-style interchange format
    /// for feeding external traces into the simulator.
    ///
    /// # Example
    ///
    /// ```
    /// use cnt_sim::trace::{MemoryAccess, Trace};
    /// use cnt_sim::Address;
    ///
    /// let mut trace = Trace::new();
    /// trace.push(MemoryAccess::write(Address::new(0x40), 8, 0xFF));
    /// trace.push(MemoryAccess::read(Address::new(0x40), 4));
    /// let text = trace.to_text();
    /// let back: Trace = text.parse()?;
    /// assert_eq!(back, trace);
    /// # Ok::<(), cnt_sim::trace::ParseTraceError>(())
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.accesses.len() * 24);
        out.push_str("# KIND ADDR WIDTH [VALUE]\n");
        for a in &self.accesses {
            match a.kind {
                AccessKind::Write => {
                    out.push_str(&format!("W {:#x} {} {:#x}\n", a.addr, a.width, a.value));
                }
                AccessKind::Read => {
                    out.push_str(&format!("R {:#x} {}\n", a.addr, a.width));
                }
                AccessKind::InstrFetch => {
                    out.push_str(&format!("I {:#x} {}\n", a.addr, a.width));
                }
            }
        }
        out
    }
}

fn parse_u64(token: &str, line: usize, field: &'static str) -> Result<u64, ParseTraceError> {
    let digits = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"));
    let result = match digits {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => token.parse(),
    };
    result.map_err(|_| ParseTraceError::BadNumber {
        line,
        field,
        token: token.to_string(),
    })
}

impl FromStr for Trace {
    type Err = ParseTraceError;

    /// Parses the text format produced by [`Trace::to_text`]: one access
    /// per line, blank lines and `#` comments ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut trace = Trace::new();
        for (index, raw) in s.lines().enumerate() {
            let line = index + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let fields: Vec<&str> = content.split_whitespace().collect();
            if !(2..=4).contains(&fields.len()) {
                return Err(ParseTraceError::BadFieldCount {
                    line,
                    fields: fields.len(),
                });
            }
            let addr = Address::new(parse_u64(fields[1], line, "addr")?);
            let width = if fields.len() >= 3 {
                parse_u64(fields[2], line, "width")? as u8
            } else {
                8
            };
            match fields[0] {
                "R" | "r" => trace.push(MemoryAccess::read(addr, width)),
                "I" | "i" => trace.push(MemoryAccess {
                    kind: AccessKind::InstrFetch,
                    addr,
                    width,
                    value: 0,
                }),
                "W" | "w" => {
                    let value = if fields.len() == 4 {
                        parse_u64(fields[3], line, "value")?
                    } else {
                        0
                    };
                    trace.push(MemoryAccess::write(addr, width, value));
                }
                other => {
                    return Err(ParseTraceError::BadKind {
                        line,
                        token: other.to_string(),
                    })
                }
            }
        }
        Ok(trace)
    }
}

/// A struct-of-arrays batch of accesses: kinds, addresses, widths, and
/// write values live in separate contiguous buffers.
///
/// The replay hot path streams through these columns without the
/// pointer-chasing and per-record padding of a `Vec<MemoryAccess>`;
/// trace decoders append into a reused batch without allocating per
/// record. Values are dense (reads hold `0`), so every column is indexed
/// by the same record number.
///
/// # Example
///
/// ```
/// use cnt_sim::trace::{AccessBatch, MemoryAccess};
/// use cnt_sim::Address;
///
/// let mut batch = AccessBatch::new();
/// batch.push(MemoryAccess::write(Address::new(0x40), 8, 7));
/// batch.push(MemoryAccess::read(Address::new(0x40), 8));
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.get(0), MemoryAccess::write(Address::new(0x40), 8, 7));
/// assert_eq!(batch.write_value(1), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessBatch {
    kinds: Vec<AccessKind>,
    addrs: Vec<u64>,
    widths: Vec<u8>,
    values: Vec<u64>,
}

impl AccessBatch {
    /// An empty batch.
    pub fn new() -> Self {
        AccessBatch::default()
    }

    /// An empty batch with room for `capacity` records in every column.
    pub fn with_capacity(capacity: usize) -> Self {
        AccessBatch {
            kinds: Vec::with_capacity(capacity),
            addrs: Vec::with_capacity(capacity),
            widths: Vec::with_capacity(capacity),
            values: Vec::with_capacity(capacity),
        }
    }

    /// Columnar copy of a whole trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut batch = AccessBatch::with_capacity(trace.len());
        for access in trace {
            batch.push(*access);
        }
        batch
    }

    /// Records in the batch.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` if the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Drops all records, keeping the column buffers for reuse.
    pub fn clear(&mut self) {
        self.kinds.clear();
        self.addrs.clear();
        self.widths.clear();
        self.values.clear();
    }

    /// Reserves room for `additional` more records in every column.
    pub fn reserve(&mut self, additional: usize) {
        self.kinds.reserve(additional);
        self.addrs.reserve(additional);
        self.widths.reserve(additional);
        self.values.reserve(additional);
    }

    /// Appends one access.
    pub fn push(&mut self, access: MemoryAccess) {
        self.push_parts(access.kind, access.addr, access.width, access.value);
    }

    /// Appends one access from its columns.
    pub fn push_parts(&mut self, kind: AccessKind, addr: Address, width: u8, value: u64) {
        self.kinds.push(kind);
        self.addrs.push(addr.value());
        self.widths.push(width);
        self.values.push(value);
    }

    /// The kind column.
    pub fn kinds(&self) -> &[AccessKind] {
        &self.kinds
    }

    /// The address column (raw byte addresses).
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The width column.
    pub fn widths(&self) -> &[u8] {
        &self.widths
    }

    /// The value column (dense; reads hold `0`).
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Kind of record `i`.
    pub fn kind(&self, i: usize) -> AccessKind {
        self.kinds[i]
    }

    /// Address of record `i`.
    pub fn addr(&self, i: usize) -> Address {
        Address::new(self.addrs[i])
    }

    /// Width of record `i`.
    pub fn width(&self, i: usize) -> u8 {
        self.widths[i]
    }

    /// `Some(value)` if record `i` writes, `None` otherwise — the shape
    /// the demand path consumes directly.
    pub fn write_value(&self, i: usize) -> Option<u64> {
        if self.kinds[i] == AccessKind::Write {
            Some(self.values[i])
        } else {
            None
        }
    }

    /// Materializes record `i` (a cheap all-register construction).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> MemoryAccess {
        MemoryAccess {
            kind: self.kinds[i],
            addr: Address::new(self.addrs[i]),
            width: self.widths[i],
            value: self.values[i],
        }
    }

    /// Iterates the records in order, materializing each on the fly.
    pub fn iter(&self) -> impl Iterator<Item = MemoryAccess> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Rebuilds the array-of-structs form.
    pub fn to_trace(&self) -> Trace {
        self.iter().collect()
    }
}

impl FromIterator<MemoryAccess> for AccessBatch {
    fn from_iter<I: IntoIterator<Item = MemoryAccess>>(iter: I) -> Self {
        let mut batch = AccessBatch::new();
        for access in iter {
            batch.push(access);
        }
        batch
    }
}

impl From<&Trace> for AccessBatch {
    fn from(trace: &Trace) -> Self {
        AccessBatch::from_trace(trace)
    }
}

impl FromIterator<MemoryAccess> for Trace {
    fn from_iter<I: IntoIterator<Item = MemoryAccess>>(iter: I) -> Self {
        Trace {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<MemoryAccess> for Trace {
    fn extend<I: IntoIterator<Item = MemoryAccess>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = MemoryAccess;
    type IntoIter = std::vec::IntoIter<MemoryAccess>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemoryAccess;
    type IntoIter = std::slice::Iter<'a, MemoryAccess>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let r = MemoryAccess::read(Address::new(8), 4);
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.is_write());
        let w = MemoryAccess::write(Address::new(8), 4, 9);
        assert!(w.is_write());
        assert_eq!(w.value, 9);
        let i = MemoryAccess::ifetch(Address::new(0x40));
        assert_eq!(i.kind, AccessKind::InstrFetch);
        assert_eq!(i.width, 8);
    }

    #[test]
    fn trace_metrics() {
        let trace: Trace = [
            MemoryAccess::read(Address::new(0), 8),
            MemoryAccess::write(Address::new(64), 8, 1),
            MemoryAccess::read(Address::new(65 * 64), 8),
            MemoryAccess::read(Address::new(64 + 8), 8),
        ]
        .into_iter()
        .collect();
        assert_eq!(trace.len(), 4);
        assert!((trace.write_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(trace.footprint_blocks(), 3);
    }

    #[test]
    fn extend_and_iterate() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        trace.extend([MemoryAccess::read(Address::new(0), 8)]);
        assert_eq!(trace.iter().count(), 1);
        assert_eq!((&trace).into_iter().count(), 1);
        assert_eq!(trace.clone().into_iter().count(), 1);
        assert_eq!(trace.as_slice().len(), 1);
    }

    #[test]
    fn display_formats() {
        let w = MemoryAccess::write(Address::new(0x10), 8, 0xFF);
        assert_eq!(w.to_string(), "W8 0x10 = 0xff");
        let r = MemoryAccess::read(Address::new(0x20), 4);
        assert_eq!(r.to_string(), "R4 0x20");
    }

    #[test]
    fn text_format_round_trips() {
        let trace: Trace = [
            MemoryAccess::write(Address::new(0x40), 8, 0xDEAD_BEEF),
            MemoryAccess::read(Address::new(0x48), 4),
            MemoryAccess::ifetch(Address::new(0x1000)),
            MemoryAccess::write(Address::new(0x50), 1, 0xFF),
        ]
        .into_iter()
        .collect();
        let text = trace.to_text();
        let back: Trace = text.parse().expect("round trip");
        assert_eq!(back, trace);
    }

    #[test]
    fn text_parser_accepts_comments_and_flexible_forms() {
        let text = "# header\n\nR 0x100 8 # trailing comment\nw 256 4 42\nI 0x40\n";
        let trace: Trace = text.parse().expect("valid");
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.as_slice()[0].addr, Address::new(0x100));
        assert_eq!(trace.as_slice()[1].value, 42);
        assert_eq!(trace.as_slice()[1].addr, Address::new(256));
        assert_eq!(trace.as_slice()[2].width, 8, "width defaults to 8");
    }

    #[test]
    fn text_parser_reports_errors_with_line_numbers() {
        let err = "R 0x10 8\nX 0x20 8\n".parse::<Trace>().unwrap_err();
        assert!(
            matches!(err, ParseTraceError::BadKind { line: 2, .. }),
            "{err}"
        );
        let err = "R zzz 8\n".parse::<Trace>().unwrap_err();
        assert!(matches!(
            err,
            ParseTraceError::BadNumber {
                line: 1,
                field: "addr",
                ..
            }
        ));
        let err = "R\n".parse::<Trace>().unwrap_err();
        assert!(matches!(
            err,
            ParseTraceError::BadFieldCount { line: 1, fields: 1 }
        ));
        let err = "W 0x10 8 1 extra\n".parse::<Trace>().unwrap_err();
        assert!(matches!(err, ParseTraceError::BadFieldCount { .. }));
    }

    #[test]
    fn batch_round_trips_and_exposes_columns() {
        let trace: Trace = [
            MemoryAccess::read(Address::new(0x100), 8),
            MemoryAccess::write(Address::new(0x108), 4, 0xAB),
            MemoryAccess::ifetch(Address::new(0x40)),
        ]
        .into_iter()
        .collect();
        let batch = AccessBatch::from_trace(&trace);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch.to_trace(), trace);
        for (i, access) in trace.iter().enumerate() {
            assert_eq!(batch.get(i), *access);
            assert_eq!(batch.kind(i), access.kind);
            assert_eq!(batch.addr(i), access.addr);
            assert_eq!(batch.width(i), access.width);
        }
        assert_eq!(batch.write_value(0), None);
        assert_eq!(batch.write_value(1), Some(0xAB));
        assert_eq!(batch.write_value(2), None);
        assert_eq!(batch.addrs(), &[0x100, 0x108, 0x40]);
        assert_eq!(batch.widths(), &[8, 4, 8]);
        assert_eq!(batch.values(), &[0, 0xAB, 0]);
        assert_eq!(batch.kinds().len(), 3);
        assert_eq!(batch.iter().collect::<Vec<_>>(), trace.as_slice());

        let collected: AccessBatch = trace.iter().copied().collect();
        assert_eq!(collected, batch);
        assert_eq!(AccessBatch::from(&trace), batch);
    }

    #[test]
    fn batch_clear_keeps_capacity() {
        let mut batch = AccessBatch::with_capacity(16);
        batch.reserve(8);
        batch.push(MemoryAccess::read(Address::new(0), 8));
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(AccessBatch::new().len(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let trace: Trace = [
            MemoryAccess::write(Address::new(0x8), 8, 42),
            MemoryAccess::ifetch(Address::new(0x100)),
        ]
        .into_iter()
        .collect();
        let json = serde_json::to_string(&trace).expect("serialize");
        let back: Trace = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(trace, back);
    }
}

//! One associative set: lines plus replacement state.

use std::fmt;

use crate::line::CacheLine;
use crate::replacement::{ReplacementKind, ReplacementState, SetReplacement};

/// A set of `ways` cache lines sharing one replacement-policy instance.
pub struct CacheSet {
    lines: Vec<CacheLine>,
    policy: Box<dyn SetReplacement>,
}

impl CacheSet {
    /// Creates a set with `ways` invalid lines of `words` words each.
    ///
    /// # Panics
    ///
    /// Panics if `ways` or `words` is zero, or if the policy rejects the
    /// way count (see [`ReplacementKind::build`]).
    pub fn new(ways: usize, words: usize, kind: ReplacementKind, set_index: u64) -> Self {
        assert!(ways > 0, "a set needs at least one way");
        // Derive a distinct RNG stream per set for the random policy so
        // every set does not evict the same way sequence.
        let kind = match kind {
            ReplacementKind::Random { seed } => ReplacementKind::Random {
                seed: seed ^ set_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            },
            other => other,
        };
        CacheSet {
            lines: (0..ways).map(|_| CacheLine::new_invalid(words)).collect(),
            policy: kind.build(ways),
        }
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.lines.len()
    }

    /// Finds the way holding `tag`, if present and valid.
    pub fn find(&self, tag: u64) -> Option<usize> {
        self.lines
            .iter()
            .position(|l| l.is_valid() && l.tag() == tag)
    }

    /// Returns the way to fill next: an invalid way if one exists,
    /// otherwise the policy's victim.
    pub fn fill_target(&mut self) -> usize {
        if let Some(way) = self.lines.iter().position(|l| !l.is_valid()) {
            way
        } else {
            let way = self.policy.victim();
            debug_assert!(way < self.lines.len(), "policy victim out of range");
            way
        }
    }

    /// Immutable access to one way's line.
    pub fn line(&self, way: usize) -> &CacheLine {
        &self.lines[way]
    }

    /// Mutable access to one way's line.
    pub fn line_mut(&mut self, way: usize) -> &mut CacheLine {
        &mut self.lines[way]
    }

    /// Notifies the replacement policy of a hit on `way`.
    pub fn touch_hit(&mut self, way: usize) {
        self.policy.on_hit(way);
    }

    /// Notifies the replacement policy of a fill into `way`.
    pub fn touch_fill(&mut self, way: usize) {
        self.policy.on_fill(way);
    }

    /// Iterates over `(way, line)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CacheLine)> {
        self.lines.iter().enumerate()
    }

    /// Captures this set's replacement-policy state for checkpointing.
    pub fn replacement_state(&self) -> ReplacementState {
        self.policy.save_state()
    }

    /// Restores replacement-policy state captured with
    /// [`replacement_state`](Self::replacement_state). Fails (leaving the
    /// current state untouched) on a kind or shape mismatch.
    pub fn load_replacement_state(&mut self, state: ReplacementState) -> Result<(), String> {
        self.policy.load_state(state)
    }
}

impl fmt::Debug for CacheSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheSet")
            .field("ways", &self.lines.len())
            .field("valid", &self.lines.iter().filter(|l| l.is_valid()).count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> CacheSet {
        CacheSet::new(2, 4, ReplacementKind::Lru, 0)
    }

    #[test]
    fn find_only_matches_valid_lines() {
        let mut s = set();
        assert_eq!(s.find(0), None, "invalid lines must not match tag 0");
        s.line_mut(0).fill(7, &[1, 2, 3, 4]);
        assert_eq!(s.find(7), Some(0));
        assert_eq!(s.find(8), None);
    }

    #[test]
    fn fill_target_prefers_invalid_ways() {
        let mut s = set();
        s.line_mut(0).fill(1, &[0; 4]);
        assert_eq!(s.fill_target(), 1, "way 1 is still invalid");
        s.line_mut(1).fill(2, &[0; 4]);
        s.touch_fill(0);
        s.touch_fill(1);
        s.touch_hit(0);
        assert_eq!(s.fill_target(), 1, "LRU victim once full");
    }

    #[test]
    fn per_set_random_streams_differ() {
        let mut a = CacheSet::new(4, 1, ReplacementKind::Random { seed: 9 }, 0);
        let mut b = CacheSet::new(4, 1, ReplacementKind::Random { seed: 9 }, 1);
        for way in 0..4 {
            a.line_mut(way).fill(way as u64, &[0]);
            b.line_mut(way).fill(way as u64, &[0]);
        }
        let seq_a: Vec<usize> = (0..32).map(|_| a.fill_target()).collect();
        let seq_b: Vec<usize> = (0..32).map(|_| b.fill_target()).collect();
        assert_ne!(seq_a, seq_b, "sets should have independent streams");
    }

    #[test]
    fn debug_is_nonempty() {
        let s = set();
        assert!(format!("{s:?}").contains("CacheSet"));
    }
}

//! Property-based tests: the cache must be a transparent layer over memory.

use cnt_sim::{Address, Cache, CacheGeometry, MainMemory, ReplacementKind, WriteMode};
use proptest::prelude::*;
use std::collections::HashMap;

/// A miniature operation language over a small address range so sets
/// conflict often.
#[derive(Debug, Clone)]
enum Op {
    Read { addr: u64, width: u8 },
    Write { addr: u64, width: u8, value: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let width = prop::sample::select(vec![1u8, 2, 4, 8]);
    (0u64..4096, width, any::<u64>(), any::<bool>()).prop_map(|(raw, width, value, is_write)| {
        let addr = raw & !(u64::from(width) - 1); // naturally align
        if is_write {
            Op::Write { addr, width, value }
        } else {
            Op::Read { addr, width }
        }
    })
}

fn arb_kind() -> impl Strategy<Value = ReplacementKind> {
    prop::sample::select(vec![
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::Random { seed: 7 },
        ReplacementKind::TreePlru,
        ReplacementKind::Srrip,
    ])
}

fn arb_write_mode() -> impl Strategy<Value = WriteMode> {
    prop::sample::select(vec![
        WriteMode::WriteBack,
        WriteMode::WriteThrough,
        WriteMode::WriteThroughNoAllocate,
    ])
}

fn width_mask(width: u8) -> u64 {
    match width {
        8 => u64::MAX,
        w => (1u64 << (u64::from(w) * 8)) - 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Against a byte-granular reference model, the cache must always
    /// return exactly what was last written, for every replacement policy.
    #[test]
    fn cache_matches_reference_model(
        ops in prop::collection::vec(arb_op(), 1..400),
        kind in arb_kind(),
        mode in arb_write_mode(),
    ) {
        let geometry = CacheGeometry::new(1024, 64, 2).expect("valid"); // tiny: lots of evictions
        let mut cache = Cache::new("t", geometry, kind).with_write_mode(mode);
        let mut mem = MainMemory::new();
        let mut reference: HashMap<u64, u8> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Write { addr, width, value } => {
                    cache.write(Address::new(addr), width, value, &mut mem, &mut ()).expect("write");
                    for i in 0..u64::from(width) {
                        reference.insert(addr + i, (value >> (8 * i)) as u8);
                    }
                }
                Op::Read { addr, width } => {
                    let got = cache.read(Address::new(addr), width, &mut mem, &mut ()).expect("read");
                    let mut expect = 0u64;
                    for i in (0..u64::from(width)).rev() {
                        expect = (expect << 8) | u64::from(*reference.get(&(addr + i)).unwrap_or(&0));
                    }
                    prop_assert_eq!(got, expect & width_mask(width), "read at {:#x} width {}", addr, width);
                }
            }
        }

        // After a flush, memory itself must agree with the reference model.
        cache.flush(&mut mem, &mut ());
        for (&addr, &byte) in &reference {
            let got = mem.load(Address::new(addr), 1) as u8;
            prop_assert_eq!(got, byte, "memory divergence at {:#x}", addr);
        }
    }

    /// Statistics bookkeeping invariants hold on any workload.
    #[test]
    fn stats_invariants(ops in prop::collection::vec(arb_op(), 1..300)) {
        let geometry = CacheGeometry::new(512, 64, 2).expect("valid");
        let mut cache = Cache::new("t", geometry, ReplacementKind::Lru);
        let mut mem = MainMemory::new();
        let mut reads = 0u64;
        let mut writes = 0u64;
        for op in &ops {
            match *op {
                Op::Write { addr, width, value } => {
                    cache.write(Address::new(addr), width, value, &mut mem, &mut ()).expect("write");
                    writes += 1;
                }
                Op::Read { addr, width } => {
                    cache.read(Address::new(addr), width, &mut mem, &mut ()).expect("read");
                    reads += 1;
                }
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.reads(), reads);
        prop_assert_eq!(s.writes(), writes);
        prop_assert_eq!(s.fills, s.misses());
        prop_assert!(s.writebacks <= s.evictions);
        prop_assert!(s.evictions <= s.fills);
        let resident = cache.valid_lines().count() as u64;
        prop_assert!(resident <= geometry.num_lines());
        prop_assert_eq!(s.fills - s.evictions, resident);
    }

    /// Write-through modes never leave dirty lines and write through on
    /// every store.
    #[test]
    fn write_through_invariants(
        ops in prop::collection::vec(arb_op(), 1..300),
        no_allocate in any::<bool>(),
    ) {
        let mode = if no_allocate {
            WriteMode::WriteThroughNoAllocate
        } else {
            WriteMode::WriteThrough
        };
        let geometry = CacheGeometry::new(1024, 64, 2).expect("valid");
        let mut cache = Cache::new("t", geometry, ReplacementKind::Lru).with_write_mode(mode);
        let mut mem = MainMemory::new();
        let mut writes = 0u64;
        for op in &ops {
            match *op {
                Op::Write { addr, width, value } => {
                    cache.write(Address::new(addr), width, value, &mut mem, &mut ()).expect("write");
                    writes += 1;
                }
                Op::Read { addr, width } => {
                    cache.read(Address::new(addr), width, &mut mem, &mut ()).expect("read");
                }
            }
        }
        prop_assert_eq!(cache.stats().writethroughs, writes);
        prop_assert_eq!(cache.stats().writebacks, 0, "write-through lines are never dirty");
        prop_assert_eq!(cache.flush(&mut mem, &mut ()), 0);
        for (_, line) in cache.valid_lines() {
            prop_assert!(!line.is_dirty());
        }
    }

    /// The text trace format round-trips arbitrary traces.
    #[test]
    fn trace_text_round_trips(ops in prop::collection::vec(arb_op(), 0..200)) {
        use cnt_sim::trace::{MemoryAccess, Trace};
        let trace: Trace = ops
            .iter()
            .map(|op| match *op {
                Op::Read { addr, width } => MemoryAccess::read(Address::new(addr), width),
                Op::Write { addr, width, value } => {
                    // Values are masked to the width on the wire.
                    MemoryAccess::write(Address::new(addr), width, value & width_mask(width))
                }
            })
            .collect();
        let text = trace.to_text();
        let back: Trace = text.parse().expect("parseable");
        prop_assert_eq!(back, trace);
    }

    /// Geometry split/line_base round-trips for arbitrary shapes.
    #[test]
    fn geometry_round_trip(
        size_pow in 9u32..20,
        line_pow in 3u32..8,
        assoc_pow in 0u32..4,
        addr in any::<u64>(),
    ) {
        let size = 1u64 << size_pow;
        let line = 1u32 << line_pow;
        let assoc = 1u32 << assoc_pow;
        prop_assume!(size >= u64::from(line) * u64::from(assoc));
        let g = CacheGeometry::new(size, line, assoc).expect("valid by construction");
        let addr = addr >> 8; // keep tags in range
        let parts = g.split(Address::new(addr));
        let base = g.line_base(parts.tag, parts.set);
        prop_assert_eq!(base.value() + parts.offset, addr);
        prop_assert!(parts.set < g.num_sets());
    }
}

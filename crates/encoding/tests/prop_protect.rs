//! Property-based tests for direction-metadata protection.

use cnt_encoding::{DirectionBits, ProtectedDirectionBits, ProtectionMode, ProtectionVerdict};
use proptest::prelude::*;

fn arb_partitions() -> impl Strategy<Value = u32> {
    prop::sample::select(vec![1u32, 2, 4, 8, 16, 32, 64])
}

fn clamp(mask: u64, partitions: u32) -> u64 {
    if partitions == 64 {
        mask
    } else {
        mask & ((1 << partitions) - 1)
    }
}

proptest! {
    /// For any direction vector and any single direction-bit upset,
    /// `Parity` detects and `Secded` corrects back to the original.
    #[test]
    fn single_upset_parity_detects_secded_corrects(
        mask in any::<u64>(),
        partitions in arb_partitions(),
        bit in any::<u32>(),
    ) {
        let mask = clamp(mask, partitions);
        let bit = bit % partitions;
        let reference = DirectionBits::from_mask(mask, partitions);

        let mut parity = ProtectedDirectionBits::new(reference, ProtectionMode::Parity);
        parity.upset_direction(bit);
        prop_assert_eq!(parity.verify_and_repair(), ProtectionVerdict::Uncorrectable);

        let mut secded = ProtectedDirectionBits::new(reference, ProtectionMode::Secded);
        secded.upset_direction(bit);
        prop_assert_eq!(secded.verify_and_repair(), ProtectionVerdict::CorrectedData(bit));
        prop_assert_eq!(*secded.bits(), reference);
        prop_assert_eq!(secded.verify_and_repair(), ProtectionVerdict::Clean);
    }

    /// A single upset anywhere in the *check* word is corrected by
    /// SECDED and detected by parity, without disturbing the vector.
    #[test]
    fn check_bit_upsets_never_corrupt_the_vector(
        mask in any::<u64>(),
        partitions in arb_partitions(),
        bit in any::<u32>(),
    ) {
        let mask = clamp(mask, partitions);
        let reference = DirectionBits::from_mask(mask, partitions);

        let mut parity = ProtectedDirectionBits::new(reference, ProtectionMode::Parity);
        parity.upset_check(0);
        prop_assert_eq!(parity.verify_and_repair(), ProtectionVerdict::Uncorrectable);
        prop_assert_eq!(*parity.bits(), reference);

        let mut secded = ProtectedDirectionBits::new(reference, ProtectionMode::Secded);
        let bit = bit % secded.check_storage_bits();
        secded.upset_check(bit);
        prop_assert_eq!(secded.verify_and_repair(), ProtectionVerdict::CorrectedCheck);
        prop_assert_eq!(*secded.bits(), reference);
        prop_assert_eq!(secded.verify_and_repair(), ProtectionVerdict::Clean);
    }

    /// Any *two distinct* upsets across vector + check bits are detected
    /// (never silently accepted, never "corrected" to a wrong vector) by
    /// SECDED.
    #[test]
    fn secded_double_upsets_are_detected_not_miscorrected(
        mask in any::<u64>(),
        partitions in arb_partitions(),
        a in any::<u32>(),
        b in any::<u32>(),
    ) {
        let mask = clamp(mask, partitions);
        let reference = DirectionBits::from_mask(mask, partitions);
        let mut p = ProtectedDirectionBits::new(reference, ProtectionMode::Secded);
        let total = partitions + p.check_storage_bits();
        let a = a % total;
        let b = b % total;
        prop_assume!(a != b);
        for bit in [a, b] {
            if bit < partitions {
                p.upset_direction(bit);
            } else {
                p.upset_check(bit - partitions);
            }
        }
        prop_assert_eq!(p.verify_and_repair(), ProtectionVerdict::Uncorrectable);
    }

    /// Legal updates always leave the code clean, for every mode.
    #[test]
    fn legal_updates_stay_clean(
        mask in any::<u64>(),
        flips in any::<u64>(),
        partitions in arb_partitions(),
    ) {
        let mask = clamp(mask, partitions);
        let flips = clamp(flips, partitions);
        for mode in [ProtectionMode::None, ProtectionMode::Parity, ProtectionMode::Secded] {
            let mut p = ProtectedDirectionBits::new(
                DirectionBits::from_mask(mask, partitions),
                mode,
            );
            p.apply_flips(flips);
            prop_assert_eq!(p.verdict(), ProtectionVerdict::Clean, "mode={}", mode);
            p.toggle(partitions - 1);
            prop_assert_eq!(p.verdict(), ProtectionVerdict::Clean, "mode={}", mode);
            p.normalize();
            prop_assert_eq!(p.verdict(), ProtectionVerdict::Clean, "mode={}", mode);
            prop_assert!(p.all_normal_dirs());
        }
    }
}

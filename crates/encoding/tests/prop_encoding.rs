//! Property-based tests for the encoding contribution.

use cnt_encoding::popcount::{
    invert_range, popcount_range, popcount_range_masked, popcount_word_partitions, popcount_words,
    popcount_words_x4,
};
use cnt_encoding::{
    AccessHistory, BitPreference, DirectionBits, DirectionPredictor, LineCodec, PartitionLayout,
    PredictorConfig, ThresholdTable,
};
use cnt_energy::BitEnergies;
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 8) // 512-bit line
}

fn arb_partitions() -> impl Strategy<Value = u32> {
    prop::sample::select(vec![1u32, 2, 4, 8, 16, 32, 64])
}

proptest! {
    /// encode ∘ decode = identity for every line, partitioning, and
    /// direction assignment.
    #[test]
    fn codec_round_trips(line in arb_line(), partitions in arb_partitions(), mask in any::<u64>()) {
        let layout = PartitionLayout::new(512, partitions).expect("valid");
        let codec = LineCodec::new(layout);
        let mask = if partitions == 64 { mask } else { mask & ((1 << partitions) - 1) };
        let dirs = DirectionBits::from_mask(mask, partitions);
        let stored = codec.apply(&line, &dirs);
        prop_assert_eq!(codec.decode(&stored, &dirs), line);
    }

    /// The stored popcount computed without materializing equals the
    /// popcount of the materialized stored words.
    #[test]
    fn stored_popcount_is_consistent(line in arb_line(), partitions in arb_partitions(), mask in any::<u64>()) {
        let layout = PartitionLayout::new(512, partitions).expect("valid");
        let codec = LineCodec::new(layout);
        let mask = if partitions == 64 { mask } else { mask & ((1 << partitions) - 1) };
        let dirs = DirectionBits::from_mask(mask, partitions);
        let stored = codec.apply(&line, &dirs);
        prop_assert_eq!(codec.stored_popcount(&line, &dirs), popcount_words(&stored));
    }

    /// Greedy direction choice is optimal per preference: no other
    /// direction assignment stores more preferred bits.
    #[test]
    fn greedy_choice_is_optimal(line in arb_line(), partitions in arb_partitions(), rival_mask in any::<u64>()) {
        let layout = PartitionLayout::new(512, partitions).expect("valid");
        let codec = LineCodec::new(layout);
        let rival_mask = if partitions == 64 { rival_mask } else { rival_mask & ((1 << partitions) - 1) };
        let rival = DirectionBits::from_mask(rival_mask, partitions);

        let best_ones = codec.choose_directions(&line, BitPreference::MoreOnes);
        prop_assert!(codec.stored_popcount(&line, &best_ones) >= codec.stored_popcount(&line, &rival));

        let best_zeros = codec.choose_directions(&line, BitPreference::MoreZeros);
        prop_assert!(codec.stored_popcount(&line, &best_zeros) <= codec.stored_popcount(&line, &rival));
    }

    /// Finer partitioning never stores fewer preferred bits than coarser
    /// partitioning (the Fig. 2 claim, generalized).
    #[test]
    fn finer_partitions_never_lose(line in arb_line()) {
        let counts: Vec<u32> = [1u32, 2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&p| {
                let codec = LineCodec::new(PartitionLayout::new(512, p).expect("valid"));
                let dirs = codec.choose_directions(&line, BitPreference::MoreOnes);
                codec.stored_popcount(&line, &dirs)
            })
            .collect();
        for pair in counts.windows(2) {
            prop_assert!(pair[1] >= pair[0], "finer partitioning lost ones: {counts:?}");
        }
    }

    /// Range popcount agrees with a naive bit loop, and inversion
    /// complements exactly the range.
    #[test]
    fn popcount_range_matches_naive(words in prop::collection::vec(any::<u64>(), 1..4), start in 0u32..128, len in 1u32..128) {
        let total = words.len() as u32 * 64;
        prop_assume!(start + len <= total);
        let naive: u32 = (start..start + len)
            .filter(|&b| words[(b / 64) as usize] >> (b % 64) & 1 == 1)
            .count() as u32;
        prop_assert_eq!(popcount_range(&words, start, len), naive);

        let mut inverted = words.clone();
        invert_range(&mut inverted, start, len);
        prop_assert_eq!(popcount_range(&inverted, start, len), len - naive);
        // Bits outside the range are untouched.
        let outside_before = popcount_words(&words) - naive;
        let outside_after = popcount_words(&inverted) - (len - naive);
        prop_assert_eq!(outside_before, outside_after);
    }

    /// The word-aligned fast path of `popcount_range` agrees with the
    /// general masked path on every range, aligned or not.
    #[test]
    fn popcount_fast_path_matches_masked(words in prop::collection::vec(any::<u64>(), 1..6), start in 0u32..320, len in 0u32..320) {
        let total = words.len() as u32 * 64;
        prop_assume!(len >= 1 && start + len <= total);
        prop_assert_eq!(
            popcount_range(&words, start, len),
            popcount_range_masked(&words, start, len)
        );
        // Word-aligned ranges (the fast path's trigger) specifically.
        let wstart = (start / 64) * 64;
        let wlen = (len.div_ceil(64) * 64).min(total - wstart);
        prop_assert_eq!(
            popcount_range(&words, wstart, wlen),
            popcount_range_masked(&words, wstart, wlen)
        );
    }

    /// The unrolled u64x4 kernel agrees with the masked scalar oracle on
    /// every whole-buffer count, whatever the buffer length (covering
    /// all four chunks_exact remainder classes).
    #[test]
    fn x4_kernel_matches_masked_oracle(words in prop::collection::vec(any::<u64>(), 0..23)) {
        let expected = if words.is_empty() {
            0
        } else {
            popcount_range_masked(&words, 0, words.len() as u32 * 64)
        };
        prop_assert_eq!(popcount_words_x4(&words), expected);
        prop_assert_eq!(popcount_words(&words), expected);
    }

    /// The batched partition re-popcount agrees with per-partition
    /// masked counts for every word-multiple split.
    #[test]
    fn word_partition_kernel_matches_masked_oracle(
        words in prop::collection::vec(any::<u64>(), 1..17),
        partitions in prop::sample::select(vec![1usize, 2, 4, 8, 16]),
    ) {
        prop_assume!(words.len() % partitions == 0);
        let wpp = words.len() / partitions;
        let mut batched = vec![0u32; partitions];
        popcount_word_partitions(&words, wpp, &mut batched);
        for (p, &count) in batched.iter().enumerate() {
            let start = (p * wpp) as u32 * 64;
            let len = wpp as u32 * 64;
            prop_assert_eq!(count, popcount_range_masked(&words, start, len));
        }
    }

    /// The codec's batched stored-popcount path (word-aligned partitions
    /// take the x4 kernel, ragged ones the masked oracle) agrees with
    /// masked per-partition counts under every direction assignment —
    /// including non-word-aligned partition widths like 512/32 = 16 bits.
    #[test]
    fn stored_partition_counts_match_masked_oracle(
        line in arb_line(),
        partitions in arb_partitions(),
        mask in any::<u64>(),
    ) {
        let layout = PartitionLayout::new(512, partitions).expect("valid");
        let codec = LineCodec::new(layout);
        let mask = if partitions == 64 { mask } else { mask & ((1 << partitions) - 1) };
        let dirs = DirectionBits::from_mask(mask, partitions);
        let stored = codec.apply(&line, &dirs);
        let counts: Vec<u32> = codec.stored_partition_popcounts_iter(&line, &dirs).collect();
        prop_assert_eq!(counts.len(), partitions as usize);
        let bits_per = 512 / partitions;
        for (p, &count) in counts.iter().enumerate() {
            let start = p as u32 * bits_per;
            prop_assert_eq!(count, popcount_range_masked(&stored, start, bits_per));
        }
    }

    /// The threshold table's decision always matches the sign of the exact
    /// energy benefit (up to boundary rounding).
    #[test]
    fn table_matches_energy_balance(wr in 0u32..=15, n1 in 0u32..=512, dt in 0.0f64..0.9) {
        let bits = BitEnergies::cnfet_default();
        let table = ThresholdTable::new(&bits, 15, 512, dt).expect("valid");
        let benefit = table.flip_benefit(&bits, wr, n1);
        if benefit.abs() > 1e-6 {
            prop_assert_eq!(table.should_flip(wr, n1), benefit > 0.0,
                "wr={} n1={} dt={} benefit={}", wr, n1, dt, benefit);
        }
    }

    /// Applying a decision always improves (or preserves) the projected
    /// window energy: the predictor never makes things worse.
    #[test]
    fn decisions_never_hurt(line in arb_line(), wr in 0u32..=15, mask in any::<u64>()) {
        let bits = BitEnergies::cnfet_default();
        let predictor = DirectionPredictor::new(
            &bits,
            PredictorConfig { window: 15, line_bits: 512, partitions: 8, delta_t: 0.0 },
        ).expect("valid");
        let dirs = DirectionBits::from_mask(mask & 0xFF, 8);
        let decision = predictor.decide(
            cnt_encoding::WindowSummary { wr_num: wr },
            &line,
            &dirs,
        );
        prop_assert!(decision.projected_saving_fj >= 0.0);
        if decision.switches() {
            prop_assert!(decision.projected_saving_fj > 0.0);
        }
        prop_assert_eq!(decision.new_directions.mask() ^ dirs.mask(), decision.flips);
    }

    /// Window accounting: a predictor over any access pattern fires
    /// exactly every `window` accesses.
    #[test]
    fn windows_fire_periodically(pattern in prop::collection::vec(any::<bool>(), 1..200), window in 2u32..32) {
        let bits = BitEnergies::cnfet_default();
        let predictor = DirectionPredictor::new(
            &bits,
            PredictorConfig { window, line_bits: 512, partitions: 1, delta_t: 0.0 },
        ).expect("valid");
        let mut history = AccessHistory::new();
        let mut fired = 0usize;
        for (i, &is_write) in pattern.iter().enumerate() {
            let summary = predictor.observe(&mut history, is_write);
            if summary.is_some() {
                fired += 1;
                prop_assert_eq!((i + 1) % window as usize, 0, "fired off-cycle at {}", i);
            }
        }
        prop_assert_eq!(fired, pattern.len() / window as usize);
    }
}

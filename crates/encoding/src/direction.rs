//! Encoding directions and the per-partition direction-bit vector.

use std::fmt;
use std::ops::Not;

use serde::{Deserialize, Serialize};

/// Whether a region of the array stores the logical bits as-is or inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EncodingDirection {
    /// Stored bits equal logical bits.
    #[default]
    Normal,
    /// Stored bits are the complement of logical bits.
    Inverted,
}

impl EncodingDirection {
    /// `true` when inverted.
    pub fn is_inverted(self) -> bool {
        self == EncodingDirection::Inverted
    }

    /// The XOR mask this direction applies to a 64-bit word fully covered
    /// by its region.
    pub fn mask64(self) -> u64 {
        match self {
            EncodingDirection::Normal => 0,
            EncodingDirection::Inverted => u64::MAX,
        }
    }
}

impl Not for EncodingDirection {
    type Output = EncodingDirection;
    fn not(self) -> EncodingDirection {
        match self {
            EncodingDirection::Normal => EncodingDirection::Inverted,
            EncodingDirection::Inverted => EncodingDirection::Normal,
        }
    }
}

impl fmt::Display for EncodingDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingDirection::Normal => f.write_str("normal"),
            EncodingDirection::Inverted => f.write_str("inverted"),
        }
    }
}

/// One direction bit per partition of a cache line (the "D" metadata).
///
/// Supports up to 64 partitions, stored as a bitmask: bit `p` set means
/// partition `p` is stored inverted.
///
/// # Example
///
/// ```
/// use cnt_encoding::{DirectionBits, EncodingDirection};
///
/// let mut dirs = DirectionBits::all_normal(8);
/// dirs.set(3, EncodingDirection::Inverted);
/// assert!(dirs.is_inverted(3));
/// assert_eq!(dirs.inverted_count(), 1);
/// assert_eq!(dirs.storage_bits(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DirectionBits {
    mask: u64,
    partitions: u32,
}

impl DirectionBits {
    /// All partitions normal.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is 0 or greater than 64.
    pub fn all_normal(partitions: u32) -> Self {
        assert!(
            (1..=64).contains(&partitions),
            "partition count must be in 1..=64, got {partitions}"
        );
        DirectionBits {
            mask: 0,
            partitions,
        }
    }

    /// Builds direction bits from a raw mask (bits above `partitions` must
    /// be clear).
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is out of range or `mask` has stray bits.
    pub fn from_mask(mask: u64, partitions: u32) -> Self {
        assert!(
            (1..=64).contains(&partitions),
            "partition count must be in 1..=64, got {partitions}"
        );
        if partitions < 64 {
            assert!(
                mask >> partitions == 0,
                "mask has bits above partition count"
            );
        }
        DirectionBits { mask, partitions }
    }

    /// Number of partitions tracked.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// The raw inversion mask (bit `p` = partition `p` inverted).
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// The direction of partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn direction(&self, p: u32) -> EncodingDirection {
        assert!(p < self.partitions, "partition {p} out of range");
        if self.mask & (1 << p) != 0 {
            EncodingDirection::Inverted
        } else {
            EncodingDirection::Normal
        }
    }

    /// `true` if partition `p` is stored inverted.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn is_inverted(&self, p: u32) -> bool {
        self.direction(p).is_inverted()
    }

    /// Sets the direction of partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set(&mut self, p: u32, direction: EncodingDirection) {
        assert!(p < self.partitions, "partition {p} out of range");
        match direction {
            EncodingDirection::Inverted => self.mask |= 1 << p,
            EncodingDirection::Normal => self.mask &= !(1 << p),
        }
    }

    /// Flips the direction of partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn toggle(&mut self, p: u32) {
        assert!(p < self.partitions, "partition {p} out of range");
        self.mask ^= 1 << p;
    }

    /// Applies a flip mask (bit `p` set = flip partition `p`).
    ///
    /// # Panics
    ///
    /// Panics if the flip mask has bits above the partition count.
    pub fn apply_flips(&mut self, flips: u64) {
        if self.partitions < 64 {
            assert!(flips >> self.partitions == 0, "flip mask has stray bits");
        }
        self.mask ^= flips;
    }

    /// Number of partitions currently inverted.
    pub fn inverted_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// `true` if no partition is inverted.
    pub fn all_normal_dirs(&self) -> bool {
        self.mask == 0
    }

    /// Metadata storage cost: one bit per partition.
    pub fn storage_bits(&self) -> u32 {
        self.partitions
    }
}

impl fmt::Display for DirectionBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in (0..self.partitions).rev() {
            f.write_str(if self.is_inverted(p) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_not_and_mask() {
        assert_eq!(!EncodingDirection::Normal, EncodingDirection::Inverted);
        assert_eq!(!EncodingDirection::Inverted, EncodingDirection::Normal);
        assert_eq!(EncodingDirection::Normal.mask64(), 0);
        assert_eq!(EncodingDirection::Inverted.mask64(), u64::MAX);
        assert_eq!(EncodingDirection::default(), EncodingDirection::Normal);
    }

    #[test]
    fn set_toggle_and_count() {
        let mut dirs = DirectionBits::all_normal(4);
        assert!(dirs.all_normal_dirs());
        dirs.set(0, EncodingDirection::Inverted);
        dirs.toggle(3);
        assert_eq!(dirs.inverted_count(), 2);
        assert!(dirs.is_inverted(0));
        assert!(!dirs.is_inverted(1));
        assert!(dirs.is_inverted(3));
        dirs.toggle(0);
        assert!(!dirs.is_inverted(0));
        dirs.set(3, EncodingDirection::Normal);
        assert!(dirs.all_normal_dirs());
    }

    #[test]
    fn apply_flips_xors() {
        let mut dirs = DirectionBits::from_mask(0b0101, 4);
        dirs.apply_flips(0b0110);
        assert_eq!(dirs.mask(), 0b0011);
    }

    #[test]
    fn sixty_four_partitions_work() {
        let mut dirs = DirectionBits::all_normal(64);
        dirs.set(63, EncodingDirection::Inverted);
        assert!(dirs.is_inverted(63));
        dirs.apply_flips(u64::MAX);
        assert_eq!(dirs.inverted_count(), 63);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_partition_panics() {
        DirectionBits::all_normal(4).direction(4);
    }

    #[test]
    #[should_panic(expected = "bits above partition count")]
    fn stray_mask_bits_panic() {
        DirectionBits::from_mask(0b10000, 4);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_partitions_panics() {
        DirectionBits::all_normal(0);
    }

    #[test]
    fn display_msb_first() {
        let dirs = DirectionBits::from_mask(0b0011, 4);
        assert_eq!(dirs.to_string(), "0011");
    }
}

//! Protection of the direction ("D") metadata: parity and SECDED.
//!
//! The direction bits are the cache's single point of silent failure: a
//! soft-error upset in one D bit makes an entire partition decode
//! inverted with zero detection (experiment `fig13`). This module adds
//! the two classic code points over the per-line direction vector:
//!
//! * [`ProtectionMode::Parity`] — one even-parity bit over the D vector.
//!   Detects every odd-weight upset (in particular all single upsets),
//!   corrects nothing, and misses even-weight upsets.
//! * [`ProtectionMode::Secded`] — an extended Hamming code: corrects any
//!   single-bit upset (in the D vector *or* in the check bits) and
//!   detects all double upsets.
//!
//! [`ProtectedDirectionBits`] bundles a [`DirectionBits`] vector with its
//! check bits and recomputes them on every *legal* mutation; soft errors
//! are modelled by the `upset_*` methods, which corrupt state without
//! touching the check bits — exactly what a particle strike does.

use std::fmt;
use std::ops::Deref;

use serde::{Deserialize, Serialize};

use crate::direction::{DirectionBits, EncodingDirection};
use crate::history::AccessHistory;

/// How (and whether) the per-line direction vector is protected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ProtectionMode {
    /// No protection: upsets corrupt silently (the seed behaviour).
    #[default]
    None,
    /// One even-parity bit over the direction vector: detect-only.
    Parity,
    /// Extended Hamming (SECDED): single-error correct, double-error
    /// detect, over direction vector plus check bits.
    Secded,
}

impl ProtectionMode {
    /// Check bits stored per line for a `partitions`-bit direction vector.
    pub fn check_bits(self, partitions: u32) -> u32 {
        match self {
            ProtectionMode::None => 0,
            ProtectionMode::Parity => 1,
            ProtectionMode::Secded => hamming_parity_bits(partitions) + 1,
        }
    }

    /// Computes the check word for a direction mask.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is out of `1..=64`.
    pub fn encode(self, mask: u64, partitions: u32) -> u64 {
        assert!(
            (1..=64).contains(&partitions),
            "partition count must be in 1..=64, got {partitions}"
        );
        match self {
            ProtectionMode::None => 0,
            ProtectionMode::Parity => u64::from(mask.count_ones() & 1),
            ProtectionMode::Secded => secded_encode(mask, partitions),
        }
    }
}

impl fmt::Display for ProtectionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectionMode::None => f.write_str("none"),
            ProtectionMode::Parity => f.write_str("parity"),
            ProtectionMode::Secded => f.write_str("secded"),
        }
    }
}

/// Number of Hamming parity bits `r` needed for `data_bits` data bits:
/// the smallest `r` with `2^r >= data_bits + r + 1`.
fn hamming_parity_bits(data_bits: u32) -> u32 {
    let mut r = 0u32;
    while (1u32 << r) < data_bits + r + 1 {
        r += 1;
    }
    r
}

/// The 1-based codeword position of data bit `i`: the `(i + 1)`-th
/// non-power-of-two position.
fn data_position(i: u32) -> u32 {
    let mut pos = 1u32;
    let mut seen = 0u32;
    loop {
        if !pos.is_power_of_two() {
            if seen == i {
                return pos;
            }
            seen += 1;
        }
        pos += 1;
    }
}

/// The data-bit index stored at codeword position `pos`, or `None` if
/// `pos` is a parity position or beyond the codeword.
fn data_index_at(pos: u32, data_bits: u32, parity_bits: u32) -> Option<u32> {
    if pos == 0 || pos.is_power_of_two() || pos > data_bits + parity_bits {
        return None;
    }
    // Data bits fill non-power positions in order; the index is the
    // count of non-power positions strictly below `pos`.
    let below = pos - 1;
    let powers_below = below.checked_ilog2().map_or(0, |l| l + 1);
    let idx = below - powers_below;
    (idx < data_bits).then_some(idx)
}

/// Extended-Hamming check word for `mask` (low `data_bits` significant):
/// bits `0..r` hold the Hamming parities (parity `j` covers codeword
/// positions with bit `j` set), bit `r` holds the overall parity over
/// data plus Hamming parities.
fn secded_encode(mask: u64, data_bits: u32) -> u64 {
    let r = hamming_parity_bits(data_bits);
    let mut parities = 0u64;
    for i in 0..data_bits {
        if mask >> i & 1 == 1 {
            let pos = data_position(i);
            for j in 0..r {
                if pos >> j & 1 == 1 {
                    parities ^= 1 << j;
                }
            }
        }
    }
    let overall = (mask.count_ones() + parities.count_ones()) & 1;
    parities | (u64::from(overall) << r)
}

/// The decoder shared by every protected metadata register: verdict for
/// a `data_bits`-bit data word against its stored check word.
fn code_verdict(mode: ProtectionMode, data: u64, data_bits: u32, check: u64) -> ProtectionVerdict {
    match mode {
        ProtectionMode::None => ProtectionVerdict::Clean,
        ProtectionMode::Parity => {
            if mode.encode(data, data_bits) == check {
                ProtectionVerdict::Clean
            } else {
                ProtectionVerdict::Uncorrectable
            }
        }
        ProtectionMode::Secded => {
            let r = hamming_parity_bits(data_bits);
            let expected = secded_encode(data, data_bits);
            // Syndrome: which Hamming parities disagree with the data.
            let syndrome = ((expected ^ check) & ((1 << r) - 1)) as u32;
            // Overall parity over the *received* codeword: data bits,
            // stored Hamming parities, stored overall bit.
            let stored_parities = check & ((1 << r) - 1);
            let stored_overall = (check >> r & 1) as u32;
            let overall = (data.count_ones() + stored_parities.count_ones() + stored_overall) & 1;
            match (syndrome, overall) {
                (0, 0) => ProtectionVerdict::Clean,
                // Odd overall parity: a single upset at codeword
                // position `syndrome` (0 = the overall bit itself).
                (0, _) => ProtectionVerdict::CorrectedCheck,
                (s, 1) => {
                    if s.is_power_of_two() && s.trailing_zeros() < r {
                        ProtectionVerdict::CorrectedCheck
                    } else {
                        match data_index_at(s, data_bits, r) {
                            Some(i) => ProtectionVerdict::CorrectedData(i),
                            // Syndrome points outside the codeword:
                            // must be a multi-bit upset.
                            None => ProtectionVerdict::Uncorrectable,
                        }
                    }
                }
                // Non-zero syndrome with even overall parity: double
                // upset.
                (_, _) => ProtectionVerdict::Uncorrectable,
            }
        }
    }
}

/// The outcome of verifying (and possibly repairing) protected metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectionVerdict {
    /// Check bits match the direction vector.
    Clean,
    /// A single upset in direction bit `p` was located and repaired in
    /// the metadata register. The caller must restore the partition's
    /// decoded view (the data array itself was never wrong).
    CorrectedData(u32),
    /// A single upset in the check bits themselves was repaired; the
    /// direction vector (and therefore the data) was never wrong.
    CorrectedCheck,
    /// A fault was detected but cannot be located (parity mode, or a
    /// multi-bit upset under SECDED). The direction vector can no longer
    /// be trusted.
    Uncorrectable,
}

impl ProtectionVerdict {
    /// `true` when a fault was detected (whether or not it was repaired).
    pub fn detected(self) -> bool {
        self != ProtectionVerdict::Clean
    }
}

/// A [`DirectionBits`] vector bundled with its protection check bits.
///
/// Legal mutations ([`set`](Self::set), [`toggle`](Self::toggle),
/// [`apply_flips`](Self::apply_flips), [`normalize`](Self::normalize))
/// recompute the check word; soft errors are injected with
/// [`upset_direction`](Self::upset_direction) /
/// [`upset_check`](Self::upset_check), which corrupt state *without*
/// updating the check bits. [`verify_and_repair`](Self::verify_and_repair)
/// then plays the decoder.
///
/// # Example
///
/// ```
/// use cnt_encoding::{ProtectedDirectionBits, ProtectionMode, ProtectionVerdict};
///
/// let mut dirs = ProtectedDirectionBits::all_normal(8, ProtectionMode::Secded);
/// dirs.toggle(3); // legal update: check bits follow
/// assert_eq!(dirs.verify_and_repair(), ProtectionVerdict::Clean);
///
/// dirs.upset_direction(5); // soft error: check bits do NOT follow
/// assert_eq!(dirs.verify_and_repair(), ProtectionVerdict::CorrectedData(5));
/// assert!(!dirs.is_inverted(5), "the upset was rolled back");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProtectedDirectionBits {
    dirs: DirectionBits,
    mode: ProtectionMode,
    check: u64,
}

impl ProtectedDirectionBits {
    /// Wraps a direction vector, computing its check bits.
    pub fn new(dirs: DirectionBits, mode: ProtectionMode) -> Self {
        let check = mode.encode(dirs.mask(), dirs.partitions());
        ProtectedDirectionBits { dirs, mode, check }
    }

    /// All partitions normal, check bits consistent.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is out of `1..=64`.
    pub fn all_normal(partitions: u32, mode: ProtectionMode) -> Self {
        ProtectedDirectionBits::new(DirectionBits::all_normal(partitions), mode)
    }

    /// The protected direction vector.
    pub fn bits(&self) -> &DirectionBits {
        &self.dirs
    }

    /// The protection mode.
    pub fn mode(&self) -> ProtectionMode {
        self.mode
    }

    /// The stored check word.
    pub fn check(&self) -> u64 {
        self.check
    }

    /// Check bits stored alongside this vector.
    pub fn check_storage_bits(&self) -> u32 {
        self.mode.check_bits(self.dirs.partitions())
    }

    /// One-bits currently stored in the check word (for energy pricing).
    pub fn check_ones(&self) -> u32 {
        self.check.count_ones()
    }

    /// Total metadata storage: direction bits plus check bits.
    pub fn storage_bits(&self) -> u32 {
        self.dirs.storage_bits() + self.check_storage_bits()
    }

    /// Legal update: sets partition `p`'s direction and recomputes the
    /// check bits.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set(&mut self, p: u32, direction: EncodingDirection) {
        self.dirs.set(p, direction);
        self.recompute();
    }

    /// Legal update: flips partition `p`'s direction and recomputes the
    /// check bits.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn toggle(&mut self, p: u32) {
        self.dirs.toggle(p);
        self.recompute();
    }

    /// Legal update: applies a flip mask and recomputes the check bits.
    ///
    /// # Panics
    ///
    /// Panics if the flip mask has bits above the partition count.
    pub fn apply_flips(&mut self, flips: u64) {
        self.dirs.apply_flips(flips);
        self.recompute();
    }

    /// Legal update: forces every partition back to `Normal` (the
    /// fallback-baseline degradation) and recomputes the check bits.
    pub fn normalize(&mut self) {
        self.dirs = DirectionBits::all_normal(self.dirs.partitions());
        self.recompute();
    }

    /// Soft error: flips direction bit `p` *without* updating the check
    /// bits (what a particle strike on the D register does).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn upset_direction(&mut self, p: u32) {
        self.dirs.toggle(p);
    }

    /// Soft error: flips check bit `bit` *without* updating anything
    /// else.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not a stored check bit under this mode.
    pub fn upset_check(&mut self, bit: u32) {
        assert!(
            bit < self.check_storage_bits(),
            "check bit {bit} out of range for {} mode",
            self.mode
        );
        self.check ^= 1 << bit;
    }

    /// Verifies the check bits against the direction vector, repairing
    /// the metadata register when the code allows it.
    ///
    /// For [`ProtectionVerdict::CorrectedData`] the direction bit has
    /// already been rolled back here, but the *caller* owns the decoded
    /// data view and must restore it too. All other verdicts leave the
    /// direction vector as it was.
    pub fn verify_and_repair(&mut self) -> ProtectionVerdict {
        let verdict = self.verdict();
        match verdict {
            ProtectionVerdict::CorrectedData(p) => {
                self.dirs.toggle(p);
                self.recompute();
            }
            ProtectionVerdict::CorrectedCheck => self.recompute(),
            ProtectionVerdict::Clean | ProtectionVerdict::Uncorrectable => {}
        }
        verdict
    }

    /// The decoder's verdict without mutating anything.
    pub fn verdict(&self) -> ProtectionVerdict {
        code_verdict(
            self.mode,
            self.dirs.mask(),
            self.dirs.partitions(),
            self.check,
        )
    }

    fn recompute(&mut self) {
        self.check = self.mode.encode(self.dirs.mask(), self.dirs.partitions());
    }
}

impl Deref for ProtectedDirectionBits {
    type Target = DirectionBits;
    fn deref(&self) -> &DirectionBits {
        &self.dirs
    }
}

/// The per-line access-history counters (the "H" bits) bundled with
/// protection check bits, closing the metadata-vulnerability gap fig13
/// exposed for the D bits: an upset in `A_num`/`Wr_num` silently skews
/// *when* the predictor fires and what write ratio it sees.
///
/// The two counters are packed `A_num | Wr_num << counter_bits` into a
/// `2 · counter_bits` data word and protected with the same codes as
/// [`ProtectedDirectionBits`]. Legal updates ([`record`](Self::record),
/// [`reset`](Self::reset)) recompute the check word; soft errors
/// ([`upset_bit`](Self::upset_bit), [`upset_check`](Self::upset_check))
/// do not.
///
/// # Example
///
/// ```
/// use cnt_encoding::{ProtectedHistory, ProtectionMode, ProtectionVerdict};
///
/// let mut h = ProtectedHistory::new(15, ProtectionMode::Secded);
/// h.record(true);
/// h.record(false);
/// assert_eq!(h.verify_and_repair(), ProtectionVerdict::Clean);
///
/// h.upset_bit(0); // A_num bit 0 flips: 2 -> 3
/// assert_eq!(h.accesses(), 3);
/// assert_eq!(h.verify_and_repair(), ProtectionVerdict::CorrectedData(0));
/// assert_eq!(h.accesses(), 2, "the upset was rolled back");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtectedHistory {
    a_num: u32,
    wr_num: u32,
    window: u32,
    mode: ProtectionMode,
    check: u64,
}

impl ProtectedHistory {
    /// Fresh counters (both zero) for a window of length `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u32, mode: ProtectionMode) -> Self {
        assert!(window > 0, "window must be positive");
        let mut h = ProtectedHistory {
            a_num: 0,
            wr_num: 0,
            window,
            mode,
            check: 0,
        };
        h.recompute();
        h
    }

    /// Rebuilds a protected history from plain counters (checkpoint
    /// restore), computing consistent check bits.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn from_history(history: AccessHistory, window: u32, mode: ProtectionMode) -> Self {
        let mut h = ProtectedHistory::new(window, mode);
        h.a_num = history.accesses();
        h.wr_num = history.writes();
        h.recompute();
        h
    }

    /// The counters as a plain [`AccessHistory`].
    ///
    /// # Panics
    ///
    /// Panics if an un-repaired upset left `Wr_num > A_num` (not a
    /// reachable state); call
    /// [`verify_and_repair`](Self::verify_and_repair) first.
    pub fn to_history(self) -> AccessHistory {
        AccessHistory::from_raw(self.a_num, self.wr_num)
    }

    /// `A_num`: accesses recorded this window.
    pub fn accesses(&self) -> u32 {
        self.a_num
    }

    /// `Wr_num`: writes recorded this window.
    pub fn writes(&self) -> u32 {
        self.wr_num
    }

    /// Reads recorded this window (saturating: an un-repaired upset can
    /// leave `Wr_num > A_num`).
    pub fn reads(&self) -> u32 {
        self.a_num.saturating_sub(self.wr_num)
    }

    /// The window length the counters are sized for.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The protection mode.
    pub fn mode(&self) -> ProtectionMode {
        self.mode
    }

    /// The stored check word.
    pub fn check(&self) -> u64 {
        self.check
    }

    /// Bits per counter: `⌈log₂(window + 1)⌉`.
    pub fn counter_bits(&self) -> u32 {
        32 - self.window.leading_zeros()
    }

    /// Protected data bits: both counters packed.
    pub fn data_bits(&self) -> u32 {
        2 * self.counter_bits()
    }

    /// Check bits stored alongside the counters under this mode.
    pub fn check_storage_bits(&self) -> u32 {
        self.mode.check_bits(self.data_bits())
    }

    /// Total metadata storage: counter bits plus check bits.
    pub fn storage_bits(&self) -> u32 {
        self.data_bits() + self.check_storage_bits()
    }

    /// Records one access; returns `true` when the window is full and
    /// the caller should run the predictor and [`reset`](Self::reset).
    ///
    /// Unlike [`AccessHistory::record`] this never panics: an injected
    /// counter upset can push `A_num` to (or past) the window boundary
    /// without a reset, and a soft error must not abort the simulator.
    /// Counters saturate at their physical width; an upset-inflated
    /// `A_num` simply fires the window early — exactly the silent
    /// prediction skew the protection modes exist to catch.
    pub fn record(&mut self, is_write: bool) -> bool {
        let cap = ((1u64 << self.counter_bits()) - 1) as u32;
        self.a_num = self.a_num.saturating_add(1).min(cap);
        if is_write {
            self.wr_num = self.wr_num.saturating_add(1).min(cap);
        }
        self.recompute();
        self.a_num >= self.window
    }

    /// Clears both counters and recomputes the check bits.
    pub fn reset(&mut self) {
        self.a_num = 0;
        self.wr_num = 0;
        self.recompute();
    }

    /// Soft error: flips packed counter bit `bit` *without* updating the
    /// check bits. Bits `0..counter_bits` land in `A_num`, the rest in
    /// `Wr_num`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not a stored counter bit.
    pub fn upset_bit(&mut self, bit: u32) {
        assert!(
            bit < self.data_bits(),
            "history bit {bit} out of range for {}-bit counters",
            self.counter_bits()
        );
        let c = self.counter_bits();
        if bit < c {
            self.a_num ^= 1 << bit;
        } else {
            self.wr_num ^= 1 << (bit - c);
        }
    }

    /// Soft error: flips check bit `bit` *without* updating anything
    /// else.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not a stored check bit under this mode.
    pub fn upset_check(&mut self, bit: u32) {
        assert!(
            bit < self.check_storage_bits(),
            "check bit {bit} out of range for {} mode",
            self.mode
        );
        self.check ^= 1 << bit;
    }

    /// Verifies the check bits against the counters, repairing them when
    /// the code allows it. Semantics mirror
    /// [`ProtectedDirectionBits::verify_and_repair`]; here a repaired
    /// data upset restores the counters themselves, so there is nothing
    /// further for the caller to roll back.
    pub fn verify_and_repair(&mut self) -> ProtectionVerdict {
        let verdict = self.verdict();
        match verdict {
            ProtectionVerdict::CorrectedData(bit) => {
                self.upset_bit(bit); // flip it back
                self.recompute();
            }
            ProtectionVerdict::CorrectedCheck => self.recompute(),
            ProtectionVerdict::Clean | ProtectionVerdict::Uncorrectable => {}
        }
        verdict
    }

    /// The decoder's verdict without mutating anything.
    pub fn verdict(&self) -> ProtectionVerdict {
        code_verdict(self.mode, self.packed(), self.data_bits(), self.check)
    }

    fn packed(&self) -> u64 {
        let c = self.counter_bits();
        let mask = (1u64 << c) - 1;
        (u64::from(self.a_num) & mask) | (u64::from(self.wr_num) & mask) << c
    }

    fn recompute(&mut self) {
        self.check = self.mode.encode(self.packed(), self.data_bits());
    }
}

impl fmt::Display for ProtectedHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "A={}/{} Wr={} [{}]",
            self.a_num, self.window, self.wr_num, self.mode
        )
    }
}

impl fmt::Display for ProtectedDirectionBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.dirs, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_bit_counts_match_theory() {
        // Parity: always 1. SECDED: r Hamming bits + overall.
        assert_eq!(ProtectionMode::None.check_bits(8), 0);
        assert_eq!(ProtectionMode::Parity.check_bits(8), 1);
        assert_eq!(ProtectionMode::Secded.check_bits(1), 3); // r=2
        assert_eq!(ProtectionMode::Secded.check_bits(4), 4); // r=3
        assert_eq!(ProtectionMode::Secded.check_bits(8), 5); // r=4
        assert_eq!(ProtectionMode::Secded.check_bits(11), 5); // r=4
        assert_eq!(ProtectionMode::Secded.check_bits(64), 8); // r=7
    }

    #[test]
    fn data_positions_skip_parity_slots() {
        // Codeword positions 3, 5, 6, 7, 9, ... carry data.
        assert_eq!(data_position(0), 3);
        assert_eq!(data_position(1), 5);
        assert_eq!(data_position(2), 6);
        assert_eq!(data_position(3), 7);
        assert_eq!(data_position(4), 9);
        for i in 0..64 {
            let pos = data_position(i);
            assert_eq!(data_index_at(pos, 64, 7), Some(i));
        }
        assert_eq!(data_index_at(4, 64, 7), None, "parity position");
        assert_eq!(data_index_at(0, 64, 7), None);
        assert_eq!(data_index_at(72, 64, 7), None, "beyond the codeword");
    }

    #[test]
    fn parity_detects_single_upsets_only() {
        let mut p = ProtectedDirectionBits::new(
            DirectionBits::from_mask(0b1010, 8),
            ProtectionMode::Parity,
        );
        assert_eq!(p.verify_and_repair(), ProtectionVerdict::Clean);
        p.upset_direction(0);
        assert_eq!(p.verify_and_repair(), ProtectionVerdict::Uncorrectable);
        // A second upset cancels the parity: the classic blind spot.
        p.upset_direction(5);
        assert_eq!(p.verify_and_repair(), ProtectionVerdict::Clean);
    }

    #[test]
    fn parity_covers_its_own_check_bit() {
        let mut p = ProtectedDirectionBits::all_normal(8, ProtectionMode::Parity);
        p.upset_check(0);
        assert_eq!(p.verify_and_repair(), ProtectionVerdict::Uncorrectable);
    }

    #[test]
    fn secded_corrects_any_single_direction_upset() {
        for partitions in [1u32, 3, 8, 13, 64] {
            for bit in 0..partitions {
                let mask = 0x5A5A_5A5A_5A5A_5A5A
                    & if partitions == 64 {
                        u64::MAX
                    } else {
                        (1 << partitions) - 1
                    };
                let reference = DirectionBits::from_mask(mask, partitions);
                let mut p = ProtectedDirectionBits::new(reference, ProtectionMode::Secded);
                p.upset_direction(bit);
                assert_eq!(
                    p.verify_and_repair(),
                    ProtectionVerdict::CorrectedData(bit),
                    "partitions={partitions} bit={bit}"
                );
                assert_eq!(*p.bits(), reference, "repair must restore the vector");
                assert_eq!(p.verify_and_repair(), ProtectionVerdict::Clean);
            }
        }
    }

    #[test]
    fn secded_corrects_check_bit_upsets() {
        for bit in 0..ProtectionMode::Secded.check_bits(8) {
            let mut p = ProtectedDirectionBits::new(
                DirectionBits::from_mask(0b0110_0001, 8),
                ProtectionMode::Secded,
            );
            let reference = *p.bits();
            p.upset_check(bit);
            assert_eq!(
                p.verify_and_repair(),
                ProtectionVerdict::CorrectedCheck,
                "check bit {bit}"
            );
            assert_eq!(*p.bits(), reference, "data was never wrong");
            assert_eq!(p.verify_and_repair(), ProtectionVerdict::Clean);
        }
    }

    #[test]
    fn secded_detects_double_upsets() {
        let mut p = ProtectedDirectionBits::all_normal(8, ProtectionMode::Secded);
        p.upset_direction(1);
        p.upset_direction(6);
        assert_eq!(p.verify_and_repair(), ProtectionVerdict::Uncorrectable);
        // Mixed data + check double upsets are detected too.
        let mut q = ProtectedDirectionBits::all_normal(8, ProtectionMode::Secded);
        q.upset_direction(3);
        q.upset_check(0);
        assert_eq!(q.verify_and_repair(), ProtectionVerdict::Uncorrectable);
    }

    #[test]
    fn legal_updates_keep_the_code_clean() {
        let mut p = ProtectedDirectionBits::all_normal(8, ProtectionMode::Secded);
        p.set(2, EncodingDirection::Inverted);
        p.toggle(7);
        p.apply_flips(0b0001_1000);
        assert_eq!(p.verdict(), ProtectionVerdict::Clean);
        p.normalize();
        assert!(p.all_normal_dirs());
        assert_eq!(p.verdict(), ProtectionVerdict::Clean);
    }

    #[test]
    fn storage_accounting() {
        let p = ProtectedDirectionBits::all_normal(8, ProtectionMode::Secded);
        assert_eq!(p.storage_bits(), 8 + 5);
        assert_eq!(p.check_storage_bits(), 5);
        let none = ProtectedDirectionBits::all_normal(8, ProtectionMode::None);
        assert_eq!(none.storage_bits(), 8);
        assert_eq!(none.verdict(), ProtectionVerdict::Clean);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn upsetting_missing_check_bit_panics() {
        ProtectedDirectionBits::all_normal(8, ProtectionMode::Parity).upset_check(1);
    }

    #[test]
    fn display_names_mode() {
        let p = ProtectedDirectionBits::all_normal(4, ProtectionMode::Parity);
        assert_eq!(p.to_string(), "0000 [parity]");
    }

    #[test]
    fn history_tracks_plain_counters_under_legal_updates() {
        let mut plain = AccessHistory::new();
        let mut protected = ProtectedHistory::new(15, ProtectionMode::Secded);
        for i in 0..15u32 {
            let done_plain = plain.record(i % 4 == 0, 15);
            let done_prot = protected.record(i % 4 == 0);
            assert_eq!(done_plain, done_prot, "access {i}");
            assert_eq!(plain.accesses(), protected.accesses());
            assert_eq!(plain.writes(), protected.writes());
            assert_eq!(plain.reads(), protected.reads());
            assert_eq!(protected.verdict(), ProtectionVerdict::Clean);
        }
        protected.reset();
        plain.reset();
        assert_eq!(protected.to_history(), plain);
    }

    #[test]
    fn history_secded_corrects_any_single_counter_upset() {
        for window in [7u32, 15, 63] {
            let mut reference = ProtectedHistory::new(window, ProtectionMode::Secded);
            for i in 0..window / 2 {
                reference.record(i % 3 == 0);
            }
            for bit in 0..reference.data_bits() {
                let mut h = reference;
                h.upset_bit(bit);
                assert_eq!(
                    h.verify_and_repair(),
                    ProtectionVerdict::CorrectedData(bit),
                    "window={window} bit={bit}"
                );
                assert_eq!(h, reference, "repair must restore the counters");
            }
            for bit in 0..reference.check_storage_bits() {
                let mut h = reference;
                h.upset_check(bit);
                assert_eq!(
                    h.verify_and_repair(),
                    ProtectionVerdict::CorrectedCheck,
                    "window={window} check bit={bit}"
                );
                assert_eq!(h, reference);
            }
        }
    }

    #[test]
    fn history_parity_detects_single_upsets_only() {
        let mut h = ProtectedHistory::new(15, ProtectionMode::Parity);
        h.record(true);
        h.upset_bit(2);
        assert_eq!(h.verify_and_repair(), ProtectionVerdict::Uncorrectable);
        h.upset_bit(5); // second upset cancels the parity: the blind spot
        assert_eq!(h.verify_and_repair(), ProtectionVerdict::Clean);
    }

    #[test]
    fn history_unprotected_upsets_are_silent() {
        let mut h = ProtectedHistory::new(15, ProtectionMode::None);
        h.record(false);
        h.upset_bit(3); // A_num: 1 -> 9
        assert_eq!(h.accesses(), 9);
        assert_eq!(h.verify_and_repair(), ProtectionVerdict::Clean, "silent");
        assert_eq!(h.accesses(), 9, "nothing was repaired");
    }

    #[test]
    fn history_record_never_panics_after_upsets() {
        // An upset can push A_num past the window with no reset; record
        // must saturate and fire the window, not panic like the plain
        // AccessHistory contract would.
        let mut h = ProtectedHistory::new(15, ProtectionMode::None);
        h.upset_bit(3); // A_num = 8
        h.upset_bit(2); // A_num = 12
        h.upset_bit(1); // A_num = 14
        assert!(h.record(false), "A_num reaches 15: window fires");
        assert!(h.record(false), "saturated at 15, still firing");
        assert_eq!(h.accesses(), 15);
        // Wr_num upsets can exceed A_num; reads() saturates.
        let mut w = ProtectedHistory::new(15, ProtectionMode::None);
        w.upset_bit(w.counter_bits() + 3); // Wr_num = 8
        assert_eq!(w.reads(), 0);
    }

    #[test]
    fn history_storage_accounting() {
        // W=15: two 4-bit counters -> 8 data bits, same code sizes as an
        // 8-partition direction vector.
        let h = ProtectedHistory::new(15, ProtectionMode::Secded);
        assert_eq!(h.data_bits(), AccessHistory::storage_bits(15));
        assert_eq!(h.check_storage_bits(), 5);
        assert_eq!(h.storage_bits(), 13);
        assert_eq!(
            ProtectedHistory::new(15, ProtectionMode::None).storage_bits(),
            8
        );
    }

    #[test]
    fn history_from_raw_round_trips() {
        let plain = AccessHistory::from_raw(9, 4);
        let h = ProtectedHistory::from_history(plain, 15, ProtectionMode::Secded);
        assert_eq!(h.verdict(), ProtectionVerdict::Clean);
        assert_eq!(h.to_history(), plain);
        assert_eq!(h.to_string(), "A=9/15 Wr=4 [secded]");
    }
}

//! Protection of the direction ("D") metadata: parity and SECDED.
//!
//! The direction bits are the cache's single point of silent failure: a
//! soft-error upset in one D bit makes an entire partition decode
//! inverted with zero detection (experiment `fig13`). This module adds
//! the two classic code points over the per-line direction vector:
//!
//! * [`ProtectionMode::Parity`] — one even-parity bit over the D vector.
//!   Detects every odd-weight upset (in particular all single upsets),
//!   corrects nothing, and misses even-weight upsets.
//! * [`ProtectionMode::Secded`] — an extended Hamming code: corrects any
//!   single-bit upset (in the D vector *or* in the check bits) and
//!   detects all double upsets.
//!
//! [`ProtectedDirectionBits`] bundles a [`DirectionBits`] vector with its
//! check bits and recomputes them on every *legal* mutation; soft errors
//! are modelled by the `upset_*` methods, which corrupt state without
//! touching the check bits — exactly what a particle strike does.

use std::fmt;
use std::ops::Deref;

use serde::{Deserialize, Serialize};

use crate::direction::{DirectionBits, EncodingDirection};

/// How (and whether) the per-line direction vector is protected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ProtectionMode {
    /// No protection: upsets corrupt silently (the seed behaviour).
    #[default]
    None,
    /// One even-parity bit over the direction vector: detect-only.
    Parity,
    /// Extended Hamming (SECDED): single-error correct, double-error
    /// detect, over direction vector plus check bits.
    Secded,
}

impl ProtectionMode {
    /// Check bits stored per line for a `partitions`-bit direction vector.
    pub fn check_bits(self, partitions: u32) -> u32 {
        match self {
            ProtectionMode::None => 0,
            ProtectionMode::Parity => 1,
            ProtectionMode::Secded => hamming_parity_bits(partitions) + 1,
        }
    }

    /// Computes the check word for a direction mask.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is out of `1..=64`.
    pub fn encode(self, mask: u64, partitions: u32) -> u64 {
        assert!(
            (1..=64).contains(&partitions),
            "partition count must be in 1..=64, got {partitions}"
        );
        match self {
            ProtectionMode::None => 0,
            ProtectionMode::Parity => u64::from(mask.count_ones() & 1),
            ProtectionMode::Secded => secded_encode(mask, partitions),
        }
    }
}

impl fmt::Display for ProtectionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectionMode::None => f.write_str("none"),
            ProtectionMode::Parity => f.write_str("parity"),
            ProtectionMode::Secded => f.write_str("secded"),
        }
    }
}

/// Number of Hamming parity bits `r` needed for `data_bits` data bits:
/// the smallest `r` with `2^r >= data_bits + r + 1`.
fn hamming_parity_bits(data_bits: u32) -> u32 {
    let mut r = 0u32;
    while (1u32 << r) < data_bits + r + 1 {
        r += 1;
    }
    r
}

/// The 1-based codeword position of data bit `i`: the `(i + 1)`-th
/// non-power-of-two position.
fn data_position(i: u32) -> u32 {
    let mut pos = 1u32;
    let mut seen = 0u32;
    loop {
        if !pos.is_power_of_two() {
            if seen == i {
                return pos;
            }
            seen += 1;
        }
        pos += 1;
    }
}

/// The data-bit index stored at codeword position `pos`, or `None` if
/// `pos` is a parity position or beyond the codeword.
fn data_index_at(pos: u32, data_bits: u32, parity_bits: u32) -> Option<u32> {
    if pos == 0 || pos.is_power_of_two() || pos > data_bits + parity_bits {
        return None;
    }
    // Data bits fill non-power positions in order; the index is the
    // count of non-power positions strictly below `pos`.
    let below = pos - 1;
    let powers_below = below.checked_ilog2().map_or(0, |l| l + 1);
    let idx = below - powers_below;
    (idx < data_bits).then_some(idx)
}

/// Extended-Hamming check word for `mask` (low `data_bits` significant):
/// bits `0..r` hold the Hamming parities (parity `j` covers codeword
/// positions with bit `j` set), bit `r` holds the overall parity over
/// data plus Hamming parities.
fn secded_encode(mask: u64, data_bits: u32) -> u64 {
    let r = hamming_parity_bits(data_bits);
    let mut parities = 0u64;
    for i in 0..data_bits {
        if mask >> i & 1 == 1 {
            let pos = data_position(i);
            for j in 0..r {
                if pos >> j & 1 == 1 {
                    parities ^= 1 << j;
                }
            }
        }
    }
    let overall = (mask.count_ones() + parities.count_ones()) & 1;
    parities | (u64::from(overall) << r)
}

/// The outcome of verifying (and possibly repairing) protected metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectionVerdict {
    /// Check bits match the direction vector.
    Clean,
    /// A single upset in direction bit `p` was located and repaired in
    /// the metadata register. The caller must restore the partition's
    /// decoded view (the data array itself was never wrong).
    CorrectedData(u32),
    /// A single upset in the check bits themselves was repaired; the
    /// direction vector (and therefore the data) was never wrong.
    CorrectedCheck,
    /// A fault was detected but cannot be located (parity mode, or a
    /// multi-bit upset under SECDED). The direction vector can no longer
    /// be trusted.
    Uncorrectable,
}

impl ProtectionVerdict {
    /// `true` when a fault was detected (whether or not it was repaired).
    pub fn detected(self) -> bool {
        self != ProtectionVerdict::Clean
    }
}

/// A [`DirectionBits`] vector bundled with its protection check bits.
///
/// Legal mutations ([`set`](Self::set), [`toggle`](Self::toggle),
/// [`apply_flips`](Self::apply_flips), [`normalize`](Self::normalize))
/// recompute the check word; soft errors are injected with
/// [`upset_direction`](Self::upset_direction) /
/// [`upset_check`](Self::upset_check), which corrupt state *without*
/// updating the check bits. [`verify_and_repair`](Self::verify_and_repair)
/// then plays the decoder.
///
/// # Example
///
/// ```
/// use cnt_encoding::{ProtectedDirectionBits, ProtectionMode, ProtectionVerdict};
///
/// let mut dirs = ProtectedDirectionBits::all_normal(8, ProtectionMode::Secded);
/// dirs.toggle(3); // legal update: check bits follow
/// assert_eq!(dirs.verify_and_repair(), ProtectionVerdict::Clean);
///
/// dirs.upset_direction(5); // soft error: check bits do NOT follow
/// assert_eq!(dirs.verify_and_repair(), ProtectionVerdict::CorrectedData(5));
/// assert!(!dirs.is_inverted(5), "the upset was rolled back");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProtectedDirectionBits {
    dirs: DirectionBits,
    mode: ProtectionMode,
    check: u64,
}

impl ProtectedDirectionBits {
    /// Wraps a direction vector, computing its check bits.
    pub fn new(dirs: DirectionBits, mode: ProtectionMode) -> Self {
        let check = mode.encode(dirs.mask(), dirs.partitions());
        ProtectedDirectionBits { dirs, mode, check }
    }

    /// All partitions normal, check bits consistent.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is out of `1..=64`.
    pub fn all_normal(partitions: u32, mode: ProtectionMode) -> Self {
        ProtectedDirectionBits::new(DirectionBits::all_normal(partitions), mode)
    }

    /// The protected direction vector.
    pub fn bits(&self) -> &DirectionBits {
        &self.dirs
    }

    /// The protection mode.
    pub fn mode(&self) -> ProtectionMode {
        self.mode
    }

    /// The stored check word.
    pub fn check(&self) -> u64 {
        self.check
    }

    /// Check bits stored alongside this vector.
    pub fn check_storage_bits(&self) -> u32 {
        self.mode.check_bits(self.dirs.partitions())
    }

    /// One-bits currently stored in the check word (for energy pricing).
    pub fn check_ones(&self) -> u32 {
        self.check.count_ones()
    }

    /// Total metadata storage: direction bits plus check bits.
    pub fn storage_bits(&self) -> u32 {
        self.dirs.storage_bits() + self.check_storage_bits()
    }

    /// Legal update: sets partition `p`'s direction and recomputes the
    /// check bits.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set(&mut self, p: u32, direction: EncodingDirection) {
        self.dirs.set(p, direction);
        self.recompute();
    }

    /// Legal update: flips partition `p`'s direction and recomputes the
    /// check bits.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn toggle(&mut self, p: u32) {
        self.dirs.toggle(p);
        self.recompute();
    }

    /// Legal update: applies a flip mask and recomputes the check bits.
    ///
    /// # Panics
    ///
    /// Panics if the flip mask has bits above the partition count.
    pub fn apply_flips(&mut self, flips: u64) {
        self.dirs.apply_flips(flips);
        self.recompute();
    }

    /// Legal update: forces every partition back to `Normal` (the
    /// fallback-baseline degradation) and recomputes the check bits.
    pub fn normalize(&mut self) {
        self.dirs = DirectionBits::all_normal(self.dirs.partitions());
        self.recompute();
    }

    /// Soft error: flips direction bit `p` *without* updating the check
    /// bits (what a particle strike on the D register does).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn upset_direction(&mut self, p: u32) {
        self.dirs.toggle(p);
    }

    /// Soft error: flips check bit `bit` *without* updating anything
    /// else.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not a stored check bit under this mode.
    pub fn upset_check(&mut self, bit: u32) {
        assert!(
            bit < self.check_storage_bits(),
            "check bit {bit} out of range for {} mode",
            self.mode
        );
        self.check ^= 1 << bit;
    }

    /// Verifies the check bits against the direction vector, repairing
    /// the metadata register when the code allows it.
    ///
    /// For [`ProtectionVerdict::CorrectedData`] the direction bit has
    /// already been rolled back here, but the *caller* owns the decoded
    /// data view and must restore it too. All other verdicts leave the
    /// direction vector as it was.
    pub fn verify_and_repair(&mut self) -> ProtectionVerdict {
        let verdict = self.verdict();
        match verdict {
            ProtectionVerdict::CorrectedData(p) => {
                self.dirs.toggle(p);
                self.recompute();
            }
            ProtectionVerdict::CorrectedCheck => self.recompute(),
            ProtectionVerdict::Clean | ProtectionVerdict::Uncorrectable => {}
        }
        verdict
    }

    /// The decoder's verdict without mutating anything.
    pub fn verdict(&self) -> ProtectionVerdict {
        let d = self.dirs.partitions();
        let mask = self.dirs.mask();
        match self.mode {
            ProtectionMode::None => ProtectionVerdict::Clean,
            ProtectionMode::Parity => {
                if self.mode.encode(mask, d) == self.check {
                    ProtectionVerdict::Clean
                } else {
                    ProtectionVerdict::Uncorrectable
                }
            }
            ProtectionMode::Secded => {
                let r = hamming_parity_bits(d);
                let expected = secded_encode(mask, d);
                // Syndrome: which Hamming parities disagree with the data.
                let syndrome = ((expected ^ self.check) & ((1 << r) - 1)) as u32;
                // Overall parity over the *received* codeword: data bits,
                // stored Hamming parities, stored overall bit.
                let stored_parities = self.check & ((1 << r) - 1);
                let stored_overall = (self.check >> r & 1) as u32;
                let overall =
                    (mask.count_ones() + stored_parities.count_ones() + stored_overall) & 1;
                match (syndrome, overall) {
                    (0, 0) => ProtectionVerdict::Clean,
                    // Odd overall parity: a single upset at codeword
                    // position `syndrome` (0 = the overall bit itself).
                    (0, _) => ProtectionVerdict::CorrectedCheck,
                    (s, 1) => {
                        if s.is_power_of_two() && s.trailing_zeros() < r {
                            ProtectionVerdict::CorrectedCheck
                        } else {
                            match data_index_at(s, d, r) {
                                Some(i) => ProtectionVerdict::CorrectedData(i),
                                // Syndrome points outside the codeword:
                                // must be a multi-bit upset.
                                None => ProtectionVerdict::Uncorrectable,
                            }
                        }
                    }
                    // Non-zero syndrome with even overall parity: double
                    // upset.
                    (_, _) => ProtectionVerdict::Uncorrectable,
                }
            }
        }
    }

    fn recompute(&mut self) {
        self.check = self.mode.encode(self.dirs.mask(), self.dirs.partitions());
    }
}

impl Deref for ProtectedDirectionBits {
    type Target = DirectionBits;
    fn deref(&self) -> &DirectionBits {
        &self.dirs
    }
}

impl fmt::Display for ProtectedDirectionBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.dirs, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_bit_counts_match_theory() {
        // Parity: always 1. SECDED: r Hamming bits + overall.
        assert_eq!(ProtectionMode::None.check_bits(8), 0);
        assert_eq!(ProtectionMode::Parity.check_bits(8), 1);
        assert_eq!(ProtectionMode::Secded.check_bits(1), 3); // r=2
        assert_eq!(ProtectionMode::Secded.check_bits(4), 4); // r=3
        assert_eq!(ProtectionMode::Secded.check_bits(8), 5); // r=4
        assert_eq!(ProtectionMode::Secded.check_bits(11), 5); // r=4
        assert_eq!(ProtectionMode::Secded.check_bits(64), 8); // r=7
    }

    #[test]
    fn data_positions_skip_parity_slots() {
        // Codeword positions 3, 5, 6, 7, 9, ... carry data.
        assert_eq!(data_position(0), 3);
        assert_eq!(data_position(1), 5);
        assert_eq!(data_position(2), 6);
        assert_eq!(data_position(3), 7);
        assert_eq!(data_position(4), 9);
        for i in 0..64 {
            let pos = data_position(i);
            assert_eq!(data_index_at(pos, 64, 7), Some(i));
        }
        assert_eq!(data_index_at(4, 64, 7), None, "parity position");
        assert_eq!(data_index_at(0, 64, 7), None);
        assert_eq!(data_index_at(72, 64, 7), None, "beyond the codeword");
    }

    #[test]
    fn parity_detects_single_upsets_only() {
        let mut p = ProtectedDirectionBits::new(
            DirectionBits::from_mask(0b1010, 8),
            ProtectionMode::Parity,
        );
        assert_eq!(p.verify_and_repair(), ProtectionVerdict::Clean);
        p.upset_direction(0);
        assert_eq!(p.verify_and_repair(), ProtectionVerdict::Uncorrectable);
        // A second upset cancels the parity: the classic blind spot.
        p.upset_direction(5);
        assert_eq!(p.verify_and_repair(), ProtectionVerdict::Clean);
    }

    #[test]
    fn parity_covers_its_own_check_bit() {
        let mut p = ProtectedDirectionBits::all_normal(8, ProtectionMode::Parity);
        p.upset_check(0);
        assert_eq!(p.verify_and_repair(), ProtectionVerdict::Uncorrectable);
    }

    #[test]
    fn secded_corrects_any_single_direction_upset() {
        for partitions in [1u32, 3, 8, 13, 64] {
            for bit in 0..partitions {
                let mask = 0x5A5A_5A5A_5A5A_5A5A
                    & if partitions == 64 {
                        u64::MAX
                    } else {
                        (1 << partitions) - 1
                    };
                let reference = DirectionBits::from_mask(mask, partitions);
                let mut p = ProtectedDirectionBits::new(reference, ProtectionMode::Secded);
                p.upset_direction(bit);
                assert_eq!(
                    p.verify_and_repair(),
                    ProtectionVerdict::CorrectedData(bit),
                    "partitions={partitions} bit={bit}"
                );
                assert_eq!(*p.bits(), reference, "repair must restore the vector");
                assert_eq!(p.verify_and_repair(), ProtectionVerdict::Clean);
            }
        }
    }

    #[test]
    fn secded_corrects_check_bit_upsets() {
        for bit in 0..ProtectionMode::Secded.check_bits(8) {
            let mut p = ProtectedDirectionBits::new(
                DirectionBits::from_mask(0b0110_0001, 8),
                ProtectionMode::Secded,
            );
            let reference = *p.bits();
            p.upset_check(bit);
            assert_eq!(
                p.verify_and_repair(),
                ProtectionVerdict::CorrectedCheck,
                "check bit {bit}"
            );
            assert_eq!(*p.bits(), reference, "data was never wrong");
            assert_eq!(p.verify_and_repair(), ProtectionVerdict::Clean);
        }
    }

    #[test]
    fn secded_detects_double_upsets() {
        let mut p = ProtectedDirectionBits::all_normal(8, ProtectionMode::Secded);
        p.upset_direction(1);
        p.upset_direction(6);
        assert_eq!(p.verify_and_repair(), ProtectionVerdict::Uncorrectable);
        // Mixed data + check double upsets are detected too.
        let mut q = ProtectedDirectionBits::all_normal(8, ProtectionMode::Secded);
        q.upset_direction(3);
        q.upset_check(0);
        assert_eq!(q.verify_and_repair(), ProtectionVerdict::Uncorrectable);
    }

    #[test]
    fn legal_updates_keep_the_code_clean() {
        let mut p = ProtectedDirectionBits::all_normal(8, ProtectionMode::Secded);
        p.set(2, EncodingDirection::Inverted);
        p.toggle(7);
        p.apply_flips(0b0001_1000);
        assert_eq!(p.verdict(), ProtectionVerdict::Clean);
        p.normalize();
        assert!(p.all_normal_dirs());
        assert_eq!(p.verdict(), ProtectionVerdict::Clean);
    }

    #[test]
    fn storage_accounting() {
        let p = ProtectedDirectionBits::all_normal(8, ProtectionMode::Secded);
        assert_eq!(p.storage_bits(), 8 + 5);
        assert_eq!(p.check_storage_bits(), 5);
        let none = ProtectedDirectionBits::all_normal(8, ProtectionMode::None);
        assert_eq!(none.storage_bits(), 8);
        assert_eq!(none.verdict(), ProtectionVerdict::Clean);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn upsetting_missing_check_bit_panics() {
        ProtectedDirectionBits::all_normal(8, ProtectionMode::Parity).upset_check(1);
    }

    #[test]
    fn display_names_mode() {
        let p = ProtectedDirectionBits::all_normal(4, ProtectionMode::Parity);
        assert_eq!(p.to_string(), "0000 [parity]");
    }
}

//! The prediction thresholds of Equations (1)–(6).
//!
//! Notation (per window of `W` accesses on one line/partition of `L` bits
//! holding `N₁` stored ones, with `Wr` writes and `R = W − Wr` reads):
//!
//! ```text
//! keep(N₁)   = R·(N₁·E_rd1 + (L−N₁)·E_rd0) + Wr·(N₁·E_wr1 + (L−N₁)·E_wr0)   Eq. 4
//! flip(N₁)   = keep(L−N₁)                                                    Eq. 5
//! E_encode   = N₁·E_wr0 + (L−N₁)·E_wr1      (write the inverted data back)
//! E_save     = R·(E_rd0−E_rd1) − Wr·(E_wr1−E_wr0)     (per-bit gain rate)
//! benefit    = keep − flip − E_encode = (L−2N₁)·E_save − E_encode
//! ```
//!
//! The line should switch direction when `benefit > ΔT · keep`, where `ΔT`
//! is the optional hysteresis margin. Both sides are *linear* in `N₁`, so
//! the rule collapses to a single integer threshold per `Wr` — exactly the
//! paper's precomputed `Th_bit1num[Wr_num]` table (Eq. 6) generalized to
//! `ΔT ≥ 0`.

use std::fmt;

use serde::{Deserialize, Serialize};

use cnt_energy::BitEnergies;

use crate::error::EncodingError;

/// The window-level classification of Algorithm 1 step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Reads dominate: prefer storing ones.
    ReadIntensive,
    /// Writes dominate: prefer storing zeros.
    WriteIntensive,
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPattern::ReadIntensive => f.write_str("read-intensive"),
            AccessPattern::WriteIntensive => f.write_str("write-intensive"),
        }
    }
}

/// The per-`Wr_num` flip rule derived from the energy balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlipRule {
    /// Flipping never pays this window.
    Never,
    /// Flip when the stored popcount is **below** the threshold
    /// (read-intensive windows: too few stored ones).
    FlipBelow(u32),
    /// Flip when the stored popcount is **above** the threshold
    /// (write-intensive windows: too many stored ones).
    FlipAbove(u32),
}

impl FlipRule {
    /// Applies the rule to a stored popcount.
    pub fn should_flip(&self, n1: u32) -> bool {
        match *self {
            FlipRule::Never => false,
            FlipRule::FlipBelow(t) => n1 < t,
            FlipRule::FlipAbove(t) => n1 > t,
        }
    }
}

/// The precomputed threshold table: one [`FlipRule`] per possible `Wr_num`
/// value (0 ..= W), for a region of `L` bits.
///
/// In hardware this is a `W+1`-entry lookup table; the predictor reads the
/// entry for the window's write count and compares it against the bit
/// counter's output, avoiding any runtime arithmetic (the paper's
/// `Th_bit1num` array).
///
/// # Example
///
/// ```
/// use cnt_encoding::ThresholdTable;
/// use cnt_energy::BitEnergies;
///
/// let table = ThresholdTable::new(&BitEnergies::cnfet_default(), 15, 512, 0.0)?;
/// // An all-zero read-only line should obviously be flipped to ones:
/// assert!(table.should_flip(0, 0));
/// // An all-ones read-only line should stay:
/// assert!(!table.should_flip(0, 512));
/// # Ok::<(), cnt_encoding::EncodingError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdTable {
    window: u32,
    region_bits: u32,
    delta_t: f64,
    th_rd: f64,
    rules: Vec<FlipRule>,
}

impl ThresholdTable {
    /// Builds the table for a window of `window` accesses over regions of
    /// `region_bits` bits (the full line for baseline encoding, one
    /// partition for partitioned encoding).
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::WindowTooSmall`] if `window < 2` and
    /// [`EncodingError::BadDeltaT`] if `delta_t` is outside `[0, 1)`.
    pub fn new(
        bits: &BitEnergies,
        window: u32,
        region_bits: u32,
        delta_t: f64,
    ) -> Result<Self, EncodingError> {
        if window < 2 {
            return Err(EncodingError::WindowTooSmall { window });
        }
        if !(0.0..1.0).contains(&delta_t) || delta_t.is_nan() {
            return Err(EncodingError::BadDeltaT { delta_t });
        }
        let rules = (0..=window)
            .map(|wr| Self::rule_for(bits, window, wr, region_bits, delta_t))
            .collect();
        Ok(ThresholdTable {
            window,
            region_bits,
            delta_t,
            th_rd: th_rd(bits, window),
            rules,
        })
    }

    /// The window length `W`.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The region length `L` in bits.
    pub fn region_bits(&self) -> u32 {
        self.region_bits
    }

    /// The hysteresis margin `ΔT`.
    pub fn delta_t(&self) -> f64 {
        self.delta_t
    }

    /// `Th_rd` (Eq. 3): the write-count boundary between read- and
    /// write-intensive classification, `W / (1 + Δrd/Δwr)`.
    pub fn th_rd(&self) -> f64 {
        self.th_rd
    }

    /// Algorithm 1 step 1: classify the window.
    ///
    /// The paper's literal condition is `Wr_num > Th_rd → write-intensive`.
    ///
    /// # Panics
    ///
    /// Panics if `wr_num > W`.
    pub fn pattern(&self, wr_num: u32) -> AccessPattern {
        assert!(wr_num <= self.window, "wr_num {wr_num} exceeds window");
        if f64::from(wr_num) > self.th_rd {
            AccessPattern::WriteIntensive
        } else {
            AccessPattern::ReadIntensive
        }
    }

    /// The precomputed rule for a window that saw `wr_num` writes.
    ///
    /// # Panics
    ///
    /// Panics if `wr_num > W`.
    pub fn rule(&self, wr_num: u32) -> FlipRule {
        assert!(wr_num <= self.window, "wr_num {wr_num} exceeds window");
        self.rules[wr_num as usize]
    }

    /// Algorithm 1 step 2: should a region whose *stored* form holds `n1`
    /// one-bits switch direction, given the window saw `wr_num` writes?
    ///
    /// # Panics
    ///
    /// Panics if `wr_num > W` or `n1 > L`.
    pub fn should_flip(&self, wr_num: u32, n1: u32) -> bool {
        assert!(n1 <= self.region_bits, "n1 {n1} exceeds region bits");
        self.rule(wr_num).should_flip(n1)
    }

    /// The paper's closed-form Eq. 6 threshold
    /// `N₁ = L·(E_save − E_wr1) / (2·E_save − (E_wr1 − E_wr0))`, as a real
    /// number, or `None` when the denominator vanishes. Provided for
    /// comparison with the exact rule table (they agree when `ΔT = 0`; see
    /// the tests).
    pub fn paper_threshold(
        bits: &BitEnergies,
        window: u32,
        wr_num: u32,
        region_bits: u32,
    ) -> Option<f64> {
        let e = EnergyTerms::new(bits, window, wr_num);
        let denom = 2.0 * e.e_save - (e.wr1 - e.wr0);
        if denom.abs() < 1e-12 {
            return None;
        }
        Some(f64::from(region_bits) * (e.e_save - e.wr1) / denom)
    }

    /// Exact per-`N₁` benefit of flipping: `keep − flip − E_encode − ΔT·keep`
    /// in femtojoules. Positive means the switch pays off. Exposed for
    /// oracle studies and tests.
    pub fn flip_benefit(&self, bits: &BitEnergies, wr_num: u32, n1: u32) -> f64 {
        let e = EnergyTerms::new(bits, self.window, wr_num);
        e.benefit(self.region_bits, n1) - self.delta_t * e.keep(self.region_bits, n1)
    }

    /// Exports the table as the ROM contents a hardware implementation
    /// would synthesize: one `$readmemh`-style hex word per `Wr_num`
    /// entry, encoding the rule in `⌈log₂(L+2)⌉ + 2` bits —
    /// `{mode[1:0], threshold}` with mode `00` = never, `01` = flip-below,
    /// `10` = flip-above.
    ///
    /// The paper: "the array can be implemented with a table that has W
    /// entries. It returns the exact bit number threshold given Wr_num."
    ///
    /// # Example
    ///
    /// ```
    /// use cnt_encoding::ThresholdTable;
    /// use cnt_energy::BitEnergies;
    ///
    /// let table = ThresholdTable::new(&BitEnergies::cnfet_default(), 15, 64, 0.0)?;
    /// let rom = table.to_rom_hex();
    /// assert_eq!(rom.lines().count(), 16, "one entry per Wr_num in 0..=W");
    /// # Ok::<(), cnt_encoding::EncodingError>(())
    /// ```
    pub fn to_rom_hex(&self) -> String {
        // Threshold field width: enough for 0..=L+1.
        let threshold_bits = 32 - (self.region_bits + 2).leading_zeros();
        let hex_digits = ((threshold_bits + 2).div_ceil(4)) as usize;
        let mut out = String::new();
        for wr in 0..=self.window {
            let (mode, threshold) = match self.rule(wr) {
                FlipRule::Never => (0u32, 0u32),
                FlipRule::FlipBelow(t) => (1, t),
                FlipRule::FlipAbove(t) => (2, t),
            };
            let word = (mode << threshold_bits) | threshold;
            out.push_str(&format!("{word:0hex_digits$x}\n"));
        }
        out
    }

    fn rule_for(bits: &BitEnergies, window: u32, wr_num: u32, l: u32, delta_t: f64) -> FlipRule {
        let e = EnergyTerms::new(bits, window, wr_num);
        let lf = f64::from(l);
        // f(n1) = benefit(n1) − ΔT·keep(n1) = slope·n1 + intercept, with
        // benefit(n1) = L·(e_save − wr1) + n1·(wr1 − wr0 − 2·e_save)
        // keep(n1)    = L·(R·rd0 + Wr·wr0) + n1·(−e_save)
        let slope = (e.wr1 - e.wr0 - 2.0 * e.e_save) + delta_t * e.e_save;
        let intercept = lf * (e.e_save - e.wr1) - delta_t * lf * (e.r * e.rd0 + e.wr * e.wr0);
        const EPS: f64 = 1e-12;
        if slope.abs() < EPS {
            // Constant benefit: flip always or never. "Always" cannot occur
            // with physical energies (E_encode > 0 forces intercept < 0 at
            // the balance point), but handle it for robustness.
            return if intercept > 0.0 {
                FlipRule::FlipBelow(l + 1)
            } else {
                FlipRule::Never
            };
        }
        let crossing = -intercept / slope;
        if slope < 0.0 {
            // f > 0 for n1 < crossing: read-intensive shape.
            if crossing <= 0.0 {
                FlipRule::Never
            } else {
                // flip iff n1 < ceil(crossing) over the integers, capped at L+1.
                let t = crossing.ceil().min(f64::from(l) + 1.0) as u32;
                if t == 0 {
                    FlipRule::Never
                } else {
                    FlipRule::FlipBelow(t)
                }
            }
        } else {
            // f > 0 for n1 > crossing: write-intensive shape.
            if crossing >= lf {
                FlipRule::Never
            } else {
                let t = crossing.floor().max(-1.0) as i64;
                if t < 0 {
                    FlipRule::FlipAbove(0)
                } else {
                    FlipRule::FlipAbove(t as u32)
                }
            }
        }
    }
}

/// Eq. 3: `Th_rd = W / (1 + Δrd/Δwr)`.
///
/// With the CNFET defaults `Δrd ≈ Δwr`, this sits near `W/2` — the paper's
/// own observation.
pub fn th_rd(bits: &BitEnergies, window: u32) -> f64 {
    let d_rd = bits.delta_read().femtojoules();
    let d_wr = bits.delta_write().femtojoules();
    f64::from(window) / (1.0 + d_rd / d_wr)
}

/// Scalar energy terms for one `(W, Wr)` configuration, in femtojoules.
#[derive(Debug, Clone, Copy)]
struct EnergyTerms {
    r: f64,
    wr: f64,
    rd0: f64,
    rd1: f64,
    wr0: f64,
    wr1: f64,
    e_save: f64,
}

impl EnergyTerms {
    fn new(bits: &BitEnergies, window: u32, wr_num: u32) -> Self {
        assert!(wr_num <= window, "wr_num exceeds window");
        let r = f64::from(window - wr_num);
        let wr = f64::from(wr_num);
        let rd0 = bits.rd0.femtojoules();
        let rd1 = bits.rd1.femtojoules();
        let wr0 = bits.wr0.femtojoules();
        let wr1 = bits.wr1.femtojoules();
        let e_save = r * (rd0 - rd1) - wr * (wr1 - wr0);
        EnergyTerms {
            r,
            wr,
            rd0,
            rd1,
            wr0,
            wr1,
            e_save,
        }
    }

    /// Eq. 4: projected next-window energy if the encoding is kept.
    fn keep(&self, l: u32, n1: u32) -> f64 {
        let n1 = f64::from(n1);
        let l = f64::from(l);
        self.r * (n1 * self.rd1 + (l - n1) * self.rd0)
            + self.wr * (n1 * self.wr1 + (l - n1) * self.wr0)
    }

    /// keep − flip − E_encode.
    fn benefit(&self, l: u32, n1: u32) -> f64 {
        let n1f = f64::from(n1);
        let lf = f64::from(l);
        let flip = self.keep(l, l - n1);
        let e_encode = n1f * self.wr0 + (lf - n1f) * self.wr1;
        self.keep(l, n1) - flip - e_encode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_bits() -> BitEnergies {
        BitEnergies::cnfet_default()
    }

    fn table(window: u32, l: u32, dt: f64) -> ThresholdTable {
        ThresholdTable::new(&default_bits(), window, l, dt).expect("valid table")
    }

    #[test]
    fn th_rd_is_near_half_window() {
        // "Th_rd is roughly half of W" for the default characterization.
        let t = th_rd(&default_bits(), 15);
        assert!((t - 7.5).abs() < 0.5, "Th_rd = {t}");
    }

    #[test]
    fn pattern_classification_follows_th_rd() {
        let t = table(15, 512, 0.0);
        assert_eq!(t.pattern(0), AccessPattern::ReadIntensive);
        assert_eq!(t.pattern(15), AccessPattern::WriteIntensive);
        let boundary = t.th_rd().floor() as u32;
        assert_eq!(t.pattern(boundary), AccessPattern::ReadIntensive);
        assert_eq!(t.pattern(boundary + 1), AccessPattern::WriteIntensive);
    }

    #[test]
    fn read_only_window_rules_are_flip_below() {
        let t = table(15, 512, 0.0);
        match t.rule(0) {
            FlipRule::FlipBelow(thr) => {
                assert!(thr > 0 && thr <= 512, "threshold {thr}");
            }
            other => panic!("expected FlipBelow, got {other:?}"),
        }
    }

    #[test]
    fn write_only_window_rules_are_flip_above() {
        let t = table(15, 512, 0.0);
        match t.rule(15) {
            FlipRule::FlipAbove(thr) => {
                assert!(thr < 512, "threshold {thr}");
            }
            other => panic!("expected FlipAbove, got {other:?}"),
        }
    }

    #[test]
    fn rules_agree_with_brute_force_benefit() {
        // The table must make exactly the decision the energy balance
        // dictates, for every (Wr, N1) pair and several ΔT values.
        let bits = default_bits();
        for &dt in &[0.0, 0.05, 0.2] {
            for &l in &[64u32, 512] {
                let t = ThresholdTable::new(&bits, 15, l, dt).expect("valid");
                for wr in 0..=15u32 {
                    for n1 in 0..=l {
                        let expected = t.flip_benefit(&bits, wr, n1) > 0.0;
                        let got = t.should_flip(wr, n1);
                        // Tolerate disagreement only exactly at the boundary,
                        // where floating-point rounding decides.
                        if expected != got {
                            let b = t.flip_benefit(&bits, wr, n1).abs();
                            assert!(b < 1e-6, "rule mismatch at wr={wr} n1={n1} (benefit {b})");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn paper_formula_matches_exact_rule_at_zero_delta() {
        // Eq. 6 and the linear solve must be the same number whenever the
        // denominator is healthy.
        let bits = default_bits();
        let t = table(15, 512, 0.0);
        for wr in 0..=15u32 {
            let Some(paper) = ThresholdTable::paper_threshold(&bits, 15, wr, 512) else {
                continue;
            };
            match t.rule(wr) {
                FlipRule::FlipBelow(thr) => {
                    assert!(
                        (f64::from(thr) - paper).abs() <= 1.0,
                        "wr={wr}: table {thr} vs paper {paper}"
                    );
                }
                FlipRule::FlipAbove(thr) => {
                    assert!(
                        (f64::from(thr) - paper).abs() <= 1.0,
                        "wr={wr}: table {thr} vs paper {paper}"
                    );
                }
                FlipRule::Never => {
                    // The paper formula can land outside [0, L], meaning no
                    // achievable N1 triggers a flip — consistent with Never.
                    assert!(
                        !(0.0..=512.0).contains(&paper),
                        "wr={wr}: Never but paper threshold {paper} is in range"
                    );
                }
            }
        }
    }

    #[test]
    fn extreme_cases_decide_correctly() {
        let t = table(15, 512, 0.0);
        // Read-only window, all stored zeros: flipping saves a lot.
        assert!(t.should_flip(0, 0));
        // Read-only window, all stored ones: keep.
        assert!(!t.should_flip(0, 512));
        // Write-only window, all stored ones: flip to zeros.
        assert!(t.should_flip(15, 512));
        // Write-only window, all stored zeros: keep.
        assert!(!t.should_flip(15, 0));
    }

    #[test]
    fn balanced_window_keeps_moderate_lines() {
        // Near the Th_rd boundary E_save is small, so only *extreme* bit
        // populations can recoup the re-encoding write; anything moderate
        // must be kept.
        let t = table(15, 512, 0.0);
        let wr = t.th_rd().round() as u32;
        for n1 in [128u32, 192, 256, 320, 384, 448, 512] {
            assert!(
                !t.should_flip(wr, n1),
                "flipped at balanced wr={wr}, n1={n1}"
            );
        }
    }

    #[test]
    fn hysteresis_only_shrinks_flip_region() {
        let strict = table(15, 512, 0.0);
        let lenient = table(15, 512, 0.3);
        for wr in 0..=15u32 {
            for n1 in (0..=512u32).step_by(16) {
                if lenient.should_flip(wr, n1) {
                    assert!(
                        strict.should_flip(wr, n1),
                        "ΔT added flips at wr={wr}, n1={n1}"
                    );
                }
            }
        }
    }

    #[test]
    fn validation_errors() {
        let bits = default_bits();
        assert!(matches!(
            ThresholdTable::new(&bits, 1, 512, 0.0),
            Err(EncodingError::WindowTooSmall { .. })
        ));
        assert!(matches!(
            ThresholdTable::new(&bits, 15, 512, 1.0),
            Err(EncodingError::BadDeltaT { .. })
        ));
        assert!(ThresholdTable::new(&bits, 15, 512, -0.1).is_err());
    }

    #[test]
    fn flip_rule_application() {
        assert!(!FlipRule::Never.should_flip(0));
        assert!(FlipRule::FlipBelow(10).should_flip(9));
        assert!(!FlipRule::FlipBelow(10).should_flip(10));
        assert!(FlipRule::FlipAbove(10).should_flip(11));
        assert!(!FlipRule::FlipAbove(10).should_flip(10));
    }

    #[test]
    fn rom_export_round_trips_the_rules() {
        let t = table(15, 64, 0.1);
        let rom = t.to_rom_hex();
        let lines: Vec<&str> = rom.lines().collect();
        assert_eq!(lines.len(), 16);
        // threshold field: ceil(log2(64+2)) = 7 bits; +2 mode bits = 9 -> 3 hex digits.
        for (wr, line) in lines.iter().enumerate() {
            assert_eq!(line.len(), 3, "entry {wr}: `{line}`");
            let word = u32::from_str_radix(line, 16).expect("valid hex");
            let mode = word >> 7;
            let threshold = word & 0x7F;
            let expect = t.rule(wr as u32);
            match mode {
                0 => assert_eq!(expect, FlipRule::Never),
                1 => assert_eq!(expect, FlipRule::FlipBelow(threshold)),
                2 => assert_eq!(expect, FlipRule::FlipAbove(threshold)),
                other => panic!("invalid mode {other}"),
            }
        }
    }

    #[test]
    fn symmetric_energies_never_flip() {
        // A CMOS-like symmetric cell gains nothing from inversion.
        let bits = BitEnergies::cmos_default();
        let t = ThresholdTable::new(&bits, 15, 512, 0.0).expect("valid");
        for wr in 0..=15u32 {
            for n1 in (0..=512u32).step_by(64) {
                assert!(!t.should_flip(wr, n1), "CMOS flip at wr={wr}, n1={n1}");
            }
        }
    }
}

//! Per-line access-history counters (the "H" metadata bits).

use serde::{Deserialize, Serialize};

/// The two saturating window counters each cache line carries:
/// `A_num` (accesses this window) and `Wr_num` (writes this window).
///
/// When `A_num` reaches the window length `W`, the predictor runs and the
/// counters reset (Algorithm 1). The hardware cost is `2 · ⌈log₂(W+1)⌉`
/// bits per line, reported by [`storage_bits`](AccessHistory::storage_bits).
///
/// # Example
///
/// ```
/// use cnt_encoding::AccessHistory;
///
/// let mut h = AccessHistory::new();
/// for i in 0..14 {
///     assert!(!h.record(i % 3 == 0, 15), "window not yet full");
/// }
/// assert!(h.record(false, 15), "15th access completes the window");
/// assert_eq!(h.writes(), 5);
/// h.reset();
/// assert_eq!(h.accesses(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessHistory {
    a_num: u32,
    wr_num: u32,
}

impl AccessHistory {
    /// Fresh counters (both zero).
    pub fn new() -> Self {
        AccessHistory::default()
    }

    /// Rebuilds counters from raw values (checkpoint restore, protected
    /// decode).
    ///
    /// # Panics
    ///
    /// Panics if `wr_num > a_num` — more writes than accesses is not a
    /// state [`record`](Self::record) can produce.
    pub fn from_raw(a_num: u32, wr_num: u32) -> Self {
        assert!(
            wr_num <= a_num,
            "wr_num {wr_num} exceeds a_num {a_num}: not a reachable history"
        );
        AccessHistory { a_num, wr_num }
    }

    /// `A_num`: accesses recorded this window.
    pub fn accesses(&self) -> u32 {
        self.a_num
    }

    /// `Wr_num`: writes recorded this window.
    pub fn writes(&self) -> u32 {
        self.wr_num
    }

    /// Reads recorded this window.
    pub fn reads(&self) -> u32 {
        self.a_num - self.wr_num
    }

    /// Records one access; returns `true` when this access fills the
    /// window (i.e. `A_num` reached `window`), at which point the caller
    /// should run the predictor and then [`reset`](Self::reset).
    ///
    /// # Panics
    ///
    /// Panics if the counters are already at the window boundary (the
    /// caller failed to reset) or `window` is zero.
    pub fn record(&mut self, is_write: bool, window: u32) -> bool {
        assert!(window > 0, "window must be positive");
        assert!(
            self.a_num < window,
            "window already full; reset() was not called"
        );
        self.a_num += 1;
        if is_write {
            self.wr_num += 1;
        }
        self.a_num == window
    }

    /// Clears both counters (end of window, or encoding switched, or the
    /// line was replaced).
    pub fn reset(&mut self) {
        self.a_num = 0;
        self.wr_num = 0;
    }

    /// Hardware storage cost for a window of length `window`:
    /// `2 · ⌈log₂(window + 1)⌉` bits.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn storage_bits(window: u32) -> u32 {
        assert!(window > 0, "window must be positive");
        2 * (32 - window.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reads_and_writes() {
        let mut h = AccessHistory::new();
        h.record(true, 10);
        h.record(false, 10);
        h.record(true, 10);
        assert_eq!(h.accesses(), 3);
        assert_eq!(h.writes(), 2);
        assert_eq!(h.reads(), 1);
    }

    #[test]
    fn window_completion_signalled_exactly_once() {
        let mut h = AccessHistory::new();
        let mut completions = 0;
        for _ in 0..4 {
            if h.record(false, 5) {
                completions += 1;
            }
        }
        assert_eq!(completions, 0);
        assert!(h.record(true, 5));
        h.reset();
        assert_eq!(h.accesses(), 0);
        assert_eq!(h.writes(), 0);
    }

    #[test]
    #[should_panic(expected = "reset() was not called")]
    fn overrunning_window_panics() {
        let mut h = AccessHistory::new();
        for _ in 0..3 {
            h.record(false, 2);
        }
    }

    #[test]
    fn storage_bits_matches_formula() {
        // W = 15 needs 4-bit counters -> 8 bits; W = 16 needs 5 -> 10.
        assert_eq!(AccessHistory::storage_bits(15), 8);
        assert_eq!(AccessHistory::storage_bits(16), 10);
        assert_eq!(AccessHistory::storage_bits(1), 2);
        assert_eq!(AccessHistory::storage_bits(63), 12);
        assert_eq!(AccessHistory::storage_bits(127), 14);
    }
}

//! The cache-line data encoder: full-line and partitioned inversion.
//!
//! In hardware this is the series of inverters with 2:1 multiplexers of the
//! paper's Fig. 1; the partitioned variant of Fig. 2 simply feeds each
//! multiplexer group its own direction bit. In this model the encoder is a
//! pure function from (logical words, direction bits) to stored words.

use serde::{Deserialize, Serialize};

use crate::direction::{DirectionBits, EncodingDirection};
use crate::error::EncodingError;
use crate::popcount::{
    popcount_range, popcount_range_masked, popcount_word_partitions, range_mask_in_word,
};

/// Maximum partitions per line (the direction mask is one `u64`), sizing
/// the stack buffers of the batched per-partition popcount paths.
pub const MAX_PARTITIONS: usize = 64;

/// Which stored bit value the current access pattern prefers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitPreference {
    /// Read-intensive lines prefer storing `1` bits (reads of `1` are cheap).
    MoreOnes,
    /// Write-intensive lines prefer storing `0` bits (writes of `0` are cheap).
    MoreZeros,
}

/// How a line's bits are split into independently-encoded partitions.
///
/// # Example
///
/// ```
/// use cnt_encoding::PartitionLayout;
///
/// let layout = PartitionLayout::new(512, 8)?;
/// assert_eq!(layout.partition_bits(), 64);
/// assert_eq!(layout.range(1), (64, 64));
/// # Ok::<(), cnt_encoding::EncodingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartitionLayout {
    line_bits: u32,
    partitions: u32,
}

impl PartitionLayout {
    /// Creates a layout splitting `line_bits` into `partitions` equal
    /// contiguous ranges.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::BadPartitioning`] when `line_bits` is zero
    /// or not a multiple of 64 (lines are word arrays), when `partitions`
    /// is zero or greater than 64 (the direction mask is one word), or when
    /// the split is not exact.
    pub fn new(line_bits: u32, partitions: u32) -> Result<Self, EncodingError> {
        let err = |reason| EncodingError::BadPartitioning {
            line_bits,
            partitions,
            reason,
        };
        if line_bits == 0 || !line_bits.is_multiple_of(64) {
            return Err(err("line length must be a non-zero multiple of 64 bits"));
        }
        if partitions == 0 || partitions > 64 {
            return Err(err("partition count must be in 1..=64"));
        }
        if !line_bits.is_multiple_of(partitions) {
            return Err(err("partitions must divide the line evenly"));
        }
        let pb = line_bits / partitions;
        if pb < 64 {
            if 64 % pb != 0 {
                return Err(err("sub-word partitions must divide a 64-bit word evenly"));
            }
        } else if !pb.is_multiple_of(64) {
            return Err(err("multi-word partitions must cover whole 64-bit words"));
        }
        Ok(PartitionLayout {
            line_bits,
            partitions,
        })
    }

    /// A single partition covering the whole line (the paper's baseline
    /// full-line encoding).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PartitionLayout::new`].
    pub fn full_line(line_bits: u32) -> Result<Self, EncodingError> {
        PartitionLayout::new(line_bits, 1)
    }

    /// Line length in bits.
    pub fn line_bits(&self) -> u32 {
        self.line_bits
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// Bits per partition.
    pub fn partition_bits(&self) -> u32 {
        self.line_bits / self.partitions
    }

    /// 64-bit words per line.
    pub fn words(&self) -> usize {
        (self.line_bits / 64) as usize
    }

    /// The `(start_bit, len_bits)` range of partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn range(&self, p: u32) -> (u32, u32) {
        assert!(p < self.partitions, "partition {p} out of range");
        let len = self.partition_bits();
        (p * len, len)
    }

    /// The partition containing bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn partition_of_bit(&self, bit: u32) -> u32 {
        assert!(bit < self.line_bits, "bit {bit} out of range");
        bit / self.partition_bits()
    }

    /// The XOR mask that `dirs` applies to word `word_index` of the line:
    /// the union of the in-word ranges of all inverted partitions.
    ///
    /// # Panics
    ///
    /// Panics if `dirs` has a different partition count or `word_index` is
    /// out of range.
    pub fn xor_mask_for_word(&self, dirs: &DirectionBits, word_index: usize) -> u64 {
        assert_eq!(
            dirs.partitions(),
            self.partitions,
            "direction bits mismatch"
        );
        assert!(word_index < self.words(), "word {word_index} out of range");
        // Fast paths: whole-word partitions are the common geometry.
        let pb = self.partition_bits();
        if pb >= 64 {
            let p = (word_index as u32 * 64) / pb;
            return dirs.direction(p).mask64();
        }
        let mut mask = 0u64;
        let per_word = 64 / pb;
        let first = word_index as u32 * per_word;
        for i in 0..per_word {
            let p = first + i;
            if dirs.is_inverted(p) {
                let (start, len) = self.range(p);
                mask |= range_mask_in_word(start, len, word_index);
            }
        }
        mask
    }
}

/// The adaptive encoder: maps logical line contents to stored array
/// contents under a set of direction bits, and chooses directions.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineCodec {
    layout: PartitionLayout,
}

impl LineCodec {
    /// Creates a codec for the given layout.
    pub fn new(layout: PartitionLayout) -> Self {
        LineCodec { layout }
    }

    /// The partition layout.
    pub fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    /// Greedily chooses, per partition, the direction that maximizes the
    /// preferred stored bit value. Ties keep [`EncodingDirection::Normal`]
    /// (no gratuitous inversion).
    ///
    /// # Panics
    ///
    /// Panics if `logical` has the wrong length.
    pub fn choose_directions(&self, logical: &[u64], preference: BitPreference) -> DirectionBits {
        self.check_len(logical);
        let mut dirs = DirectionBits::all_normal(self.layout.partitions);
        let half2 = self.layout.partition_bits(); // compare 2*ones vs bits
        for p in 0..self.layout.partitions {
            let (start, len) = self.layout.range(p);
            let ones = popcount_range(logical, start, len);
            let invert = match preference {
                // Want stored ones: invert when the partition is majority zero.
                BitPreference::MoreOnes => 2 * ones < half2,
                // Want stored zeros: invert when the partition is majority one.
                BitPreference::MoreZeros => 2 * ones > half2,
            };
            if invert {
                dirs.set(p, EncodingDirection::Inverted);
            }
        }
        dirs
    }

    /// Encodes logical words into stored words under `dirs`.
    ///
    /// The transform is an involution: [`decode`](Self::decode) is the same
    /// operation.
    ///
    /// # Panics
    ///
    /// Panics if lengths or partition counts mismatch.
    pub fn apply(&self, logical: &[u64], dirs: &DirectionBits) -> Vec<u64> {
        self.check_len(logical);
        logical
            .iter()
            .enumerate()
            .map(|(w, &word)| word ^ self.layout.xor_mask_for_word(dirs, w))
            .collect()
    }

    /// Encodes in place.
    ///
    /// # Panics
    ///
    /// Panics if lengths or partition counts mismatch.
    pub fn apply_in_place(&self, words: &mut [u64], dirs: &DirectionBits) {
        self.check_len(words);
        for (w, word) in words.iter_mut().enumerate() {
            *word ^= self.layout.xor_mask_for_word(dirs, w);
        }
    }

    /// Decodes stored words back to logical words (same as
    /// [`apply`](Self::apply); inversion is an involution).
    ///
    /// # Panics
    ///
    /// Panics if lengths or partition counts mismatch.
    pub fn decode(&self, stored: &[u64], dirs: &DirectionBits) -> Vec<u64> {
        self.apply(stored, dirs)
    }

    /// The stored form of a single word of the line (the demand-path view:
    /// one word flows through the inverter/mux stage).
    ///
    /// # Panics
    ///
    /// Panics if `word_index` is out of range.
    pub fn stored_word(&self, logical_word: u64, dirs: &DirectionBits, word_index: usize) -> u64 {
        logical_word ^ self.layout.xor_mask_for_word(dirs, word_index)
    }

    /// Popcount of the stored form without materializing it.
    ///
    /// # Panics
    ///
    /// Panics if lengths or partition counts mismatch.
    pub fn stored_popcount(&self, logical: &[u64], dirs: &DirectionBits) -> u32 {
        let mut counts = [0u32; MAX_PARTITIONS];
        let n = self.layout.partitions as usize;
        self.stored_partition_popcounts_into(logical, dirs, &mut counts[..n]);
        counts[..n].iter().sum()
    }

    /// Per-partition popcounts of the *stored* form.
    ///
    /// # Panics
    ///
    /// Panics if lengths or partition counts mismatch.
    pub fn stored_partition_popcounts(&self, logical: &[u64], dirs: &DirectionBits) -> Vec<u32> {
        let mut out = vec![0u32; self.layout.partitions as usize];
        self.stored_partition_popcounts_into(logical, dirs, &mut out);
        out
    }

    /// Batched form of
    /// [`stored_partition_popcounts`](Self::stored_partition_popcounts):
    /// fills `out[p]` with the stored popcount of partition `p` in one
    /// streaming pass over the line (unrolled u64×4 for word-aligned
    /// partitions) instead of one range walk per partition. Sub-word
    /// partitions take the masked scalar reference path.
    ///
    /// This is the per-window demand-path kernel: callers keep a
    /// `[u32; MAX_PARTITIONS]` on the stack, so no allocation happens.
    ///
    /// # Panics
    ///
    /// Panics if lengths or partition counts mismatch, or if `out` does
    /// not hold exactly one slot per partition.
    pub fn stored_partition_popcounts_into(
        &self,
        logical: &[u64],
        dirs: &DirectionBits,
        out: &mut [u32],
    ) {
        self.check_len(logical);
        assert_eq!(
            dirs.partitions(),
            self.layout.partitions,
            "direction bits mismatch"
        );
        assert_eq!(
            out.len(),
            self.layout.partitions as usize,
            "need one output slot per partition"
        );
        let pb = self.layout.partition_bits();
        if pb.is_multiple_of(64) {
            popcount_word_partitions(logical, (pb / 64) as usize, out);
        } else {
            for (p, count) in out.iter_mut().enumerate() {
                let (start, len) = self.layout.range(p as u32);
                *count = popcount_range_masked(logical, start, len);
            }
        }
        for (p, count) in out.iter_mut().enumerate() {
            if dirs.is_inverted(p as u32) {
                *count = pb - *count;
            }
        }
    }

    /// Iterator form of the batched per-partition popcounts: computes all
    /// counts up front into a stack buffer (no allocation), then yields
    /// them in partition order.
    ///
    /// # Panics
    ///
    /// Panics if lengths or partition counts mismatch.
    pub fn stored_partition_popcounts_iter(
        &self,
        logical: &[u64],
        dirs: &DirectionBits,
    ) -> impl Iterator<Item = u32> {
        let mut counts = [0u32; MAX_PARTITIONS];
        let n = self.layout.partitions as usize;
        self.stored_partition_popcounts_into(logical, dirs, &mut counts[..n]);
        counts.into_iter().take(n)
    }

    /// Metadata overhead of this codec per line: one direction bit per
    /// partition.
    pub fn direction_bits_per_line(&self) -> u32 {
        self.layout.partitions
    }

    fn check_len(&self, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.layout.words(),
            "line has {} words, layout expects {}",
            words.len(),
            self.layout.words()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popcount::popcount_words;

    fn codec(partitions: u32) -> LineCodec {
        LineCodec::new(PartitionLayout::new(512, partitions).expect("valid layout"))
    }

    #[test]
    fn layout_validation() {
        assert!(PartitionLayout::new(512, 8).is_ok());
        assert!(PartitionLayout::new(512, 64).is_ok());
        assert!(PartitionLayout::new(512, 0).is_err());
        assert!(PartitionLayout::new(512, 65).is_err());
        assert!(
            PartitionLayout::new(512, 7).is_err(),
            "7 does not divide 512"
        );
        assert!(PartitionLayout::new(100, 2).is_err(), "not a word multiple");
        assert!(PartitionLayout::new(0, 1).is_err());
        // 192/8 = 24-bit partitions straddle words unevenly: rejected.
        assert!(PartitionLayout::new(192, 8).is_err());
        // 192/2 = 96-bit partitions split a word between partitions: rejected.
        assert!(PartitionLayout::new(192, 2).is_err());
        // 192/3 = 64-bit partitions are fine.
        assert!(PartitionLayout::new(192, 3).is_ok());
        let full = PartitionLayout::full_line(512).expect("valid");
        assert_eq!(full.partitions(), 1);
        assert_eq!(full.partition_bits(), 512);
    }

    #[test]
    fn layout_geometry() {
        let l = PartitionLayout::new(512, 8).expect("valid");
        assert_eq!(l.words(), 8);
        assert_eq!(l.range(0), (0, 64));
        assert_eq!(l.range(7), (448, 64));
        assert_eq!(l.partition_of_bit(0), 0);
        assert_eq!(l.partition_of_bit(511), 7);
        // Sub-word partitions.
        let l = PartitionLayout::new(128, 16).expect("valid");
        assert_eq!(l.partition_bits(), 8);
        assert_eq!(l.range(9), (72, 8));
    }

    #[test]
    fn full_line_inversion_for_read_intensive_zeros() {
        // The paper's baseline: mostly-zero data under read preference is
        // inverted wholesale.
        let c = codec(1);
        let logical = [0u64; 8];
        let dirs = c.choose_directions(&logical, BitPreference::MoreOnes);
        assert!(dirs.is_inverted(0));
        let stored = c.apply(&logical, &dirs);
        assert_eq!(popcount_words(&stored), 512);
        assert_eq!(c.decode(&stored, &dirs), logical);
    }

    #[test]
    fn partitioned_encoding_preserves_one_rich_partition() {
        // Fig. 2: a mostly-zero line with one all-ones partition. Full-line
        // inversion would destroy it; partitioned encoding keeps it.
        let mut logical = [0u64; 8];
        logical[6] = u64::MAX; // the "(K-1)th partition"

        let full = codec(1);
        let dirs_full = full.choose_directions(&logical, BitPreference::MoreOnes);
        let stored_full = full.apply(&logical, &dirs_full);

        let part = codec(8);
        let dirs_part = part.choose_directions(&logical, BitPreference::MoreOnes);
        let stored_part = part.apply(&logical, &dirs_part);

        assert!(!dirs_part.is_inverted(6), "one-rich partition stays normal");
        assert!(dirs_part.is_inverted(0));
        assert!(
            popcount_words(&stored_part) > popcount_words(&stored_full),
            "partitioned encoding stores strictly more preferred bits"
        );
        assert_eq!(popcount_words(&stored_part), 512);
    }

    #[test]
    fn write_intensive_prefers_zeros() {
        let c = codec(8);
        let logical = [u64::MAX; 8];
        let dirs = c.choose_directions(&logical, BitPreference::MoreZeros);
        assert_eq!(dirs.inverted_count(), 8);
        assert_eq!(c.stored_popcount(&logical, &dirs), 0);
    }

    #[test]
    fn ties_keep_normal_direction() {
        let c = codec(8);
        let logical = [0x0000_0000_FFFF_FFFFu64; 8]; // exactly half ones
        for pref in [BitPreference::MoreOnes, BitPreference::MoreZeros] {
            let dirs = c.choose_directions(&logical, pref);
            assert!(dirs.all_normal_dirs(), "tie must not invert ({pref:?})");
        }
    }

    #[test]
    fn apply_is_involution_and_in_place_agrees() {
        let c = codec(4);
        let logical: Vec<u64> = (0..8)
            .map(|i| 0x1111_2222_3333_4444u64.wrapping_mul(i + 1))
            .collect();
        let dirs = DirectionBits::from_mask(0b1010, 4);
        let stored = c.apply(&logical, &dirs);
        let mut in_place = logical.clone();
        c.apply_in_place(&mut in_place, &dirs);
        assert_eq!(stored, in_place);
        assert_eq!(c.apply(&stored, &dirs), logical);
    }

    #[test]
    fn stored_word_matches_full_encode() {
        let c = codec(8);
        let logical: Vec<u64> = (0..8u64).map(|i| i * 0x0101_0101_0101_0101).collect();
        let dirs = DirectionBits::from_mask(0b1100_1010, 8);
        let stored = c.apply(&logical, &dirs);
        for w in 0..8 {
            assert_eq!(c.stored_word(logical[w], &dirs, w), stored[w]);
        }
    }

    #[test]
    fn stored_popcount_matches_materialized() {
        let c = LineCodec::new(PartitionLayout::new(128, 16).expect("valid"));
        let logical = [0xDEAD_BEEF_0123_4567u64, 0x0F0F_0F0F_0F0F_0F0F];
        let dirs = DirectionBits::from_mask(0xAAAA, 16);
        let stored = c.apply(&logical, &dirs);
        assert_eq!(c.stored_popcount(&logical, &dirs), popcount_words(&stored));
        let per: u32 = c.stored_partition_popcounts(&logical, &dirs).iter().sum();
        assert_eq!(per, popcount_words(&stored));
    }

    #[test]
    fn sub_word_partitions_encode_correctly() {
        // 128-bit line, 16 partitions of 8 bits: invert only partition 9
        // (bits 72..80, i.e. byte 1 of word 1).
        let c = LineCodec::new(PartitionLayout::new(128, 16).expect("valid"));
        let logical = [0u64, 0];
        let mut dirs = DirectionBits::all_normal(16);
        dirs.set(9, EncodingDirection::Inverted);
        let stored = c.apply(&logical, &dirs);
        assert_eq!(stored[0], 0);
        assert_eq!(stored[1], 0x0000_0000_0000_FF00);
    }

    #[test]
    #[should_panic(expected = "layout expects")]
    fn wrong_line_length_panics() {
        codec(8).apply(&[0u64; 4], &DirectionBits::all_normal(8));
    }

    #[test]
    #[should_panic(expected = "direction bits mismatch")]
    fn wrong_direction_count_panics() {
        codec(8).apply(&[0u64; 8], &DirectionBits::all_normal(4));
    }
}

//! The CNT-Cache contribution: adaptive cache-line encoding with an
//! encoding-direction predictor.
//!
//! CNFET SRAM cells read `1` cheaply and write `0` cheaply (see
//! [`cnt_energy`]). CNT-Cache therefore stores each cache line either
//! *as-is* or *inverted*, choosing per line (and optionally per
//! *partition* of a line) whichever form better matches how the line is
//! used:
//!
//! * read-intensive lines want to **store ones** (cheap reads),
//! * write-intensive lines want to **store zeros** (cheap writes).
//!
//! This crate implements, directly from the paper's Section III:
//!
//! * [`EncodingDirection`] / [`DirectionBits`] — the per-partition
//!   direction metadata ("D" bits),
//! * [`LineCodec`] with a [`PartitionLayout`] — the inverter/mux encoder of
//!   Fig. 1, including the fine-grained partitioned scheme of Fig. 2,
//! * [`AccessHistory`] — the per-line window counters `A_num`/`Wr_num`
//!   ("H" bits),
//! * [`ThresholdTable`] — Equations (1)–(6): `Th_rd` and the precomputed
//!   `Th_bit1num[Wr_num]` flip-threshold table, with the optional `ΔT`
//!   hysteresis margin from the authors' draft notes,
//! * [`DirectionPredictor`] — Algorithm 1 (two-step window prediction),
//! * [`UpdateFifo`] — the data/index FIFOs that defer re-encoding writes to
//!   idle slots,
//! * [`ProtectedDirectionBits`] — optional parity / SECDED protection of
//!   the direction metadata against soft-error upsets.
//!
//! # Example
//!
//! ```
//! use cnt_encoding::{BitPreference, LineCodec, PartitionLayout};
//!
//! // A 512-bit line split into 8 partitions of 64 bits.
//! let layout = PartitionLayout::new(512, 8)?;
//! let codec = LineCodec::new(layout);
//!
//! // A mostly-zero line that will be read a lot: store it inverted so the
//! // array holds mostly ones.
//! let logical = [0u64, 0, 0, 0, 0, 0, 0, u64::MAX];
//! let dirs = codec.choose_directions(&logical, BitPreference::MoreOnes);
//! let stored = codec.apply(&logical, &dirs);
//! // Partition 7 already held all ones, so it stays un-inverted (Fig. 2).
//! assert!(!dirs.is_inverted(7));
//! assert_eq!(codec.decode(&stored, &dirs), logical);
//! # Ok::<(), cnt_encoding::EncodingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod direction;
mod error;
mod fifo;
mod history;
pub mod popcount;
mod predictor;
mod protect;
mod threshold;

pub use codec::{BitPreference, LineCodec, PartitionLayout, MAX_PARTITIONS};
pub use direction::{DirectionBits, EncodingDirection};
pub use error::EncodingError;
pub use fifo::{FifoSnapshot, FifoStats, OverflowPolicy, UpdateFifo};
pub use history::AccessHistory;
pub use predictor::{Decision, DirectionPredictor, PredictorConfig, WindowSummary};
pub use protect::{ProtectedDirectionBits, ProtectedHistory, ProtectionMode, ProtectionVerdict};
pub use threshold::{AccessPattern, FlipRule, ThresholdTable};

//! The encoding-direction predictor (Algorithm 1).
//!
//! Step 1 classifies a just-completed window of accesses as read- or
//! write-intensive; step 2 compares each partition's *stored* bit-'1'
//! count against the precomputed threshold table and decides which
//! partitions should switch direction. The decision is returned to the
//! cache layer, which queues the re-encoding write through an
//! [`UpdateFifo`](crate::UpdateFifo) so the demand path is never stalled.

use serde::{Deserialize, Serialize};

use cnt_energy::BitEnergies;

use crate::codec::{LineCodec, PartitionLayout};
use crate::direction::DirectionBits;
use crate::error::EncodingError;
use crate::history::AccessHistory;
use crate::threshold::{AccessPattern, ThresholdTable};

/// Configuration of the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Window length `W` in accesses (the paper's default checkpoint is 15).
    pub window: u32,
    /// Line length in bits.
    pub line_bits: u32,
    /// Number of encoding partitions per line (1 = full-line encoding).
    pub partitions: u32,
    /// Hysteresis margin `ΔT` in `[0, 1)`; a switch must promise at least
    /// this fraction of the keep-energy as net savings.
    pub delta_t: f64,
}

impl PredictorConfig {
    /// The paper's defaults: `W = 15`, 512-bit lines, 8 partitions, no
    /// hysteresis.
    pub fn paper_default() -> Self {
        PredictorConfig {
            window: 15,
            line_bits: 512,
            partitions: 8,
            delta_t: 0.0,
        }
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig::paper_default()
    }
}

/// Summary of a completed window, produced by [`DirectionPredictor::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSummary {
    /// Writes observed in the window (`Wr_num`).
    pub wr_num: u32,
}

/// The outcome of Algorithm 1 for one line at a window boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Step-1 classification.
    pub pattern: AccessPattern,
    /// Bitmask of partitions that should switch direction (bit `p` set =
    /// flip partition `p`). Zero means the current encoding is kept.
    pub flips: u64,
    /// The direction bits after applying `flips`.
    pub new_directions: DirectionBits,
    /// Net projected energy saving of the switch in femtojoules (already
    /// net of the re-encoding write and the `ΔT` margin), summed over the
    /// flipped partitions. Zero when `flips == 0`.
    pub projected_saving_fj: f64,
}

impl Decision {
    /// `true` if any partition switches.
    pub fn switches(&self) -> bool {
        self.flips != 0
    }
}

/// The encoding-direction predictor: per-line window accounting plus the
/// shared threshold table.
///
/// One predictor instance serves a whole cache; the per-line state
/// ([`AccessHistory`] and [`DirectionBits`]) lives with the lines.
///
/// # Example
///
/// ```
/// use cnt_encoding::{AccessHistory, DirectionBits, DirectionPredictor, PredictorConfig};
/// use cnt_energy::BitEnergies;
///
/// let config = PredictorConfig { window: 4, line_bits: 512, partitions: 8, delta_t: 0.0 };
/// let predictor = DirectionPredictor::new(&BitEnergies::cnfet_default(), config)?;
///
/// let mut history = AccessHistory::new();
/// let dirs = DirectionBits::all_normal(8);
/// let line = [0u64; 8]; // all zeros, read-heavy below
///
/// let mut decision = None;
/// for _ in 0..4 {
///     if let Some(summary) = predictor.observe(&mut history, false) {
///         decision = Some(predictor.decide(summary, &line, &dirs));
///     }
/// }
/// let decision = decision.expect("window of 4 completed");
/// assert!(decision.switches(), "an all-zero read-only line must re-encode");
/// assert_eq!(decision.new_directions.inverted_count(), 8);
/// # Ok::<(), cnt_encoding::EncodingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DirectionPredictor {
    config: PredictorConfig,
    codec: LineCodec,
    table: ThresholdTable,
    bits: BitEnergies,
}

impl DirectionPredictor {
    /// Builds the predictor and its threshold table.
    ///
    /// # Errors
    ///
    /// Returns an [`EncodingError`] if the partition layout, window, or
    /// `ΔT` is invalid.
    pub fn new(bits: &BitEnergies, config: PredictorConfig) -> Result<Self, EncodingError> {
        let layout = PartitionLayout::new(config.line_bits, config.partitions)?;
        let table =
            ThresholdTable::new(bits, config.window, layout.partition_bits(), config.delta_t)?;
        Ok(DirectionPredictor {
            config,
            codec: LineCodec::new(layout),
            table,
            bits: *bits,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// The codec matching this predictor's layout.
    pub fn codec(&self) -> &LineCodec {
        &self.codec
    }

    /// The threshold table (one rule per `Wr_num`, per partition-sized
    /// region).
    pub fn table(&self) -> &ThresholdTable {
        &self.table
    }

    /// Per-line metadata cost in bits: history counters plus direction
    /// bits (the paper's "H&D" field).
    pub fn metadata_bits_per_line(&self) -> u32 {
        AccessHistory::storage_bits(self.config.window) + self.config.partitions
    }

    /// Records one access against a line's history. Returns
    /// `Some(WindowSummary)` when the window completes (the caller should
    /// then run [`decide`](Self::decide) and reset is automatic).
    pub fn observe(&self, history: &mut AccessHistory, is_write: bool) -> Option<WindowSummary> {
        if history.record(is_write, self.config.window) {
            let summary = WindowSummary {
                wr_num: history.writes(),
            };
            history.reset();
            Some(summary)
        } else {
            None
        }
    }

    /// [`observe`](Self::observe) against a *protected* history register.
    ///
    /// Unlike the plain path this never panics on counters an upset has
    /// pushed out of range: the window fires as soon as `A_num` reaches
    /// `W` and `Wr_num` is clamped into `0 ..= W` for the table lookup.
    /// That clamping is the *silent prediction skew* an unprotected
    /// register suffers — the `fig13` history campaign quantifies it —
    /// while a protected register repairs the upset before it gets here.
    ///
    /// # Panics
    ///
    /// Panics if `history` was built for a different window length.
    pub fn observe_protected(
        &self,
        history: &mut crate::ProtectedHistory,
        is_write: bool,
    ) -> Option<WindowSummary> {
        assert_eq!(
            history.window(),
            self.config.window,
            "history register window does not match the predictor's"
        );
        if history.record(is_write) {
            let summary = WindowSummary {
                wr_num: history.writes().min(self.config.window),
            };
            history.reset();
            Some(summary)
        } else {
            None
        }
    }

    /// Algorithm 1 steps 1–2 for one line at a window boundary.
    ///
    /// `logical_line` is the line's logical (decoded) content;
    /// `current_directions` its present encoding. The stored popcount of
    /// each partition is compared against the threshold table.
    ///
    /// # Panics
    ///
    /// Panics if the line length or direction count does not match the
    /// configuration.
    pub fn decide(
        &self,
        summary: WindowSummary,
        logical_line: &[u64],
        current_directions: &DirectionBits,
    ) -> Decision {
        let pattern = self.table.pattern(summary.wr_num);
        // Batched popcount: all partitions counted in one streaming pass
        // over the line into a stack buffer, then the threshold table is
        // consulted per partition — no per-partition range walks.
        let mut stored_counts = [0u32; crate::codec::MAX_PARTITIONS];
        let partitions = self.config.partitions as usize;
        self.codec.stored_partition_popcounts_into(
            logical_line,
            current_directions,
            &mut stored_counts[..partitions],
        );
        let mut flips = 0u64;
        let mut saving = 0.0;
        for (p, &n1) in stored_counts[..partitions].iter().enumerate() {
            if self.table.should_flip(summary.wr_num, n1) {
                flips |= 1 << p;
                saving += self.table.flip_benefit(&self.bits, summary.wr_num, n1);
            }
        }
        let mut new_directions = *current_directions;
        new_directions.apply_flips(flips);
        Decision {
            pattern,
            flips,
            new_directions,
            projected_saving_fj: saving,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor(window: u32, partitions: u32, delta_t: f64) -> DirectionPredictor {
        DirectionPredictor::new(
            &BitEnergies::cnfet_default(),
            PredictorConfig {
                window,
                line_bits: 512,
                partitions,
                delta_t,
            },
        )
        .expect("valid predictor")
    }

    fn run_window(p: &DirectionPredictor, writes: u32) -> WindowSummary {
        let mut history = AccessHistory::new();
        let window = p.config().window;
        let mut out = None;
        for i in 0..window {
            let is_write = i < writes;
            if let Some(s) = p.observe(&mut history, is_write) {
                out = Some(s);
            }
        }
        out.expect("window completed")
    }

    #[test]
    fn observe_resets_history_at_window_end() {
        let p = predictor(4, 8, 0.0);
        let mut h = AccessHistory::new();
        assert!(p.observe(&mut h, true).is_none());
        assert!(p.observe(&mut h, true).is_none());
        assert!(p.observe(&mut h, false).is_none());
        let s = p.observe(&mut h, false).expect("fourth access completes");
        assert_eq!(s.wr_num, 2);
        assert_eq!(h.accesses(), 0, "history must reset after the window");
    }

    #[test]
    fn observe_protected_matches_plain_path_and_clamps_upsets() {
        use crate::{ProtectedHistory, ProtectionMode};
        let p = predictor(4, 8, 0.0);
        let mut plain = AccessHistory::new();
        let mut protected = ProtectedHistory::new(4, ProtectionMode::Secded);
        for i in 0..12 {
            let is_write = i % 3 == 0;
            assert_eq!(
                p.observe(&mut plain, is_write),
                p.observe_protected(&mut protected, is_write),
                "paths diverged at access {i}"
            );
        }
        // An upset-inflated Wr_num is clamped into the table's domain
        // instead of panicking: the skewed-but-running behaviour an
        // unprotected register exhibits.
        let mut upset = ProtectedHistory::new(4, ProtectionMode::None);
        upset.record(true); // A_num = 1, Wr_num = 1
        upset.upset_bit(upset.counter_bits()); // Wr_num 1 -> 0
        upset.upset_bit(upset.counter_bits() + 1); // Wr_num 0 -> 2
        upset.upset_bit(upset.counter_bits() + 2); // Wr_num 2 -> 6 > window
        upset.upset_bit(0); // A_num 1 -> 0
        upset.upset_bit(1); // A_num 0 -> 2, still below the window
        let mut fired = None;
        for _ in 0..4 {
            if let Some(s) = p.observe_protected(&mut upset, true) {
                fired = Some(s);
                break;
            }
        }
        let s = fired.expect("inflated A_num fires the window early");
        assert!(s.wr_num <= 4, "clamped into the table domain");
    }

    #[test]
    fn read_heavy_zero_line_flips_everything() {
        let p = predictor(15, 8, 0.0);
        let s = run_window(&p, 0);
        let line = [0u64; 8];
        let d = p.decide(s, &line, &DirectionBits::all_normal(8));
        assert_eq!(d.pattern, AccessPattern::ReadIntensive);
        assert_eq!(d.flips, 0xFF);
        assert_eq!(d.new_directions.inverted_count(), 8);
        assert!(d.projected_saving_fj > 0.0);
    }

    #[test]
    fn write_heavy_ones_line_flips_everything() {
        let p = predictor(15, 8, 0.0);
        let s = run_window(&p, 15);
        let line = [u64::MAX; 8];
        let d = p.decide(s, &line, &DirectionBits::all_normal(8));
        assert_eq!(d.pattern, AccessPattern::WriteIntensive);
        assert_eq!(d.flips, 0xFF);
    }

    #[test]
    fn well_encoded_line_is_left_alone() {
        let p = predictor(15, 8, 0.0);
        let s = run_window(&p, 0);
        let line = [u64::MAX; 8]; // already all ones, read-intensive
        let d = p.decide(s, &line, &DirectionBits::all_normal(8));
        assert!(!d.switches());
        assert_eq!(d.projected_saving_fj, 0.0);
        assert_eq!(d.new_directions, DirectionBits::all_normal(8));
    }

    #[test]
    fn decision_is_partition_selective() {
        // Half the partitions are all-zero (bad for reads), half all-one
        // (good). Only the bad ones flip.
        let p = predictor(15, 8, 0.0);
        let s = run_window(&p, 0);
        let mut line = [0u64; 8];
        for word in line.iter_mut().skip(4) {
            *word = u64::MAX;
        }
        let d = p.decide(s, &line, &DirectionBits::all_normal(8));
        assert_eq!(d.flips, 0x0F, "only the zero partitions flip");
    }

    #[test]
    fn stored_view_is_what_matters() {
        // A line that is logically all zeros but already stored inverted
        // (all ones in the array) is already optimal for reads.
        let p = predictor(15, 1, 0.0);
        let s = run_window(&p, 0);
        let line = [0u64; 8];
        let mut dirs = DirectionBits::all_normal(1);
        dirs.apply_flips(1);
        let d = p.decide(s, &line, &dirs);
        assert!(!d.switches(), "stored form is all ones; no flip needed");
    }

    #[test]
    fn flip_undoes_previous_inversion_when_pattern_reverses() {
        // Stored all ones (inverted zeros) but the window was write-only:
        // the predictor must flip back toward stored zeros.
        let p = predictor(15, 1, 0.0);
        let s = run_window(&p, 15);
        let line = [0u64; 8];
        let mut dirs = DirectionBits::all_normal(1);
        dirs.apply_flips(1); // stored = all ones
        let d = p.decide(s, &line, &dirs);
        assert!(d.switches());
        assert!(d.new_directions.all_normal_dirs(), "flip back to normal");
    }

    #[test]
    fn hysteresis_suppresses_marginal_switches() {
        let strict = predictor(15, 8, 0.0);
        let lenient = predictor(15, 8, 0.4);
        let s = WindowSummary { wr_num: 5 };
        // A mildly-skewed line: flipping is marginally profitable.
        let line = [0x0000_FFFF_FFFF_FFFFu64; 8];
        let d_strict = strict.decide(s, &line, &DirectionBits::all_normal(8));
        let d_lenient = lenient.decide(s, &line, &DirectionBits::all_normal(8));
        assert!(
            d_lenient.flips & !d_strict.flips == 0,
            "hysteresis must only remove flips"
        );
    }

    #[test]
    fn metadata_bits_match_paper_accounting() {
        // W=15 -> two 4-bit counters; 8 partitions -> 8 direction bits.
        let p = predictor(15, 8, 0.0);
        assert_eq!(p.metadata_bits_per_line(), 8 + 8);
        let p1 = predictor(15, 1, 0.0);
        assert_eq!(p1.metadata_bits_per_line(), 8 + 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bits = BitEnergies::cnfet_default();
        assert!(DirectionPredictor::new(
            &bits,
            PredictorConfig {
                window: 1,
                ..PredictorConfig::paper_default()
            }
        )
        .is_err());
        assert!(DirectionPredictor::new(
            &bits,
            PredictorConfig {
                partitions: 7,
                ..PredictorConfig::paper_default()
            }
        )
        .is_err());
        assert!(DirectionPredictor::new(
            &bits,
            PredictorConfig {
                delta_t: 2.0,
                ..PredictorConfig::paper_default()
            }
        )
        .is_err());
    }
}

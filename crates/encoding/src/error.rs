//! Error types for encoding configuration.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing encoding components.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EncodingError {
    /// The line cannot be split into the requested number of partitions.
    BadPartitioning {
        /// Line length in bits.
        line_bits: u32,
        /// Requested partition count.
        partitions: u32,
        /// Why the split is impossible.
        reason: &'static str,
    },
    /// The prediction window is too small to be meaningful.
    WindowTooSmall {
        /// The offending window length.
        window: u32,
    },
    /// The hysteresis margin `ΔT` is outside `[0, 1)`.
    BadDeltaT {
        /// The offending margin.
        delta_t: f64,
    },
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::BadPartitioning {
                line_bits,
                partitions,
                reason,
            } => write!(
                f,
                "cannot split a {line_bits}-bit line into {partitions} partitions: {reason}"
            ),
            EncodingError::WindowTooSmall { window } => {
                write!(
                    f,
                    "prediction window must be at least 2 accesses, got {window}"
                )
            }
            EncodingError::BadDeltaT { delta_t } => {
                write!(f, "hysteresis margin must be in [0, 1), got {delta_t}")
            }
        }
    }
}

impl Error for EncodingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = EncodingError::WindowTooSmall { window: 1 };
        assert!(e.to_string().contains("window"));
        let e = EncodingError::BadDeltaT { delta_t: 1.5 };
        assert!(e.to_string().contains("hysteresis"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EncodingError>();
    }
}
